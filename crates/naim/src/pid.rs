//! Persistent identifiers.

use std::fmt;

/// A persistent identifier: the address-independent form of an
/// inter-object reference inside a relocatable pool.
///
/// Following the object-database technique the paper borrows (§4.2.1),
/// references between relocatable objects are stored as `Pid`s and
/// converted to in-memory references by *eager swizzling* when the pool
/// is loaded. In this reproduction, references to *global* objects
/// (interned symbols, program-wide routine and variable indices) are
/// already stable small integers, so a `Pid` wraps a `u64` payload; the
/// swizzling step is the decode pass that turns the payload back into a
/// typed index.
///
/// # Example
///
/// ```
/// use cmo_naim::Pid;
/// let p = Pid::from_index(42usize);
/// assert_eq!(p.index(), 42);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pid(u64);

impl Pid {
    /// Creates a `Pid` from a raw 64-bit payload.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Pid(raw)
    }

    /// Creates a `Pid` referring to the `index`-th object of a permanent
    /// table.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        Pid(index as u64)
    }

    /// Returns the raw 64-bit payload.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the payload interpreted as a table index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pid({})", self.0)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl From<u64> for Pid {
    fn from(raw: u64) -> Self {
        Pid(raw)
    }
}

impl From<Pid> for u64 {
    fn from(p: Pid) -> Self {
        p.0
    }
}
