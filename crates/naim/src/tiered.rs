//! Two-tier storage: a local [`Storage`] in front of a
//! [`RemoteStorage`], composed read-through/write-through.
//!
//! The local tier is authoritative for the build: every byte the
//! repository or cache reads comes from local storage, so the commit
//! protocol, crash recovery, and fault-injection guarantees of the
//! local tier are untouched by the remote's existence. The remote tier
//! only ever does two things:
//!
//! * **Read path.** The *first* time a name is touched and the local
//!   tier does not have it, the tier issues one remote GET. A verified
//!   hit populates the local file (then the build proceeds exactly as
//!   if it had been there all along); a miss or any failure leaves the
//!   build on cold local state. Each name is probed at most once per
//!   process, so the remote op schedule is deterministic.
//! * **Write path.** Local writes are local-only. At the durability
//!   barriers of the commit protocol — [`Storage::sync`] and the
//!   commit [`Storage::rename`] — the tier pushes the file's full
//!   contents remote, *after* the local operation succeeded. Scratch
//!   names (`*.tmp`, `*.gc`) are never pushed: only committed
//!   generations travel. A failed push is swallowed (the remote tier
//!   records the failure and may trip its breaker); the build result
//!   never depends on it.
//! * **Invalidation.** A shareable name removed locally — cache
//!   invalidation dropping a stale record — is best-effort `DEL`ed
//!   remotely after the local remove succeeded, so the daemon stops
//!   serving (and reclaims) blobs the builds have invalidated. No GET
//!   is ever issued for it: the local removal settles the name.
//!
//! An outage therefore cannot fail a build or corrupt the local cache:
//! the worst case is a build exactly as warm as local state allows,
//! reported under `faults.remote`.

use std::collections::BTreeSet;
use std::io;
use std::sync::{Arc, Mutex};

use crate::mmap::MapView;
use crate::remote::{RemoteStats, RemoteStorage};
use crate::storage::{lock, Storage};

/// Whether a name may travel to the remote tier. Scratch files are
/// private to the local commit protocol: half-written temps and GC
/// generations must never be observable by another machine.
fn shareable(name: &str) -> bool {
    !name.ends_with(".tmp") && !name.ends_with(".gc")
}

/// Read-through/write-through composition of a local tier and a
/// remote tier. See the module docs for the exact data flow.
#[derive(Debug)]
pub struct TieredStorage {
    local: Arc<dyn Storage>,
    remote: Arc<RemoteStorage>,
    /// Names whose remote probe already happened (or was made moot by
    /// a local mutation). At most one GET is ever issued per name.
    probed: Mutex<BTreeSet<String>>,
}

impl TieredStorage {
    /// Composes `local` in front of `remote`.
    #[must_use]
    pub fn new(local: Arc<dyn Storage>, remote: Arc<RemoteStorage>) -> Self {
        TieredStorage {
            local,
            remote,
            probed: Mutex::new(BTreeSet::new()),
        }
    }

    /// The remote tier's traffic statistics.
    #[must_use]
    pub fn stats(&self) -> RemoteStats {
        self.remote.stats()
    }

    /// Marks `name` as settled: no future read will probe the remote
    /// for it. Every local mutation does this, so a name created (or
    /// removed) locally can never be shadowed by a stale remote blob.
    fn settle(&self, name: &str) {
        lock(&self.probed).insert(name.to_owned());
    }

    /// Read-through: if `name` is locally absent and never probed,
    /// issue one remote GET and populate the local tier on a verified
    /// hit. Misses, failures, and an open breaker all degrade to
    /// "locally cold" — never to an error.
    fn ensure_local(&self, name: &str) {
        if !shareable(name) || self.local.exists(name) {
            return;
        }
        if !lock(&self.probed).insert(name.to_owned()) {
            return;
        }
        if let Ok(bytes) = self.remote.read(name) {
            // Population failing (disk full mid-populate) must not turn
            // a cache miss into a build error; drop the partial file so
            // the local tier stays coherent.
            if self.local.write(name, &bytes).is_err() {
                let _ = self.local.remove(name);
            }
        }
    }

    /// Write-through: push the file's current local contents remote.
    /// Called only at durability barriers; failures are swallowed (the
    /// remote tier has already counted them).
    fn push(&self, name: &str) {
        if !shareable(name) {
            return;
        }
        if let Ok(bytes) = self.local.read(name) {
            let _ = self.remote.write(name, &bytes);
        }
    }
}

impl Storage for TieredStorage {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.ensure_local(name);
        self.local.read(name)
    }

    fn write(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.settle(name);
        self.local.write(name, data)
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<u64> {
        // An append extends what is locally visible; fetch any remote
        // warmth first so the two tiers don't interleave.
        self.ensure_local(name);
        self.settle(name);
        self.local.append(name, data)
    }

    fn read_at(&self, name: &str, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        self.ensure_local(name);
        self.local.read_at(name, offset, len)
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        self.ensure_local(name);
        self.local.size(name)
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        self.ensure_local(name);
        self.settle(name);
        self.local.truncate(name, len)
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        self.settle(name);
        self.local.sync(name)?;
        // The file just became durable locally; share it.
        self.push(name);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        self.settle(from);
        self.settle(to);
        self.local.rename(from, to)?;
        // The commit rename publishes a new generation under its final
        // name (write-temp → fsync → rename); push that generation.
        self.push(to);
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.ensure_local(name);
        self.local.exists(name)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.settle(name);
        self.local.remove(name)?;
        // The record is invalid here; unbind it on the daemon too so
        // the shared tier stops serving it and can reclaim the blob.
        // Best-effort like every push: an outage never fails a build.
        if shareable(name) {
            let _ = self.remote.remove(name);
        }
        Ok(())
    }

    fn map(&self, name: &str) -> io::Result<Option<MapView>> {
        self.ensure_local(name);
        self.local.map(name)
    }

    fn tier_label(&self) -> &'static str {
        "tiered"
    }

    fn remote_stats(&self) -> Option<RemoteStats> {
        Some(self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remote::{FlakyTransport, LoopbackTransport, RemoteTransport, RetryPolicy};
    use crate::storage::MemStorage;

    fn remote_over(daemon: &Arc<MemStorage>) -> Arc<RemoteStorage> {
        let daemon: Arc<dyn Storage> = Arc::clone(daemon) as Arc<dyn Storage>;
        Arc::new(RemoteStorage::new(
            Arc::new(LoopbackTransport::over(daemon)),
            RetryPolicy::default(),
        ))
    }

    fn dead_remote() -> Arc<RemoteStorage> {
        let inner: Arc<dyn RemoteTransport> =
            Arc::new(LoopbackTransport::over(Arc::new(MemStorage::new())));
        Arc::new(RemoteStorage::new(
            Arc::new(FlakyTransport::new(inner).kill_at(0)),
            RetryPolicy::default(),
        ))
    }

    #[test]
    fn miss_populates_local_from_remote_exactly_once() {
        let daemon = Arc::new(MemStorage::new());
        let local = Arc::new(MemStorage::new());
        // Warm the daemon as a previous machine's push would.
        let warm = remote_over(&daemon);
        warm.write("repo.naim", b"warm bytes").unwrap();
        let tier = TieredStorage::new(Arc::clone(&local) as Arc<dyn Storage>, remote_over(&daemon));
        assert_eq!(tier.read("repo.naim").unwrap(), b"warm bytes");
        assert_eq!(local.read("repo.naim").unwrap(), b"warm bytes");
        // Later reads are pure local: one GET total.
        assert_eq!(tier.read("repo.naim").unwrap(), b"warm bytes");
        assert_eq!(tier.stats().gets, 1);
        assert_eq!(tier.stats().hits, 1);
        assert_eq!(tier.tier_label(), "tiered");
    }

    #[test]
    fn sync_and_commit_rename_push_shareable_names_only() {
        let daemon = Arc::new(MemStorage::new());
        let local = Arc::new(MemStorage::new());
        let tier = TieredStorage::new(Arc::clone(&local) as Arc<dyn Storage>, remote_over(&daemon));
        // The commit protocol's dance: write temp, sync temp, rename.
        tier.write("manifest.tsv.tmp", b"v2").unwrap();
        tier.sync("manifest.tsv.tmp").unwrap();
        assert_eq!(tier.stats().puts, 0, "temp names must never travel");
        tier.rename("manifest.tsv.tmp", "manifest.tsv").unwrap();
        assert_eq!(tier.stats().puts, 1);
        // A fresh machine sharing the daemon sees the committed file.
        let other = TieredStorage::new(
            Arc::new(MemStorage::new()) as Arc<dyn Storage>,
            remote_over(&daemon),
        );
        assert_eq!(other.read("manifest.tsv").unwrap(), b"v2");
        // GC generations stay private too.
        tier.write("repo.naim.gc", b"halfway").unwrap();
        tier.sync("repo.naim.gc").unwrap();
        assert_eq!(tier.stats().puts, 1);
    }

    #[test]
    fn local_mutations_shadow_stale_remote_blobs() {
        let daemon = Arc::new(MemStorage::new());
        let warm = remote_over(&daemon);
        warm.write("f", b"stale remote").unwrap();
        let tier = TieredStorage::new(
            Arc::new(MemStorage::new()) as Arc<dyn Storage>,
            remote_over(&daemon),
        );
        tier.write("f", b"fresh local").unwrap();
        assert_eq!(tier.read("f").unwrap(), b"fresh local");
        // Removing the local file must not resurrect the remote copy.
        tier.remove("f").unwrap();
        assert!(!tier.exists("f"));
        assert_eq!(tier.stats().gets, 0, "no probe may have happened");
    }

    #[test]
    fn remove_unbinds_the_remote_name_without_probing() {
        let daemon = Arc::new(MemStorage::new());
        let warm = remote_over(&daemon);
        warm.write("repo.naim", b"stale everywhere").unwrap();
        let local = Arc::new(MemStorage::new());
        local.write("repo.naim", b"stale everywhere").unwrap();
        let tier = TieredStorage::new(Arc::clone(&local) as Arc<dyn Storage>, remote_over(&daemon));
        tier.remove("repo.naim").unwrap();
        assert_eq!(tier.stats().gets, 0, "invalidation must not probe");
        // The daemon no longer serves the invalidated name to anyone.
        let fresh = TieredStorage::new(
            Arc::new(MemStorage::new()) as Arc<dyn Storage>,
            remote_over(&daemon),
        );
        assert!(!fresh.exists("repo.naim"));
        // Scratch names never generate remote traffic, even on remove.
        let tier2 = TieredStorage::new(
            Arc::new(MemStorage::new()) as Arc<dyn Storage>,
            remote_over(&daemon),
        );
        tier2.write("x.tmp", b"scratch").unwrap();
        tier2.remove("x.tmp").unwrap();
        assert_eq!(tier2.stats().gets + tier2.stats().puts, 0);
    }

    #[test]
    fn dead_remote_degrades_to_local_only_and_never_errors() {
        let local = Arc::new(MemStorage::new());
        let tier = TieredStorage::new(Arc::clone(&local) as Arc<dyn Storage>, dead_remote());
        assert!(!tier.exists("repo.naim"));
        tier.write("repo.naim", b"built cold").unwrap();
        tier.sync("repo.naim").unwrap();
        tier.write("x.tmp", b"j").unwrap();
        tier.sync("x.tmp").unwrap();
        tier.rename("x.tmp", "commit.journal").unwrap();
        assert_eq!(tier.read("repo.naim").unwrap(), b"built cold");
        assert_eq!(tier.read("commit.journal").unwrap(), b"j");
        let stats = tier.stats();
        assert!(stats.failures > 0);
        assert_eq!(stats.puts, 0);
        // Enough barriers ran to trip the breaker; the build went on.
        assert!(stats.breaker_open);
    }

    #[test]
    fn failed_population_leaves_no_partial_local_file() {
        let daemon = Arc::new(MemStorage::new());
        let warm = remote_over(&daemon);
        warm.write("f", b"remote bytes").unwrap();
        // Local tier whose first counted op — the populate write — is
        // torn: half the remote bytes land, then the write errors.
        let local = Arc::new(
            crate::storage::FaultyStorage::new(Arc::new(MemStorage::new()))
                .with_fault(0, crate::storage::Fault::TornWrite),
        );
        let tier = TieredStorage::new(Arc::clone(&local) as Arc<dyn Storage>, remote_over(&daemon));
        assert!(tier.read("f").is_err(), "local tier is genuinely cold");
        assert!(!local.exists("f"), "no torn half-populated file may remain");
    }
}
