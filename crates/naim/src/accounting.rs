//! Byte accounting for optimizer data structures.
//!
//! The paper's memory results (Figures 4 and 5, and the 1.7 KB/line →
//! 0.9 KB/line history of §8) are measurements of optimizer heap
//! occupancy. This reproduction measures the same quantity explicitly:
//! every global, transitory, and derived structure reports its size to a
//! [`MemoryAccountant`], which tracks current and peak occupancy per
//! class. This is deterministic and portable, unlike process RSS.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The three storage classes of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemClass {
    /// Always-resident program-wide structures (program symbol table,
    /// call graph).
    Global,
    /// Module symbol tables and routine IR in expanded form.
    TransitoryExpanded,
    /// Relocatable (compacted) images resident in memory.
    TransitoryCompact,
    /// Recomputable analysis results (data flow, dominators, loops).
    Derived,
}

impl MemClass {
    /// All classes in display order.
    pub const ALL: [MemClass; 4] = [
        MemClass::Global,
        MemClass::TransitoryExpanded,
        MemClass::TransitoryCompact,
        MemClass::Derived,
    ];

    fn slot(self) -> usize {
        match self {
            MemClass::Global => 0,
            MemClass::TransitoryExpanded => 1,
            MemClass::TransitoryCompact => 2,
            MemClass::Derived => 3,
        }
    }
}

impl fmt::Display for MemClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemClass::Global => "global",
            MemClass::TransitoryExpanded => "transitory/expanded",
            MemClass::TransitoryCompact => "transitory/compact",
            MemClass::Derived => "derived",
        };
        f.write_str(s)
    }
}

/// A point-in-time view of accounted memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemorySnapshot {
    /// Current bytes per class, indexed by [`MemClass::ALL`] order.
    pub current: [usize; 4],
    /// Peak bytes per class since construction or the last reset.
    pub peak: [usize; 4],
    /// Peak total across all classes (the paper's "memory usage" axis).
    pub peak_total: usize,
}

impl MemorySnapshot {
    /// Current total across all classes.
    #[must_use]
    pub fn total(&self) -> usize {
        self.current.iter().sum()
    }

    /// Current bytes in `class`.
    #[must_use]
    pub fn class(&self, class: MemClass) -> usize {
        self.current[class.slot()]
    }

    /// Peak bytes in `class`.
    #[must_use]
    pub fn peak_class(&self, class: MemClass) -> usize {
        self.peak[class.slot()]
    }

    /// Raises this snapshot's peaks to cover a private accountant that
    /// ran *concurrently* with it.
    ///
    /// Partitioned HLO gives every callgraph cluster a private loader
    /// with its own accountant starting from zero. The merged peak the
    /// report should show is "what the session held when the clusters
    /// were split off, plus the worst any one cluster reached on top of
    /// that" — so per class the fold takes
    /// `max(self.peak, at_split.current + cluster.peak)`, and likewise
    /// for the all-class total. Both inputs are deterministic (the
    /// split snapshot is taken once, before any cluster runs), so the
    /// folded peaks are identical at every `-j` level.
    pub fn fold_concurrent_peak(&mut self, at_split: &MemorySnapshot, cluster: &MemorySnapshot) {
        for s in 0..4 {
            self.peak[s] = self.peak[s].max(at_split.current[s] + cluster.peak[s]);
        }
        self.peak_total = self.peak_total.max(at_split.total() + cluster.peak_total);
    }
}

impl fmt::Display for MemorySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "total={}B (peak {}B):", self.total(), self.peak_total)?;
        for class in MemClass::ALL {
            write!(f, " {}={}B", class, self.class(class))?;
        }
        Ok(())
    }
}

/// Tracks current and peak accounted bytes per storage class.
///
/// # Example
///
/// ```
/// use cmo_naim::{MemoryAccountant, MemClass};
/// let mut acct = MemoryAccountant::new();
/// acct.add(MemClass::Global, 100);
/// acct.add(MemClass::Derived, 50);
/// acct.remove(MemClass::Derived, 50);
/// let snap = acct.snapshot();
/// assert_eq!(snap.total(), 100);
/// assert_eq!(snap.peak_total, 150);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryAccountant {
    snap: MemorySnapshot,
}

impl MemoryAccountant {
    /// Creates an accountant with all counters at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` newly occupied in `class`.
    pub fn add(&mut self, class: MemClass, bytes: usize) {
        let s = class.slot();
        self.snap.current[s] += bytes;
        self.snap.peak[s] = self.snap.peak[s].max(self.snap.current[s]);
        self.snap.peak_total = self.snap.peak_total.max(self.snap.total());
    }

    /// Records `bytes` released from `class`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if more bytes are removed than are
    /// currently accounted, which indicates an accounting bug.
    pub fn remove(&mut self, class: MemClass, bytes: usize) {
        let s = class.slot();
        debug_assert!(
            self.snap.current[s] >= bytes,
            "accounting underflow in {class}: removing {bytes} from {}",
            self.snap.current[s]
        );
        self.snap.current[s] = self.snap.current[s].saturating_sub(bytes);
    }

    /// Adjusts `class` by a signed delta.
    ///
    /// Negative deltas are routed through the subtraction path with a
    /// checked sign conversion (`usize::try_from` fails exactly when
    /// `delta < 0`), so no negative value is ever reinterpreted as a
    /// huge unsigned size.
    pub fn adjust(&mut self, class: MemClass, delta: isize) {
        match usize::try_from(delta) {
            Ok(bytes) => self.add(class, bytes),
            Err(_) => self.remove(class, delta.unsigned_abs()),
        }
    }

    /// Current total bytes across all classes.
    #[must_use]
    pub fn total(&self) -> usize {
        self.snap.total()
    }

    /// Current bytes in `class`.
    #[must_use]
    pub fn class(&self, class: MemClass) -> usize {
        self.snap.class(class)
    }

    /// Returns a copy of the current snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MemorySnapshot {
        self.snap
    }

    /// Resets peak tracking to the current occupancy (current counters
    /// are preserved).
    pub fn reset_peaks(&mut self) {
        self.snap.peak = self.snap.current;
        self.snap.peak_total = self.snap.total();
    }
}

/// A thread-safe accountant shared by every shard of a sharded loader.
///
/// Sharding the loader must not shard the *memory budget*: the paper's
/// expand/compact/offload thresholds (§4.3) are program-wide, so all
/// shards report into one atomic accountant and each shard's threshold
/// decisions see the global total. Counters use relaxed atomics —
/// accounting is a monotone max/sum structure with no cross-counter
/// invariant that ordering could protect.
#[derive(Debug, Default)]
pub struct SharedAccountant {
    current: [AtomicUsize; 4],
    peak: [AtomicUsize; 4],
    peak_total: AtomicUsize,
}

impl SharedAccountant {
    /// Creates a shared accountant with all counters at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` newly occupied in `class`.
    pub fn add(&self, class: MemClass, bytes: usize) {
        let s = class.slot();
        let now = self.current[s].fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak[s].fetch_max(now, Ordering::Relaxed);
        self.peak_total.fetch_max(self.total(), Ordering::Relaxed);
    }

    /// Records `bytes` released from `class`.
    pub fn remove(&self, class: MemClass, bytes: usize) {
        let s = class.slot();
        // fetch_update so concurrent over-removal saturates at zero
        // instead of wrapping.
        let _ = self.current[s].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
            Some(cur.saturating_sub(bytes))
        });
    }

    /// Adjusts `class` by a signed delta; same checked sign split as
    /// [`MemoryAccountant::adjust`].
    pub fn adjust(&self, class: MemClass, delta: isize) {
        match usize::try_from(delta) {
            Ok(bytes) => self.add(class, bytes),
            Err(_) => self.remove(class, delta.unsigned_abs()),
        }
    }

    /// Current total bytes across all classes.
    #[must_use]
    pub fn total(&self) -> usize {
        self.current.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Current bytes in `class`.
    #[must_use]
    pub fn class(&self, class: MemClass) -> usize {
        self.current[class.slot()].load(Ordering::Relaxed)
    }

    /// Returns a copy of the current snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MemorySnapshot {
        let mut snap = MemorySnapshot::default();
        for s in 0..4 {
            snap.current[s] = self.current[s].load(Ordering::Relaxed);
            snap.peak[s] = self.peak[s].load(Ordering::Relaxed);
        }
        snap.peak_total = self.peak_total.load(Ordering::Relaxed);
        snap
    }

    /// Resets peak tracking to the current occupancy (current counters
    /// are preserved). Callers must quiesce concurrent mutation first
    /// for the rebase to be meaningful.
    pub fn reset_peaks(&self) {
        for s in 0..4 {
            self.peak[s].store(self.current[s].load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.peak_total.store(self.total(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_track_high_water_mark() {
        let mut a = MemoryAccountant::new();
        a.add(MemClass::TransitoryExpanded, 1000);
        a.remove(MemClass::TransitoryExpanded, 600);
        a.add(MemClass::TransitoryCompact, 100);
        let s = a.snapshot();
        assert_eq!(s.class(MemClass::TransitoryExpanded), 400);
        assert_eq!(s.peak_class(MemClass::TransitoryExpanded), 1000);
        assert_eq!(s.peak_total, 1000);
        assert_eq!(s.total(), 500);
    }

    #[test]
    fn adjust_handles_both_signs() {
        let mut a = MemoryAccountant::new();
        a.adjust(MemClass::Derived, 128);
        a.adjust(MemClass::Derived, -28);
        assert_eq!(a.class(MemClass::Derived), 100);
    }

    #[test]
    fn adjust_never_reinterprets_a_negative_delta_as_unsigned() {
        // Regression: a negative delta cast with `as usize` would wrap
        // to an enormous addition and poison every threshold decision.
        let mut a = MemoryAccountant::new();
        a.add(MemClass::TransitoryExpanded, 1_000);
        a.adjust(MemClass::TransitoryExpanded, -400);
        assert_eq!(a.class(MemClass::TransitoryExpanded), 600);
        // Draining the rest must land exactly at zero; with the wrap
        // bug the counter (and the peak) would instead jump by ~2^63.
        a.adjust(MemClass::TransitoryExpanded, -600);
        assert_eq!(a.class(MemClass::TransitoryExpanded), 0);
        assert_eq!(a.snapshot().peak_total, 1_000);
    }

    #[test]
    fn shared_accountant_matches_local_semantics() {
        let a = SharedAccountant::new();
        a.add(MemClass::TransitoryExpanded, 1000);
        a.remove(MemClass::TransitoryExpanded, 600);
        a.add(MemClass::TransitoryCompact, 100);
        a.adjust(MemClass::Derived, 50);
        a.adjust(MemClass::Derived, -50);
        let s = a.snapshot();
        assert_eq!(s.class(MemClass::TransitoryExpanded), 400);
        assert_eq!(s.peak_class(MemClass::TransitoryExpanded), 1000);
        assert_eq!(s.peak_total, 1000);
        assert_eq!(s.total(), 500);
        a.reset_peaks();
        assert_eq!(a.snapshot().peak_total, 500);
    }

    #[test]
    fn shared_accountant_is_race_free_across_threads() {
        let a = SharedAccountant::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        a.add(MemClass::TransitoryExpanded, 8);
                        a.remove(MemClass::TransitoryExpanded, 8);
                    }
                });
            }
        });
        assert_eq!(a.class(MemClass::TransitoryExpanded), 0);
        assert!(a.snapshot().peak_total >= 8);
    }

    #[test]
    fn reset_peaks_rebases() {
        let mut a = MemoryAccountant::new();
        a.add(MemClass::Global, 500);
        a.remove(MemClass::Global, 400);
        a.reset_peaks();
        assert_eq!(a.snapshot().peak_total, 100);
    }

    #[test]
    fn display_is_nonempty() {
        let a = MemoryAccountant::new();
        assert!(!format!("{}", a.snapshot()).is_empty());
        assert!(!format!("{}", MemClass::Global).is_empty());
    }
}
