//! Error types for the NAIM substrate.

use std::error::Error;
use std::fmt;

/// Error produced while decoding a relocatable (compacted) pool image.
///
/// Decode failures indicate a corrupted repository or an encoder/decoder
/// mismatch; they are not expected in normal operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The decoder ran off the end of the byte image.
    UnexpectedEof {
        /// Byte offset at which more input was required.
        offset: usize,
    },
    /// A varint ran longer than the maximum encodable width.
    VarintOverflow {
        /// Byte offset of the offending varint.
        offset: usize,
    },
    /// A tag byte did not correspond to any known object kind.
    BadTag {
        /// The unrecognized tag value.
        tag: u8,
        /// Byte offset of the tag.
        offset: usize,
    },
    /// A structural invariant of the encoded form was violated.
    Corrupt {
        /// Human-readable description of the violation.
        what: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { offset } => {
                write!(f, "unexpected end of relocatable image at byte {offset}")
            }
            DecodeError::VarintOverflow { offset } => {
                write!(f, "varint wider than 64 bits at byte {offset}")
            }
            DecodeError::BadTag { tag, offset } => {
                write!(f, "unknown object tag {tag:#x} at byte {offset}")
            }
            DecodeError::Corrupt { what } => write!(f, "corrupt relocatable image: {what}"),
        }
    }
}

impl Error for DecodeError {}

/// Top-level error for loader and repository operations.
#[derive(Debug)]
pub enum NaimError {
    /// Re-expanding a pool from its relocatable image failed.
    Decode(DecodeError),
    /// The disk repository could not be read or written.
    Repository(std::io::Error),
    /// A pool id did not name any pool known to the loader.
    UnknownPool {
        /// The offending pool id (raw index).
        pool: u32,
    },
    /// The repository file header was missing or malformed.
    RepoHeader {
        /// Human-readable description of what was wrong.
        what: &'static str,
    },
    /// The repository file was written by an incompatible format version.
    RepoVersion {
        /// The version found in the file header.
        found: u32,
        /// The version this build understands.
        expected: u32,
    },
    /// A stored record ended before its declared payload length (short
    /// read / truncated file).
    RepoTruncated {
        /// The repository record id (pool image id) being fetched.
        record: u32,
        /// Payload bytes the record header promised.
        wanted: u64,
        /// Payload bytes actually present in the backend.
        got: u64,
        /// Which storage tier served the bytes (`"local"`, `"remote"`,
        /// `"tiered"`), so degraded-mode diagnostics name the tier
        /// that failed.
        backend: &'static str,
    },
    /// A stored record's payload failed its CRC integrity check.
    RepoChecksum {
        /// The repository record id (pool image id) being fetched.
        record: u32,
        /// The CRC recorded when the record was stored.
        stored: u32,
        /// The CRC computed over the bytes read back.
        computed: u32,
        /// Which storage tier served the bytes (`"local"`, `"remote"`,
        /// `"tiered"`).
        backend: &'static str,
    },
    /// The accounted heap exceeded the hard budget and no NAIM measure
    /// could reclaim enough space (mirrors the paper's 1 GB heap-limit
    /// compile failures when NAIM/selectivity are disabled).
    OutOfMemory {
        /// Bytes the compilation attempted to occupy.
        wanted: usize,
        /// The configured hard budget.
        budget: usize,
    },
}

impl NaimError {
    /// Whether this error indicates corrupted or torn persistent state
    /// (as opposed to a live I/O failure or a resource limit). Corrupt
    /// state is recoverable by discarding it and recompiling; callers
    /// like the build cache use this to decide between "recreate the
    /// store" and "surface the error".
    #[must_use]
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            NaimError::Decode(_)
                | NaimError::RepoHeader { .. }
                | NaimError::RepoVersion { .. }
                | NaimError::RepoTruncated { .. }
                | NaimError::RepoChecksum { .. }
        )
    }
}

impl fmt::Display for NaimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NaimError::Decode(e) => write!(f, "decode failure: {e}"),
            NaimError::Repository(e) => write!(f, "repository I/O failure: {e}"),
            NaimError::UnknownPool { pool } => write!(f, "unknown pool id {pool}"),
            NaimError::RepoHeader { what } => {
                write!(f, "repository header invalid: {what}")
            }
            NaimError::RepoVersion { found, expected } => write!(
                f,
                "repository format version {found} is not the supported version {expected}"
            ),
            NaimError::RepoTruncated {
                record,
                wanted,
                got,
                backend,
            } => write!(
                f,
                "pool image record {record} truncated: wanted {wanted} bytes, {backend} backend holds {got}"
            ),
            NaimError::RepoChecksum {
                record,
                stored,
                computed,
                backend,
            } => write!(
                f,
                "pool image record {record} failed CRC check on {backend} backend: stored {stored:#010x}, computed {computed:#010x}"
            ),
            NaimError::OutOfMemory { wanted, budget } => write!(
                f,
                "optimizer heap exhausted: needed {wanted} bytes with a hard budget of {budget}"
            ),
        }
    }
}

impl Error for NaimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NaimError::Decode(e) => Some(e),
            NaimError::Repository(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for NaimError {
    fn from(e: DecodeError) -> Self {
        NaimError::Decode(e)
    }
}

impl From<std::io::Error> for NaimError {
    fn from(e: std::io::Error) -> Self {
        NaimError::Repository(e)
    }
}
