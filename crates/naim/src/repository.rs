//! The off-line disk repository for offloaded pools (§4.2).
//!
//! When even the compacted transitory data exceeds the memory budget,
//! the loader unloads relocatable pool images into the repository and
//! keeps only a small handle. Because the relocatable form maps directly
//! to the loaded form (a deliberate difference from the Convex
//! Application Compiler, §7), reading a pool back requires no rebuild —
//! just a read plus one uncompaction pass.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Handle to a pool image stored in the repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RepoHandle {
    offset: u64,
    len: u32,
}

impl RepoHandle {
    /// Length in bytes of the stored image.
    #[must_use]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Returns `true` if the stored image is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// Storage backend for a [`Repository`].
///
/// The production configuration is [`File`]-backed; tests and benches
/// may use the deterministic in-memory [`MemBackend`].
pub trait RepoBackend {
    /// Appends `data`, returning its starting offset.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure.
    fn append(&mut self, data: &[u8]) -> std::io::Result<u64>;

    /// Reads `len` bytes starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure, including short reads.
    fn read_at(&mut self, offset: u64, len: usize) -> std::io::Result<Vec<u8>>;
}

/// In-memory backend; useful for tests and for measuring offload traffic
/// without real disk I/O.
#[derive(Debug, Default)]
pub struct MemBackend {
    data: Vec<u8>,
}

impl MemBackend {
    /// Creates an empty in-memory backend.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes ever appended.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if nothing has been appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl RepoBackend for MemBackend {
    fn append(&mut self, data: &[u8]) -> std::io::Result<u64> {
        let offset = self.data.len() as u64;
        self.data.extend_from_slice(data);
        Ok(offset)
    }

    fn read_at(&mut self, offset: u64, len: usize) -> std::io::Result<Vec<u8>> {
        let start = offset as usize;
        let end = start.checked_add(len).filter(|&e| e <= self.data.len());
        match end {
            Some(end) => Ok(self.data[start..end].to_vec()),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "repository read past end",
            )),
        }
    }
}

impl RepoBackend for File {
    fn append(&mut self, data: &[u8]) -> std::io::Result<u64> {
        let offset = self.seek(SeekFrom::End(0))?;
        self.write_all(data)?;
        Ok(offset)
    }

    fn read_at(&mut self, offset: u64, len: usize) -> std::io::Result<Vec<u8>> {
        self.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        self.read_exact(&mut buf)?;
        Ok(buf)
    }
}

/// Statistics on repository traffic, used by the Figure 5 experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepoStats {
    /// Number of pool images written.
    pub writes: u64,
    /// Number of pool images read back.
    pub reads: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Total bytes read.
    pub bytes_read: u64,
}

/// An append-only store of relocatable pool images.
///
/// The repository is a temporary artifact of a single optimization run;
/// persistent program information lives only in object files and the
/// profile database (§6.1), so nothing here survives the compilation.
#[derive(Debug)]
pub struct Repository<B = MemBackend> {
    backend: B,
    stats: RepoStats,
}

impl Repository<MemBackend> {
    /// Creates a repository backed by process memory.
    #[must_use]
    pub fn in_memory() -> Self {
        Repository {
            backend: MemBackend::new(),
            stats: RepoStats::default(),
        }
    }
}

impl Repository<File> {
    /// Creates a repository backed by a fresh file at `path`.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be created.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = File::options()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(path)?;
        Ok(Repository {
            backend: file,
            stats: RepoStats::default(),
        })
    }
}

impl<B: RepoBackend> Repository<B> {
    /// Creates a repository over an arbitrary backend.
    pub fn with_backend(backend: B) -> Self {
        Repository {
            backend,
            stats: RepoStats::default(),
        }
    }

    /// Stores a pool image, returning its handle.
    ///
    /// # Errors
    ///
    /// Returns any backend I/O failure.
    pub fn store(&mut self, image: &[u8]) -> std::io::Result<RepoHandle> {
        let offset = self.backend.append(image)?;
        self.stats.writes += 1;
        self.stats.bytes_written += image.len() as u64;
        Ok(RepoHandle {
            offset,
            len: u32::try_from(image.len()).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "pool image over 4 GiB")
            })?,
        })
    }

    /// Fetches a pool image previously stored.
    ///
    /// # Errors
    ///
    /// Returns any backend I/O failure.
    pub fn fetch(&mut self, handle: RepoHandle) -> std::io::Result<Vec<u8>> {
        let data = self.backend.read_at(handle.offset, handle.len())?;
        self.stats.reads += 1;
        self.stats.bytes_read += handle.len as u64;
        Ok(data)
    }

    /// Traffic statistics since creation.
    #[must_use]
    pub fn stats(&self) -> RepoStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_round_trips() {
        let mut repo = Repository::in_memory();
        let h1 = repo.store(b"alpha").unwrap();
        let h2 = repo.store(b"beta").unwrap();
        assert_eq!(repo.fetch(h1).unwrap(), b"alpha");
        assert_eq!(repo.fetch(h2).unwrap(), b"beta");
        let s = repo.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 2);
        assert_eq!(s.bytes_written, 9);
    }

    #[test]
    fn file_backend_round_trips() {
        let dir = std::env::temp_dir().join(format!("cmo-naim-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repo.bin");
        let mut repo = Repository::create(&path).unwrap();
        let h = repo.store(&[7u8; 1000]).unwrap();
        assert_eq!(repo.fetch(h).unwrap(), vec![7u8; 1000]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_range_read_errors() {
        let mut repo = Repository::in_memory();
        let bogus = RepoHandle {
            offset: 100,
            len: 4,
        };
        assert!(repo.fetch(bogus).is_err());
    }

    #[test]
    fn empty_image_is_fine() {
        let mut repo = Repository::in_memory();
        let h = repo.store(&[]).unwrap();
        assert!(h.is_empty());
        assert_eq!(repo.fetch(h).unwrap(), Vec::<u8>::new());
    }
}
