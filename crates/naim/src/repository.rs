//! The disk repository for relocatable pool images (§4.2), grown into a
//! persistent content-addressed store.
//!
//! The paper's repository is a per-run scratch file: the loader unloads
//! relocatable pool images into it and keeps only a small handle. Because
//! the relocatable form maps directly to the loaded form (a deliberate
//! difference from the Convex Application Compiler, §7), reading a pool
//! back requires no rebuild — just a read plus one uncompaction pass.
//!
//! That same property makes the repository a natural cross-run cache, so
//! the on-disk format is versioned and checksummed:
//!
//! ```text
//! file   := header record* [index footer]
//! header := magic "CMONAIM\0" (8 bytes) | version (u32 LE)
//! record := kind (u8) | hash_lo (u64 LE) | hash_hi (u64 LE)
//!           | len (u32 LE) | crc (u32 LE) | payload (len bytes)
//! footer := index_offset (u64 LE) | cookie "NAIM" (u32 LE)
//! ```
//!
//! Records are content-addressed: `store` hashes the payload and returns
//! the existing record when an identical image is already present
//! (dedup). Handles are indices into an in-memory record index rather
//! than raw byte offsets; [`Repository::open`] rebuilds the index from
//! the trailing index segment (fast path) or by scanning the record
//! chain (recovery path), so a store written by one process can be
//! fetched by the next.

use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::encode::{Decoder, Encoder};
use crate::error::NaimError;

/// Magic bytes opening every repository file.
pub const REPO_MAGIC: [u8; 8] = *b"CMONAIM\0";

/// Current on-disk format version. Bump when the record framing or the
/// index-segment encoding changes incompatibly.
pub const REPO_VERSION: u32 = 2;

/// Cookie closing the 12-byte footer that points at the index segment.
const FOOTER_COOKIE: u32 = u32::from_le_bytes(*b"NAIM");

const HEADER_LEN: u64 = 12;
const RECORD_HEADER_LEN: u64 = 25;
const FOOTER_LEN: u64 = 12;

/// Record kind tag for a pool image payload.
const KIND_POOL: u8 = 1;
/// Record kind tag for an index segment.
const KIND_INDEX: u8 = 2;

/// 128-bit content hash of a stored payload (two independent FNV-1a
/// lanes), used for dedup on store and for cross-run addressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContentHash(pub [u64; 2]);

impl ContentHash {
    /// Hashes a payload.
    #[must_use]
    pub fn of(data: &[u8]) -> Self {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut a: u64 = 0xcbf2_9ce4_8422_2325;
        let mut b: u64 = 0x6c62_272e_07bb_0142;
        for &byte in data {
            a = (a ^ u64::from(byte)).wrapping_mul(PRIME);
            b = (b ^ u64::from(byte.rotate_left(3))).wrapping_mul(PRIME);
        }
        // Fold the length in so prefixes of zero bytes stay distinct.
        let len = data.len() as u64;
        a = (a ^ len).wrapping_mul(PRIME);
        b = (b ^ len.rotate_left(17)).wrapping_mul(PRIME);
        ContentHash([a, b])
    }

    /// Renders the hash as 32 lowercase hex digits.
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.0[0], self.0[1])
    }

    /// Parses the 32-hex-digit form produced by [`ContentHash::to_hex`].
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        let lo = u64::from_str_radix(&s[..16], 16).ok()?;
        let hi = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(ContentHash([lo, hi]))
    }
}

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) over `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &byte in data {
        let idx = (crc ^ u32::from(byte)) & 0xff;
        crc = (crc >> 8) ^ TABLE[idx as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Handle to a pool image stored in the repository.
///
/// The handle names a slot in the repository's in-memory record index,
/// not a raw byte offset; offsets stay private to the store so the index
/// segment can relocate records on future format revisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RepoHandle {
    id: u32,
    len: u32,
}

impl RepoHandle {
    /// The record id within the repository index.
    #[must_use]
    pub fn id(self) -> u32 {
        self.id
    }

    /// Length in bytes of the stored image.
    #[must_use]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Returns `true` if the stored image is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// Storage backend for a [`Repository`].
///
/// The production configuration is [`File`]-backed; tests and benches
/// may use the deterministic in-memory [`MemBackend`].
pub trait RepoBackend {
    /// Appends `data`, returning its starting offset.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure.
    fn append(&mut self, data: &[u8]) -> std::io::Result<u64>;

    /// Reads `len` bytes starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure, including short reads.
    fn read_at(&mut self, offset: u64, len: usize) -> std::io::Result<Vec<u8>>;

    /// Total bytes currently stored.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure.
    fn size(&mut self) -> std::io::Result<u64>;

    /// Truncates the backend to `len` bytes, dropping trailing garbage
    /// left by an interrupted append.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure.
    fn truncate(&mut self, len: u64) -> std::io::Result<()>;

    /// Prepares a borrowed view covering `offset..offset + len`,
    /// returning whether [`RepoBackend::view`] will serve that range.
    ///
    /// This is split from `view` so callers can branch on the answer
    /// before taking the borrow (the borrow of a returned slice must
    /// not overlap the mutable fallback read). The default declines,
    /// which sends every read down the copying [`RepoBackend::read_at`]
    /// path.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure while establishing the view.
    fn ensure_view(&mut self, _offset: u64, _len: usize) -> std::io::Result<bool> {
        Ok(false)
    }

    /// Borrows `len` bytes at `offset` from the view most recently
    /// established by [`RepoBackend::ensure_view`]. Returns `None` when
    /// the range is not covered.
    fn view(&self, _offset: u64, _len: usize) -> Option<&[u8]> {
        None
    }

    /// Reads `len` bytes at `offset` into `buf`, reusing its capacity.
    ///
    /// The default round-trips through [`RepoBackend::read_at`];
    /// backends that can fill the buffer in place override it to make
    /// the fallback fetch path allocation-free in steady state.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure, including short reads.
    fn read_into(&mut self, offset: u64, len: usize, buf: &mut Vec<u8>) -> std::io::Result<()> {
        let data = self.read_at(offset, len)?;
        buf.clear();
        buf.extend_from_slice(&data);
        Ok(())
    }

    /// Stable label naming the storage tier this backend reads from
    /// (`"local"`, `"remote"`, `"tiered"`). Carried into
    /// [`NaimError::RepoTruncated`] / [`NaimError::RepoChecksum`] so
    /// corruption diagnostics say which tier served the bad bytes.
    fn backend_label(&self) -> &'static str {
        "local"
    }
}

/// In-memory backend; useful for tests and for measuring offload traffic
/// without real disk I/O.
#[derive(Debug, Default)]
pub struct MemBackend {
    data: Vec<u8>,
}

impl MemBackend {
    /// Creates an empty in-memory backend.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes ever appended.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if nothing has been appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl RepoBackend for MemBackend {
    fn append(&mut self, data: &[u8]) -> std::io::Result<u64> {
        let offset = self.data.len() as u64;
        self.data.extend_from_slice(data);
        Ok(offset)
    }

    fn read_at(&mut self, offset: u64, len: usize) -> std::io::Result<Vec<u8>> {
        let start = offset as usize;
        let end = start.checked_add(len).filter(|&e| e <= self.data.len());
        match end {
            Some(end) => Ok(self.data[start..end].to_vec()),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "repository read past end",
            )),
        }
    }

    fn size(&mut self) -> std::io::Result<u64> {
        Ok(self.data.len() as u64)
    }

    fn truncate(&mut self, len: u64) -> std::io::Result<()> {
        self.data.truncate(len as usize);
        Ok(())
    }

    fn ensure_view(&mut self, offset: u64, len: usize) -> std::io::Result<bool> {
        let end = (offset as usize).checked_add(len);
        Ok(end.is_some_and(|e| e <= self.data.len()))
    }

    fn view(&self, offset: u64, len: usize) -> Option<&[u8]> {
        let start = offset as usize;
        self.data.get(start..start.checked_add(len)?)
    }

    fn read_into(&mut self, offset: u64, len: usize, buf: &mut Vec<u8>) -> std::io::Result<()> {
        match self.view(offset, len) {
            Some(data) => {
                buf.clear();
                buf.extend_from_slice(data);
                Ok(())
            }
            None => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "repository read past end",
            )),
        }
    }
}

impl RepoBackend for File {
    fn append(&mut self, data: &[u8]) -> std::io::Result<u64> {
        let offset = self.seek(SeekFrom::End(0))?;
        self.write_all(data)?;
        Ok(offset)
    }

    fn read_at(&mut self, offset: u64, len: usize) -> std::io::Result<Vec<u8>> {
        self.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        self.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn size(&mut self) -> std::io::Result<u64> {
        self.seek(SeekFrom::End(0))
    }

    fn truncate(&mut self, len: u64) -> std::io::Result<()> {
        self.set_len(len)
    }

    fn read_into(&mut self, offset: u64, len: usize, buf: &mut Vec<u8>) -> std::io::Result<()> {
        self.seek(SeekFrom::Start(offset))?;
        buf.clear();
        buf.resize(len, 0);
        self.read_exact(buf)
    }
}

/// Statistics on repository traffic, used by the Figure 5 experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepoStats {
    /// Number of pool images written.
    pub writes: u64,
    /// Number of pool images read back.
    pub reads: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Stores satisfied by an existing identical record (no write).
    pub dedup_hits: u64,
    /// Reads served as borrowed slices straight from a backend view
    /// (no payload copy). Transport-dependent — mmap availability and
    /// platform change it — so it never flows into compile reports,
    /// which must stay byte-identical with mmap on and off.
    pub zero_copy_reads: u64,
}

/// What [`Repository::open_backend`] had to repair: trailing bytes that
/// did not form a complete, well-framed record (a torn append or
/// unknown-kind garbage) were truncated away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepoRecovery {
    /// Bytes dropped from the tail of the backend.
    pub dropped_bytes: u64,
    /// Length of the valid prefix the repository was truncated to.
    pub valid_len: u64,
}

#[derive(Debug, Clone, Copy)]
struct RecordMeta {
    /// Byte offset of the payload (past the 25-byte record header).
    payload_offset: u64,
    len: u32,
    crc: u32,
    hash: ContentHash,
}

/// An append-only, content-addressed store of relocatable pool images.
///
/// Within a run it backs NAIM offloading; on a [`File`] backend the
/// format survives the process, and [`Repository::open`] rehydrates the
/// record index so a later compilation can fetch pools stored by an
/// earlier one (incremental recompilation).
#[derive(Debug)]
pub struct Repository<B = MemBackend> {
    backend: B,
    records: Vec<RecordMeta>,
    by_hash: HashMap<ContentHash, u32>,
    stats: RepoStats,
    recovery: Option<RepoRecovery>,
    /// Reusable fetch buffer: when the backend cannot serve a borrowed
    /// view, [`Repository::fetch_ref`] reads into this arena instead of
    /// allocating per fetch. Recycled by [`Repository::recycle_arena`].
    scratch: Vec<u8>,
    /// Bytes served by `fetch_ref` since the last recycle, counted the
    /// same on the view and the copy path (mode-independent).
    arena_served: u64,
}

impl Repository<MemBackend> {
    /// Creates a repository backed by process memory.
    #[must_use]
    pub fn in_memory() -> Self {
        Repository::with_backend(MemBackend::new())
    }
}

impl Repository<File> {
    /// Creates a repository backed by a fresh file at `path`, truncating
    /// any existing file.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be created or the header
    /// cannot be written.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self, NaimError> {
        let file = File::options()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(path)?;
        Ok(Repository::with_backend(file))
    }

    /// Opens an existing repository file, validating its header and
    /// rebuilding the record index (from the trailing index segment when
    /// intact, otherwise by scanning the record chain).
    ///
    /// # Errors
    ///
    /// Returns [`NaimError::RepoHeader`] when the magic is missing or
    /// mangled, [`NaimError::RepoVersion`] on a format-version mismatch,
    /// and any underlying I/O failure.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, NaimError> {
        let file = File::options().read(true).write(true).open(path)?;
        Repository::open_backend(file)
    }

    /// Opens the repository at `path`, creating a fresh one when the
    /// file does not exist.
    ///
    /// # Errors
    ///
    /// Propagates [`Repository::open`] / [`Repository::create`] errors.
    pub fn open_or_create<P: AsRef<Path>>(path: P) -> Result<Self, NaimError> {
        let path = path.as_ref();
        if path.exists() {
            Repository::open(path)
        } else {
            Repository::create(path)
        }
    }
}

impl<B: RepoBackend> Repository<B> {
    /// Creates a fresh repository over an empty backend, writing the
    /// versioned header.
    ///
    /// # Panics
    ///
    /// Panics if the header cannot be appended (in-memory backends are
    /// infallible; use [`Repository::create`] for files).
    pub fn with_backend(mut backend: B) -> Self {
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&REPO_MAGIC);
        header.extend_from_slice(&REPO_VERSION.to_le_bytes());
        backend
            .append(&header)
            .expect("repository header write failed");
        Repository {
            backend,
            records: Vec::new(),
            by_hash: HashMap::new(),
            stats: RepoStats::default(),
            recovery: None,
            scratch: Vec::new(),
            arena_served: 0,
        }
    }

    /// Fallible counterpart of [`Repository::with_backend`]: truncates
    /// the backend and writes a fresh header, surfacing I/O failures
    /// instead of panicking. This is the path storage-backed callers
    /// (which may sit on a fault injector) use.
    ///
    /// # Errors
    ///
    /// Returns any backend I/O failure.
    pub fn create_backend(mut backend: B) -> Result<Self, NaimError> {
        backend.truncate(0)?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&REPO_MAGIC);
        header.extend_from_slice(&REPO_VERSION.to_le_bytes());
        backend.append(&header)?;
        Ok(Repository {
            backend,
            records: Vec::new(),
            by_hash: HashMap::new(),
            stats: RepoStats::default(),
            recovery: None,
            scratch: Vec::new(),
            arena_served: 0,
        })
    }

    /// Opens an existing backend: validates the header, then rebuilds
    /// the record index from the trailing index segment or by scanning.
    ///
    /// # Errors
    ///
    /// Returns [`NaimError::RepoHeader`] / [`NaimError::RepoVersion`] on
    /// a malformed or incompatible header, and any I/O failure.
    pub fn open_backend(mut backend: B) -> Result<Self, NaimError> {
        let size = backend.size()?;
        if size < HEADER_LEN {
            return Err(NaimError::RepoHeader {
                what: "file shorter than the 12-byte header",
            });
        }
        let header = backend.read_at(0, HEADER_LEN as usize)?;
        if header[..8] != REPO_MAGIC {
            return Err(NaimError::RepoHeader {
                what: "bad magic (not a CMONAIM repository)",
            });
        }
        let found = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        if found != REPO_VERSION {
            return Err(NaimError::RepoVersion {
                found,
                expected: REPO_VERSION,
            });
        }
        let mut repo = Repository {
            backend,
            records: Vec::new(),
            by_hash: HashMap::new(),
            stats: RepoStats::default(),
            recovery: None,
            scratch: Vec::new(),
            arena_served: 0,
        };
        if !repo.load_index_from_footer(size)? {
            let valid_end = repo.scan_records(size)?;
            if valid_end < size {
                // A torn append (or unknown-kind garbage) left trailing
                // bytes that are not a well-framed record: drop them so
                // the next append starts on a clean record boundary.
                repo.backend.truncate(valid_end)?;
                repo.recovery = Some(RepoRecovery {
                    dropped_bytes: size - valid_end,
                    valid_len: valid_end,
                });
            }
        }
        for (id, rec) in repo.records.iter().enumerate() {
            // Last record wins: duplicate hashes only arise when an
            // earlier record was evicted as corrupt and its payload
            // re-stored, and then the newest copy is the good one.
            repo.by_hash.insert(rec.hash, id as u32);
        }
        Ok(repo)
    }

    /// The repair performed while opening, if the record chain had a
    /// torn or garbage tail. `None` after a clean open.
    #[must_use]
    pub fn recovery(&self) -> Option<RepoRecovery> {
        self.recovery
    }

    /// Fast path: an intact index segment addressed by the file footer.
    /// Returns `Ok(false)` (caller falls back to a scan) on any
    /// inconsistency, reserving hard errors for I/O failures.
    fn load_index_from_footer(&mut self, size: u64) -> Result<bool, NaimError> {
        if size < HEADER_LEN + RECORD_HEADER_LEN + FOOTER_LEN {
            return Ok(false);
        }
        let footer = self
            .backend
            .read_at(size - FOOTER_LEN, FOOTER_LEN as usize)?;
        let cookie = u32::from_le_bytes([footer[8], footer[9], footer[10], footer[11]]);
        if cookie != FOOTER_COOKIE {
            return Ok(false);
        }
        let index_offset = u64::from_le_bytes(footer[..8].try_into().unwrap());
        if index_offset < HEADER_LEN || index_offset + RECORD_HEADER_LEN + FOOTER_LEN > size {
            return Ok(false);
        }
        let head = self
            .backend
            .read_at(index_offset, RECORD_HEADER_LEN as usize)?;
        let (kind, _hash, len, crc) = parse_record_header(&head);
        if kind != KIND_INDEX {
            return Ok(false);
        }
        // The index must be the final record, flush against the footer.
        if index_offset + RECORD_HEADER_LEN + u64::from(len) + FOOTER_LEN != size {
            return Ok(false);
        }
        let payload = self
            .backend
            .read_at(index_offset + RECORD_HEADER_LEN, len as usize)?;
        if crc32(&payload) != crc {
            return Ok(false);
        }
        let Some(records) = decode_index(&payload) else {
            return Ok(false);
        };
        // Every indexed record must lie inside the file.
        for rec in &records {
            if rec.payload_offset + u64::from(rec.len) > size {
                return Ok(false);
            }
        }
        self.records = records;
        Ok(true)
    }

    /// Recovery path: walk the record chain from the header, returning
    /// the end of the longest valid prefix. A torn final record
    /// (crashed append), a partial record header, or an unknown record
    /// kind ends the walk; everything before it remains fetchable and
    /// the caller truncates the rest away.
    fn scan_records(&mut self, size: u64) -> Result<u64, NaimError> {
        self.records.clear();
        let mut pos = HEADER_LEN;
        while pos + RECORD_HEADER_LEN <= size {
            let head = self.backend.read_at(pos, RECORD_HEADER_LEN as usize)?;
            let (kind, hash, len, crc) = parse_record_header(&head);
            if kind != KIND_POOL && kind != KIND_INDEX {
                break; // garbage tail: not a record we ever wrote
            }
            let payload_offset = pos + RECORD_HEADER_LEN;
            if payload_offset + u64::from(len) > size {
                break; // torn tail from an interrupted append
            }
            if kind == KIND_POOL {
                self.records.push(RecordMeta {
                    payload_offset,
                    len,
                    crc,
                    hash,
                });
            }
            pos = payload_offset + u64::from(len);
            // A footer may trail an index segment; skip it when present.
            if kind == KIND_INDEX && pos + FOOTER_LEN <= size {
                let maybe = self.backend.read_at(pos, FOOTER_LEN as usize)?;
                let cookie = u32::from_le_bytes([maybe[8], maybe[9], maybe[10], maybe[11]]);
                if cookie == FOOTER_COOKIE {
                    pos += FOOTER_LEN;
                }
            }
        }
        Ok(pos)
    }

    /// Stores a pool image, returning its handle.
    ///
    /// Storing bytes whose content hash matches an existing record
    /// returns the existing handle without writing (dedup).
    ///
    /// # Errors
    ///
    /// Returns [`NaimError::OutOfMemory`]-free validation errors for
    /// over-long images (checked *before* any byte reaches the backend)
    /// and any backend I/O failure.
    pub fn store(&mut self, image: &[u8]) -> Result<RepoHandle, NaimError> {
        // Validate the 4 GiB record limit before appending so a rejected
        // store never leaks backend space.
        let len = u32::try_from(image.len()).map_err(|_| {
            NaimError::Repository(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "pool image over 4 GiB",
            ))
        })?;
        let hash = ContentHash::of(image);
        if let Some(&id) = self.by_hash.get(&hash) {
            self.stats.dedup_hits += 1;
            return Ok(RepoHandle {
                id,
                len: self.records[id as usize].len,
            });
        }
        let crc = crc32(image);
        let mut buf = Vec::with_capacity(RECORD_HEADER_LEN as usize + image.len());
        write_record_header(&mut buf, KIND_POOL, hash, len, crc);
        buf.extend_from_slice(image);
        let record_offset = self.backend.append(&buf)?;
        let id = self.records.len() as u32;
        self.records.push(RecordMeta {
            payload_offset: record_offset + RECORD_HEADER_LEN,
            len,
            crc,
            hash,
        });
        self.by_hash.insert(hash, id);
        self.stats.writes += 1;
        self.stats.bytes_written += u64::from(len);
        Ok(RepoHandle { id, len })
    }

    /// Fetches a pool image previously stored (possibly by an earlier
    /// process), verifying its CRC.
    ///
    /// # Errors
    ///
    /// Returns [`NaimError::UnknownPool`] for an out-of-range record id,
    /// [`NaimError::RepoTruncated`] when the backend ends before the
    /// record's declared payload, [`NaimError::RepoChecksum`] on CRC
    /// mismatch, and any backend I/O failure.
    pub fn fetch(&mut self, handle: RepoHandle) -> Result<Vec<u8>, NaimError> {
        let Some(meta) = self.records.get(handle.id as usize).copied() else {
            return Err(NaimError::UnknownPool { pool: handle.id });
        };
        let size = self.backend.size()?;
        let end = meta.payload_offset + u64::from(meta.len);
        if end > size {
            return Err(NaimError::RepoTruncated {
                record: handle.id,
                wanted: u64::from(meta.len),
                got: size.saturating_sub(meta.payload_offset),
                backend: self.backend.backend_label(),
            });
        }
        let data = self
            .backend
            .read_at(meta.payload_offset, meta.len as usize)?;
        let computed = crc32(&data);
        if computed != meta.crc {
            return Err(NaimError::RepoChecksum {
                record: handle.id,
                stored: meta.crc,
                computed,
                backend: self.backend.backend_label(),
            });
        }
        self.stats.reads += 1;
        self.stats.bytes_read += u64::from(meta.len);
        Ok(data)
    }

    /// Fetches a pool image as a borrowed slice, CRC-verified like
    /// [`Repository::fetch`] but without handing ownership to the
    /// caller: when the backend serves views (memory-mapped file,
    /// in-memory store) the bytes come straight from the mapping with
    /// no copy; otherwise they are read into the repository's reusable
    /// scratch arena. Either way the slice is only valid until the next
    /// `&mut self` call.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Repository::fetch`].
    pub fn fetch_ref(&mut self, handle: RepoHandle) -> Result<&[u8], NaimError> {
        let Some(meta) = self.records.get(handle.id as usize).copied() else {
            return Err(NaimError::UnknownPool { pool: handle.id });
        };
        let size = self.backend.size()?;
        let end = meta.payload_offset + u64::from(meta.len);
        if end > size {
            return Err(NaimError::RepoTruncated {
                record: handle.id,
                wanted: u64::from(meta.len),
                got: size.saturating_sub(meta.payload_offset),
                backend: self.backend.backend_label(),
            });
        }
        if self
            .backend
            .ensure_view(meta.payload_offset, meta.len as usize)?
        {
            let data = self
                .backend
                .view(meta.payload_offset, meta.len as usize)
                .expect("ensure_view covered this range");
            let computed = crc32(data);
            if computed != meta.crc {
                return Err(NaimError::RepoChecksum {
                    record: handle.id,
                    stored: meta.crc,
                    computed,
                    backend: self.backend.backend_label(),
                });
            }
            self.stats.reads += 1;
            self.stats.bytes_read += u64::from(meta.len);
            self.stats.zero_copy_reads += 1;
            self.arena_served += u64::from(meta.len);
            return Ok(data);
        }
        // Fallback: pread into the scratch arena, reusing its capacity.
        self.backend
            .read_into(meta.payload_offset, meta.len as usize, &mut self.scratch)
            .map_err(NaimError::Repository)?;
        let computed = crc32(&self.scratch);
        if computed != meta.crc {
            return Err(NaimError::RepoChecksum {
                record: handle.id,
                stored: meta.crc,
                computed,
                backend: self.backend.backend_label(),
            });
        }
        self.stats.reads += 1;
        self.stats.bytes_read += u64::from(meta.len);
        self.arena_served += u64::from(meta.len);
        Ok(&self.scratch)
    }

    /// Bytes served through [`Repository::fetch_ref`] since the scratch
    /// arena was last recycled. Counted identically on the zero-copy
    /// and the fallback path, so the number is transport-independent.
    #[must_use]
    pub fn arena_served(&self) -> u64 {
        self.arena_served
    }

    /// Recycles the scratch arena: releases the fallback buffer's
    /// memory and returns (and resets) the served-byte counter. The
    /// loader calls this at the end of each enforcement sweep so the
    /// arena never outlives the eviction wave that filled it.
    pub fn recycle_arena(&mut self) -> u64 {
        self.scratch = Vec::new();
        std::mem::take(&mut self.arena_served)
    }

    /// Looks up a stored record by content hash, the cross-run address
    /// used by the incremental-build cache manifest.
    #[must_use]
    pub fn lookup(&self, hash: ContentHash) -> Option<RepoHandle> {
        self.by_hash.get(&hash).map(|&id| RepoHandle {
            id,
            len: self.records[id as usize].len,
        })
    }

    /// Content hash of a stored record.
    #[must_use]
    pub fn hash_of(&self, handle: RepoHandle) -> Option<ContentHash> {
        self.records.get(handle.id as usize).map(|r| r.hash)
    }

    /// Drops a record from the content-hash index so a future store of
    /// the same payload appends a fresh record instead of dedup-hitting
    /// the existing — presumably corrupt — one. The record's bytes stay
    /// in the file as dead weight and existing handles keep resolving;
    /// only [`Repository::lookup`] and dedup forget it. Returns whether
    /// the hash was indexed.
    pub fn evict(&mut self, hash: ContentHash) -> bool {
        self.by_hash.remove(&hash).is_some()
    }

    /// Number of pool records in the index.
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Exact byte size a freshly-compacted generation holding only the
    /// records behind `live` would occupy: header, one record per
    /// distinct content hash (in first-seen order, matching store-time
    /// dedup), a single index segment, and the footer. The build
    /// cache's garbage collector subtracts this from the current file
    /// size to compute dead bytes, so the number must account for the
    /// varint index encoding rather than approximate it.
    ///
    /// Handles whose id is out of range are skipped; callers resolve
    /// handles from a manifest that may reference dropped records.
    #[must_use]
    pub fn compacted_size(&self, live: &[RepoHandle]) -> u64 {
        let mut metas: Vec<RecordMeta> = Vec::with_capacity(live.len());
        let mut seen: HashMap<ContentHash, ()> = HashMap::with_capacity(live.len());
        let mut offset = HEADER_LEN;
        for handle in live {
            let Some(meta) = self.records.get(handle.id as usize) else {
                continue;
            };
            if seen.insert(meta.hash, ()).is_some() {
                continue;
            }
            metas.push(RecordMeta {
                payload_offset: offset + RECORD_HEADER_LEN,
                len: meta.len,
                crc: meta.crc,
                hash: meta.hash,
            });
            offset += RECORD_HEADER_LEN + u64::from(meta.len);
        }
        let index = encode_index(&metas);
        offset + RECORD_HEADER_LEN + index.len() as u64 + FOOTER_LEN
    }

    /// Appends an index segment plus footer so the next
    /// [`Repository::open`] can rebuild the record index without
    /// scanning. Safe to call repeatedly; the footer at end-of-file
    /// always wins.
    ///
    /// # Errors
    ///
    /// Returns any backend I/O failure.
    pub fn flush_index(&mut self) -> Result<(), NaimError> {
        let payload = encode_index(&self.records);
        let len = u32::try_from(payload.len()).map_err(|_| {
            NaimError::Repository(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "index segment over 4 GiB",
            ))
        })?;
        let hash = ContentHash::of(&payload);
        let crc = crc32(&payload);
        let mut buf =
            Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len() + FOOTER_LEN as usize);
        write_record_header(&mut buf, KIND_INDEX, hash, len, crc);
        buf.extend_from_slice(&payload);
        let index_offset = self.backend.append(&buf)?;
        let mut footer = Vec::with_capacity(FOOTER_LEN as usize);
        footer.extend_from_slice(&index_offset.to_le_bytes());
        footer.extend_from_slice(&FOOTER_COOKIE.to_le_bytes());
        self.backend.append(&footer)?;
        Ok(())
    }

    /// Traffic statistics since creation.
    #[must_use]
    pub fn stats(&self) -> RepoStats {
        self.stats
    }
}

fn write_record_header(buf: &mut Vec<u8>, kind: u8, hash: ContentHash, len: u32, crc: u32) {
    buf.push(kind);
    buf.extend_from_slice(&hash.0[0].to_le_bytes());
    buf.extend_from_slice(&hash.0[1].to_le_bytes());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(&crc.to_le_bytes());
}

fn parse_record_header(head: &[u8]) -> (u8, ContentHash, u32, u32) {
    let kind = head[0];
    let lo = u64::from_le_bytes(head[1..9].try_into().unwrap());
    let hi = u64::from_le_bytes(head[9..17].try_into().unwrap());
    let len = u32::from_le_bytes(head[17..21].try_into().unwrap());
    let crc = u32::from_le_bytes(head[21..25].try_into().unwrap());
    (kind, ContentHash([lo, hi]), len, crc)
}

fn encode_index(records: &[RecordMeta]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.write_usize(records.len());
    for rec in records {
        enc.write_u64(rec.payload_offset);
        enc.write_u64(u64::from(rec.len));
        enc.write_u64(u64::from(rec.crc));
        enc.write_u64(rec.hash.0[0]);
        enc.write_u64(rec.hash.0[1]);
    }
    enc.into_bytes()
}

fn decode_index(payload: &[u8]) -> Option<Vec<RecordMeta>> {
    let mut dec = Decoder::new(payload);
    let count = dec.read_usize().ok()?;
    let mut records = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let payload_offset = dec.read_u64().ok()?;
        let len = u32::try_from(dec.read_u64().ok()?).ok()?;
        let crc = u32::try_from(dec.read_u64().ok()?).ok()?;
        let lo = dec.read_u64().ok()?;
        let hi = dec.read_u64().ok()?;
        records.push(RecordMeta {
            payload_offset,
            len,
            crc,
            hash: ContentHash([lo, hi]),
        });
    }
    if !dec.is_at_end() {
        return None;
    }
    Some(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cmo-naim-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn mem_backend_round_trips() {
        let mut repo = Repository::in_memory();
        let h1 = repo.store(b"alpha").unwrap();
        let h2 = repo.store(b"beta").unwrap();
        assert_eq!(repo.fetch(h1).unwrap(), b"alpha");
        assert_eq!(repo.fetch(h2).unwrap(), b"beta");
        let s = repo.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 2);
        assert_eq!(s.bytes_written, 9);
    }

    #[test]
    fn fetch_ref_borrows_zero_copy_from_mem_backend() {
        let mut repo = Repository::in_memory();
        let h = repo.store(b"zero copy payload").unwrap();
        assert_eq!(repo.fetch_ref(h).unwrap(), b"zero copy payload");
        let s = repo.stats();
        assert_eq!((s.reads, s.zero_copy_reads), (1, 1));
        assert_eq!(s.bytes_read, 17);
        assert_eq!(repo.arena_served(), 17);
        assert_eq!(repo.recycle_arena(), 17);
        assert_eq!(repo.arena_served(), 0);
    }

    #[test]
    fn fetch_ref_falls_back_to_scratch_without_views() {
        let dir = temp_dir("fetchref-fallback");
        let path = dir.join("repo.bin");
        let mut repo = Repository::create(&path).unwrap();
        let h = repo.store(&[42u8; 500]).unwrap();
        // The plain File backend serves no views, so this exercises the
        // pread-into-arena path; the bytes and stats must match anyway.
        assert_eq!(repo.fetch_ref(h).unwrap(), &[42u8; 500][..]);
        assert_eq!(repo.fetch_ref(h).unwrap(), &[42u8; 500][..]);
        let s = repo.stats();
        assert_eq!((s.reads, s.zero_copy_reads), (2, 0));
        assert_eq!(repo.arena_served(), 1000);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fetch_ref_detects_corruption_like_fetch() {
        let dir = temp_dir("fetchref-crc");
        let path = dir.join("repo.bin");
        let mut repo = Repository::create(&path).unwrap();
        let h = repo.store(b"payload under test").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = repo.fetch_ref(h).unwrap_err();
        assert!(matches!(err, NaimError::RepoChecksum { record, .. } if record == h.id()));
        // Failed fetches count nothing, same as the owned path.
        assert_eq!(repo.stats().reads, 0);
        assert_eq!(repo.arena_served(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn identical_images_dedup_to_one_record() {
        let mut repo = Repository::in_memory();
        let h1 = repo.store(b"same bytes").unwrap();
        let h2 = repo.store(b"same bytes").unwrap();
        assert_eq!(h1, h2);
        assert_eq!(repo.record_count(), 1);
        assert_eq!(repo.stats().writes, 1);
        assert_eq!(repo.stats().dedup_hits, 1);
        assert_eq!(repo.fetch(h2).unwrap(), b"same bytes");
    }

    #[test]
    fn compacted_size_matches_a_real_fresh_generation() {
        let dir = temp_dir("compacted-size");
        let mut repo = Repository::create(dir.join("old.bin")).unwrap();
        let a = repo.store(b"alpha payload").unwrap();
        let b = repo.store(&[0xAB; 300]).unwrap();
        let c = repo.store(&[]).unwrap();
        // Stale index segments are the dead weight GC reclaims.
        repo.flush_index().unwrap();
        repo.flush_index().unwrap();
        repo.flush_index().unwrap();
        // Live set: duplicates and out-of-range ids must not count.
        let bogus = RepoHandle { id: 999, len: 1 };
        let live = [a, c, a, bogus];
        let predicted = repo.compacted_size(&live);

        // Build the generation compacted_size claims to predict.
        let mut fresh = Repository::create(dir.join("new.bin")).unwrap();
        for h in [a, c, a] {
            let bytes = repo.fetch(h).unwrap();
            fresh.store(&bytes).unwrap();
        }
        fresh.flush_index().unwrap();
        drop(fresh);
        let actual = std::fs::metadata(dir.join("new.bin")).unwrap().len();
        assert_eq!(predicted, actual);
        // Dropping `b` and the stale segments must actually shrink.
        let _ = b;
        let old = std::fs::metadata(dir.join("old.bin")).unwrap().len();
        assert!(predicted < old, "no dead bytes: {predicted} vs {old}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_backend_round_trips() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("repo.bin");
        let mut repo = Repository::create(&path).unwrap();
        let h = repo.store(&[7u8; 1000]).unwrap();
        assert_eq!(repo.fetch(h).unwrap(), vec![7u8; 1000]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_range_fetch_is_unknown_pool() {
        let mut repo = Repository::in_memory();
        let real = repo.store(b"x").unwrap();
        let mut other = Repository::in_memory();
        for _ in 0..5 {
            other.store(b"filler").unwrap();
        }
        drop(other);
        let bogus = RepoHandle {
            id: real.id() + 100,
            len: 4,
        };
        assert!(matches!(
            repo.fetch(bogus),
            Err(NaimError::UnknownPool { pool }) if pool == real.id() + 100
        ));
    }

    #[test]
    fn empty_image_is_fine() {
        let mut repo = Repository::in_memory();
        let h = repo.store(&[]).unwrap();
        assert!(h.is_empty());
        assert_eq!(repo.fetch(h).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn store_then_fetch_across_restart_via_index() {
        let dir = temp_dir("restart-index");
        let path = dir.join("repo.bin");
        let (ha, hb, hash_a) = {
            let mut repo = Repository::create(&path).unwrap();
            let ha = repo.store(b"first pool image").unwrap();
            let hb = repo.store(b"second pool image").unwrap();
            let hash_a = repo.hash_of(ha).unwrap();
            repo.flush_index().unwrap();
            (ha, hb, hash_a)
        }; // drop closes the file: simulated process exit
        let mut reopened = Repository::open(&path).unwrap();
        assert_eq!(reopened.record_count(), 2);
        assert_eq!(reopened.fetch(ha).unwrap(), b"first pool image");
        assert_eq!(reopened.fetch(hb).unwrap(), b"second pool image");
        assert_eq!(reopened.lookup(hash_a), Some(ha));
        // Dedup keeps working across the restart.
        let again = reopened.store(b"first pool image").unwrap();
        assert_eq!(again, ha);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_then_fetch_across_restart_via_scan() {
        let dir = temp_dir("restart-scan");
        let path = dir.join("repo.bin");
        // No flush_index: simulates a run that died before writing the
        // index segment. open() must fall back to scanning.
        let h = Repository::create(&path)
            .unwrap()
            .store(b"unindexed pool")
            .unwrap();
        let mut reopened = Repository::open(&path).unwrap();
        assert_eq!(reopened.record_count(), 1);
        assert_eq!(reopened.fetch(h).unwrap(), b"unindexed pool");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_reported_on_open() {
        let dir = temp_dir("torn-tail");
        let path = dir.join("repo.bin");
        let (ha, torn_len) = {
            let mut repo = Repository::create(&path).unwrap();
            let ha = repo.store(b"intact record").unwrap();
            repo.store(b"this record will be torn mid-payload").unwrap();
            (ha, 10)
        };
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - torn_len]).unwrap();
        let mut repo = Repository::open(&path).unwrap();
        // The intact record survives; the torn one is gone.
        assert_eq!(repo.record_count(), 1);
        assert_eq!(repo.fetch(ha).unwrap(), b"intact record");
        let rec = repo.recovery().expect("open repaired a torn tail");
        assert_eq!(
            rec.dropped_bytes,
            RECORD_HEADER_LEN + 36 - torn_len as u64,
            "dropped the torn record's surviving prefix"
        );
        // The file itself was truncated to the valid prefix, so a new
        // append lands on a record boundary and a re-open is clean.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), rec.valid_len);
        let hb = repo.store(b"appended after recovery").unwrap();
        drop(repo);
        let mut reopened = Repository::open(&path).unwrap();
        assert!(reopened.recovery().is_none());
        assert_eq!(reopened.fetch(hb).unwrap(), b"appended after recovery");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn evicted_record_restores_fresh_and_wins_reopen() {
        let dir = temp_dir("evict");
        let path = dir.join("repo.bin");
        let (h1, h2) = {
            let mut repo = Repository::create(&path).unwrap();
            let h1 = repo.store(b"poisoned payload").unwrap();
            let hash = repo.hash_of(h1).unwrap();
            // Simulate a corrupt record: evict it so the identical
            // payload re-stores as a fresh record instead of deduping.
            assert!(repo.evict(hash));
            assert!(!repo.evict(hash), "second evict finds nothing");
            assert!(repo.lookup(hash).is_none());
            let h2 = repo.store(b"poisoned payload").unwrap();
            assert_ne!(h1.id, h2.id, "re-store must append, not dedup");
            assert_eq!(repo.lookup(hash).unwrap().id, h2.id);
            repo.flush_index().unwrap();
            (h1, h2)
        };
        // On reopen the later (good) record owns the hash, not the
        // evicted one — even though both are still in the file.
        let mut reopened = Repository::open(&path).unwrap();
        assert_eq!(reopened.record_count(), 2);
        let hash = reopened.hash_of(h1).unwrap();
        assert_eq!(reopened.lookup(hash).unwrap().id, h2.id);
        assert_eq!(reopened.fetch(h2).unwrap(), b"poisoned payload");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_tail_is_truncated_not_fatal() {
        let dir = temp_dir("garbage-tail");
        let path = dir.join("repo.bin");
        let h = {
            let mut repo = Repository::create(&path).unwrap();
            repo.store(b"good bytes").unwrap()
        };
        // Append bytes that are long enough to parse as a record header
        // but carry a kind tag we never wrote.
        let mut garbage = vec![0xEEu8; RECORD_HEADER_LEN as usize + 7];
        garbage[0] = 99;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        std::io::Write::write_all(&mut file, &garbage).unwrap();
        drop(file);
        let mut repo = Repository::open(&path).unwrap();
        assert_eq!(repo.record_count(), 1);
        assert_eq!(repo.fetch(h).unwrap(), b"good bytes");
        let rec = repo.recovery().unwrap();
        assert_eq!(rec.dropped_bytes, garbage.len() as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_read_reports_typed_truncation_with_record_id() {
        let dir = temp_dir("shortread");
        let path = dir.join("repo.bin");
        let h = {
            let mut repo = Repository::create(&path).unwrap();
            repo.store(b"soon to be truncated").unwrap()
        };
        // Chop the payload tail off.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let mut repo = Repository::open(&path).unwrap();
        // The scan drops the torn record, so re-derive a handle as a
        // stale manifest would: the record id from the previous run.
        assert_eq!(repo.record_count(), 0);
        let err = repo.fetch(h).unwrap_err();
        assert!(matches!(err, NaimError::UnknownPool { pool: 0 }));
        // Now truncate mid-payload on a live repository (index still in
        // memory) to exercise the RepoTruncated path itself.
        let mut live = Repository::create(&path).unwrap();
        let h2 = live.store(b"soon to be truncated").unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let err = live.fetch(h2).unwrap_err();
        let msg = format!("{err}");
        match err {
            NaimError::RepoTruncated {
                record,
                wanted,
                got,
                backend,
            } => {
                assert_eq!(record, h2.id());
                assert_eq!(wanted, 20);
                assert_eq!(got, 15);
                // Satellite: diagnostics name the tier that failed.
                assert_eq!(backend, "local");
                assert!(msg.contains("local backend"), "{msg}");
                // Satellite: the message names the pool image record.
                assert!(msg.contains(&format!("record {record}")), "{msg}");
            }
            other => panic!("expected RepoTruncated, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc_mismatch_is_detected() {
        let dir = temp_dir("crc");
        let path = dir.join("repo.bin");
        let mut repo = Repository::create(&path).unwrap();
        let h = repo.store(b"payload under test").unwrap();
        // Flip one payload byte on disk behind the repository's back.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = repo.fetch(h).unwrap_err();
        assert!(matches!(err, NaimError::RepoChecksum { record, .. } if record == h.id()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_header_mismatch_is_rejected() {
        let dir = temp_dir("version");
        let path = dir.join("repo.bin");
        {
            let mut repo = Repository::create(&path).unwrap();
            repo.store(b"data").unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 0xEE; // stamp a bogus format version
        std::fs::write(&path, &bytes).unwrap();
        match Repository::open(&path).unwrap_err() {
            NaimError::RepoVersion { found, expected } => {
                assert_eq!(found, 0xEE);
                assert_eq!(expected, REPO_VERSION);
            }
            other => panic!("expected RepoVersion, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let dir = temp_dir("magic");
        let path = dir.join("repo.bin");
        std::fs::write(&path, b"definitely not a repository file").unwrap();
        assert!(matches!(
            Repository::open(&path).unwrap_err(),
            NaimError::RepoHeader { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn content_hash_hex_round_trips() {
        let h = ContentHash::of(b"some bytes");
        assert_eq!(ContentHash::from_hex(&h.to_hex()), Some(h));
        assert_eq!(ContentHash::from_hex("short"), None);
        assert_ne!(ContentHash::of(b"a"), ContentHash::of(b"b"));
        // Length folding distinguishes zero-prefix payloads.
        assert_ne!(ContentHash::of(&[0u8; 4]), ContentHash::of(&[0u8; 5]));
    }
}
