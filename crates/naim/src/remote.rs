//! Remote shared-cache backend: a content-hash-keyed blob protocol
//! spoken to a cache daemon, wrapped in a deterministic robustness
//! layer (seeded retry/backoff, per-op timeouts, circuit breaker).
//!
//! Build farms only benefit from the content-addressed cache if it can
//! be shared across machines, and a shared tier is only shippable when
//! an outage cannot fail a build. This module supplies both halves:
//!
//! * **Protocol.** Every blob travels in a [`Frame`]: a fixed header
//!   carrying the operation, the payload's 128-bit [`ContentHash`], the
//!   name and body lengths, then the name, the body, and a trailing
//!   CRC-32 over name+body. Receivers verify the CRC *and* recompute
//!   the content hash before trusting a payload, so a corrupt reply can
//!   never poison a local cache.
//! * **Service.** [`CacheService`] answers frames from any [`Storage`]:
//!   blobs are stored under their content hash (`obj-<32 hex>`, dedup
//!   for free) with a `names.tsv` index mapping names to hashes. The
//!   in-repo `cmocached` binary is this service behind a TCP listener;
//!   [`LoopbackTransport`] is the same service called in-process, so
//!   tests and benches need no real network.
//! * **Robustness.** [`RemoteStorage`] implements the [`Storage`] trait
//!   over a [`RemoteTransport`]. Every exchange retries on a seeded
//!   exponential-backoff schedule whose jitter is drawn from the
//!   deterministic work-unit clock (never wall time, so traces stay
//!   byte-identical), and a circuit breaker trips after N consecutive
//!   failed attempts, demoting the build to local-only with a
//!   `degraded` trace event. [`FlakyTransport`] extends the
//!   fault-injection substrate to the wire: dropped connections,
//!   stalls, garbage replies, and mid-stream disconnects fire at exact
//!   wire-operation indices, replayed identically run to run.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cmo_telemetry::{Telemetry, TraceEvent};

use crate::repository::{crc32, ContentHash};
use crate::storage::{lock, xorshift, Storage};

/// Magic bytes opening every wire frame.
pub const FRAME_MAGIC: [u8; 4] = *b"CMOR";

/// Fixed frame header length: magic, op, hash, name_len, body_len.
const FRAME_HEADER_LEN: usize = 4 + 1 + 16 + 4 + 4;

/// Largest name or body a frame may carry (64 MiB): a sanity bound so a
/// garbage length field cannot make a receiver allocate unbounded
/// memory.
const FRAME_LIMIT: u32 = 64 << 20;

/// Frame operations. Requests use the low range, responses the high.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameOp {
    /// Request: fetch the blob bound to a name.
    Get,
    /// Request: bind a name to the carried blob.
    Put,
    /// Request: unbind a name; a blob no name references any more is
    /// reclaimed from the store.
    Del,
    /// Request: report the daemon's service counters.
    Stats,
    /// Response: here is the blob (hash + body carried).
    Hit,
    /// Response: no blob is bound to that name.
    Miss,
    /// Response: the request was applied.
    Ok,
    /// Response: the service counters (body holds the text line).
    StatsReply,
    /// Response: the daemon failed internally (body holds the message).
    Err,
}

impl FrameOp {
    fn to_byte(self) -> u8 {
        match self {
            FrameOp::Get => 1,
            FrameOp::Put => 2,
            FrameOp::Del => 3,
            FrameOp::Stats => 4,
            FrameOp::Hit => 0x81,
            FrameOp::Miss => 0x82,
            FrameOp::Ok => 0x83,
            FrameOp::StatsReply => 0x84,
            FrameOp::Err => 0x7f,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            1 => FrameOp::Get,
            2 => FrameOp::Put,
            3 => FrameOp::Del,
            4 => FrameOp::Stats,
            0x81 => FrameOp::Hit,
            0x82 => FrameOp::Miss,
            0x83 => FrameOp::Ok,
            0x84 => FrameOp::StatsReply,
            0x7f => FrameOp::Err,
            _ => return None,
        })
    }
}

/// One decoded wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The operation.
    pub op: FrameOp,
    /// Content hash of the body (zero for body-less frames).
    pub hash: ContentHash,
    /// The blob name this frame addresses.
    pub name: String,
    /// The payload (empty for body-less frames).
    pub body: Vec<u8>,
}

impl Frame {
    /// Builds a frame, computing the body's content hash.
    #[must_use]
    pub fn new(op: FrameOp, name: &str, body: Vec<u8>) -> Self {
        let hash = if body.is_empty() {
            ContentHash([0, 0])
        } else {
            ContentHash::of(&body)
        };
        Frame {
            op,
            hash,
            name: name.to_owned(),
            body,
        }
    }

    /// Encodes the frame to wire bytes.
    ///
    /// ```text
    /// frame := magic "CMOR" (4) | op (u8) | hash 2×u64 LE (16)
    ///        | name_len (u32 LE) | body_len (u32 LE)
    ///        | name | body | crc32(name + body) (u32 LE)
    /// ```
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + self.name.len() + self.body.len() + 4);
        out.extend_from_slice(&FRAME_MAGIC);
        out.push(self.op.to_byte());
        out.extend_from_slice(&self.hash.0[0].to_le_bytes());
        out.extend_from_slice(&self.hash.0[1].to_le_bytes());
        out.extend_from_slice(&(self.name.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.body.len() as u32).to_le_bytes());
        out.extend_from_slice(self.name.as_bytes());
        out.extend_from_slice(&self.body);
        let mut crc_input = Vec::with_capacity(self.name.len() + self.body.len());
        crc_input.extend_from_slice(self.name.as_bytes());
        crc_input.extend_from_slice(&self.body);
        out.extend_from_slice(&crc32(&crc_input).to_le_bytes());
        out
    }

    /// Decodes and verifies wire bytes: magic, known op, consistent
    /// lengths, CRC over name+body, and (for body-carrying frames) the
    /// content hash of the body.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] on any violation — a
    /// garbage or truncated reply is indistinguishable from corruption
    /// and must never be trusted.
    pub fn decode(bytes: &[u8]) -> io::Result<Frame> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_owned());
        if bytes.len() < FRAME_HEADER_LEN + 4 {
            return Err(bad("frame shorter than header + crc"));
        }
        if bytes[..4] != FRAME_MAGIC {
            return Err(bad("bad frame magic"));
        }
        let op = FrameOp::from_byte(bytes[4]).ok_or_else(|| bad("unknown frame op"))?;
        let lo = u64::from_le_bytes(bytes[5..13].try_into().unwrap());
        let hi = u64::from_le_bytes(bytes[13..21].try_into().unwrap());
        let name_len = u32::from_le_bytes(bytes[21..25].try_into().unwrap());
        let body_len = u32::from_le_bytes(bytes[25..29].try_into().unwrap());
        if name_len > FRAME_LIMIT || body_len > FRAME_LIMIT {
            return Err(bad("frame length over limit"));
        }
        let total = FRAME_HEADER_LEN + name_len as usize + body_len as usize + 4;
        if bytes.len() != total {
            return Err(bad("frame length mismatch"));
        }
        let name_end = FRAME_HEADER_LEN + name_len as usize;
        let body_end = name_end + body_len as usize;
        let crc = u32::from_le_bytes(bytes[body_end..body_end + 4].try_into().unwrap());
        if crc32(&bytes[FRAME_HEADER_LEN..body_end]) != crc {
            return Err(bad("frame crc mismatch"));
        }
        let name = std::str::from_utf8(&bytes[FRAME_HEADER_LEN..name_end])
            .map_err(|_| bad("frame name is not utf-8"))?
            .to_owned();
        let body = bytes[name_end..body_end].to_vec();
        let hash = ContentHash([lo, hi]);
        if !body.is_empty() && ContentHash::of(&body) != hash {
            return Err(bad("frame content hash mismatch"));
        }
        Ok(Frame {
            op,
            hash,
            name,
            body,
        })
    }
}

/// Reads one length-framed wire frame from a byte stream (the daemon's
/// accept loop and the TCP client both use this). The fixed header is
/// read first to learn the name/body lengths, then the remainder; the
/// caller decodes with [`Frame::decode`], which re-verifies everything.
///
/// # Errors
///
/// Returns [`io::ErrorKind::UnexpectedEof`] on a mid-stream disconnect
/// and [`io::ErrorKind::InvalidData`] on an implausible header.
pub fn read_frame_bytes(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut head = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut head)?;
    if head[..4] != FRAME_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad frame magic",
        ));
    }
    let name_len = u32::from_le_bytes(head[21..25].try_into().unwrap());
    let body_len = u32::from_le_bytes(head[25..29].try_into().unwrap());
    if name_len > FRAME_LIMIT || body_len > FRAME_LIMIT {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length over limit",
        ));
    }
    let rest = name_len as usize + body_len as usize + 4;
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + rest);
    out.extend_from_slice(&head);
    out.resize(FRAME_HEADER_LEN + rest, 0);
    r.read_exact(&mut out[FRAME_HEADER_LEN..])?;
    Ok(out)
}

/// Daemon service counters, answered by the [`FrameOp::Stats`] op and
/// printed by `cmocached --stats` on exit. Blob and byte totals track
/// the store's *current* contents; the traffic counters accumulate
/// since process start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Distinct content blobs currently stored.
    pub blobs: u64,
    /// Total payload bytes across those blobs.
    pub bytes: u64,
    /// GET requests served since start.
    pub gets: u64,
    /// GETs answered with a blob.
    pub hits: u64,
    /// PUT requests acknowledged since start.
    pub puts: u64,
}

/// The daemon half of the blob protocol, serving frames from any
/// [`Storage`]. Blobs live under their content hash (`obj-<32 hex>`),
/// deduplicated across names; `names.tsv` persists the name→hash
/// index so a restarted daemon keeps its warmth. A rebinding PUT or a
/// DEL reclaims the blob it orphans — without that, every pushed
/// generation of a repository would live in the store forever. The
/// [`ServiceStats`] counters are plain atomics, safe to read from a
/// signal handler.
#[derive(Debug)]
pub struct CacheService {
    storage: Arc<dyn Storage>,
    names: Mutex<BTreeMap<String, ContentHash>>,
    blobs: AtomicU64,
    blob_bytes: AtomicU64,
    gets: AtomicU64,
    hits: AtomicU64,
    puts: AtomicU64,
}

/// Name of the persisted name→hash index inside the daemon's storage.
const NAMES_FILE: &str = "names.tsv";

impl CacheService {
    /// Opens the service over `storage`, loading the persisted name
    /// index when present (a missing or partially-torn index only
    /// loses warmth — malformed lines are skipped).
    #[must_use]
    pub fn new(storage: Arc<dyn Storage>) -> Self {
        let mut names = BTreeMap::new();
        if let Ok(bytes) = storage.read(NAMES_FILE) {
            for line in String::from_utf8_lossy(&bytes).lines() {
                let Some((name, hex)) = line.split_once('\t') else {
                    continue;
                };
                if let Some(hash) = ContentHash::from_hex(hex) {
                    names.insert(name.to_owned(), hash);
                }
            }
        }
        let service = CacheService {
            storage,
            names: Mutex::new(names),
            blobs: AtomicU64::new(0),
            blob_bytes: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            puts: AtomicU64::new(0),
        };
        // Seed the store totals from the loaded index: one entry per
        // distinct referenced hash, sized from the blob on disk.
        let names = lock(&service.names);
        let distinct: std::collections::BTreeSet<[u64; 2]> = names.values().map(|h| h.0).collect();
        for raw in distinct {
            let blob = Self::blob_name(ContentHash(raw));
            if let Ok(size) = service.storage.size(&blob) {
                service.blobs.fetch_add(1, Ordering::Relaxed);
                service.blob_bytes.fetch_add(size, Ordering::Relaxed);
            }
        }
        drop(names);
        service
    }

    /// The service counters. Reads only atomics — no locks, no
    /// allocation — so it is safe from a signal handler.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            blobs: self.blobs.load(Ordering::Relaxed),
            bytes: self.blob_bytes.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
        }
    }

    fn blob_name(hash: ContentHash) -> String {
        format!("obj-{}", hash.to_hex())
    }

    /// Removes the blob file for `hash` when no name references it any
    /// more, keeping the blob and byte totals true. Saturating updates:
    /// a blob resized behind the daemon's back must not wrap a counter.
    fn reclaim_if_orphaned(&self, names: &BTreeMap<String, ContentHash>, hash: ContentHash) {
        if names.values().any(|h| *h == hash) {
            return;
        }
        let blob = Self::blob_name(hash);
        let size = self.storage.size(&blob).unwrap_or(0);
        if self.storage.remove(&blob).is_ok() {
            let _ = self
                .blobs
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                    Some(b.saturating_sub(1))
                });
            let _ = self
                .blob_bytes
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                    Some(b.saturating_sub(size))
                });
        }
    }

    fn persist_names(&self, names: &BTreeMap<String, ContentHash>) -> io::Result<()> {
        let mut out = String::new();
        for (name, hash) in names {
            out.push_str(name);
            out.push('\t');
            out.push_str(&hash.to_hex());
            out.push('\n');
        }
        self.storage.write(NAMES_FILE, out.as_bytes())?;
        self.storage.sync(NAMES_FILE)
    }

    /// Answers one request frame with one response frame. Never
    /// panics: malformed requests and storage failures come back as
    /// [`FrameOp::Err`] frames for the client's retry logic to judge.
    #[must_use]
    pub fn handle(&self, request: &[u8]) -> Vec<u8> {
        match Frame::decode(request) {
            Ok(frame) => self.dispatch(&frame).encode(),
            Err(e) => Frame::new(FrameOp::Err, "", e.to_string().into_bytes()).encode(),
        }
    }

    fn dispatch(&self, req: &Frame) -> Frame {
        match req.op {
            FrameOp::Get => {
                self.gets.fetch_add(1, Ordering::Relaxed);
                // Copy the hash out before matching: a scrutinee guard
                // would still be held when the corrupt arm re-locks.
                let hit = lock(&self.names).get(&req.name).copied();
                match hit {
                    None => Frame::new(FrameOp::Miss, &req.name, Vec::new()),
                    Some(hash) => match self.storage.read(&Self::blob_name(hash)) {
                        Ok(body) if ContentHash::of(&body) == hash || body.is_empty() => {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            Frame::new(FrameOp::Hit, &req.name, body)
                        }
                        // A corrupt or missing blob self-heals into a miss:
                        // the client recompiles and re-puts a good copy.
                        _ => {
                            let mut names = lock(&self.names);
                            names.remove(&req.name);
                            self.reclaim_if_orphaned(&names, hash);
                            Frame::new(FrameOp::Miss, &req.name, Vec::new())
                        }
                    },
                }
            }
            FrameOp::Put => {
                let hash = req.hash;
                let blob = Self::blob_name(hash);
                let stored = if self.storage.exists(&blob) {
                    Ok(())
                } else {
                    self.storage
                        .write(&blob, &req.body)
                        .and_then(|()| self.storage.sync(&blob))
                };
                match stored {
                    Ok(()) => {
                        let mut names = lock(&self.names);
                        let newly_referenced = !names.values().any(|h| *h == hash);
                        let old = names.insert(req.name.clone(), hash);
                        match self.persist_names(&names) {
                            Ok(()) => {
                                self.puts.fetch_add(1, Ordering::Relaxed);
                                if newly_referenced {
                                    self.blobs.fetch_add(1, Ordering::Relaxed);
                                    self.blob_bytes.fetch_add(
                                        self.storage.size(&blob).unwrap_or(0),
                                        Ordering::Relaxed,
                                    );
                                }
                                // A rebind orphans the previous blob
                                // unless another name still holds it.
                                if let Some(old) = old.filter(|o| *o != hash) {
                                    self.reclaim_if_orphaned(&names, old);
                                }
                                Frame::new(FrameOp::Ok, &req.name, Vec::new())
                            }
                            Err(e) => {
                                Frame::new(FrameOp::Err, &req.name, e.to_string().into_bytes())
                            }
                        }
                    }
                    Err(e) => Frame::new(FrameOp::Err, &req.name, e.to_string().into_bytes()),
                }
            }
            FrameOp::Del => {
                let mut names = lock(&self.names);
                let Some(hash) = names.remove(&req.name) else {
                    return Frame::new(FrameOp::Miss, &req.name, Vec::new());
                };
                match self.persist_names(&names) {
                    Ok(()) => {
                        self.reclaim_if_orphaned(&names, hash);
                        Frame::new(FrameOp::Ok, &req.name, Vec::new())
                    }
                    Err(e) => Frame::new(FrameOp::Err, &req.name, e.to_string().into_bytes()),
                }
            }
            FrameOp::Stats => {
                let s = self.stats();
                let line = format!(
                    "blobs={} bytes={} gets={} hits={} puts={}",
                    s.blobs, s.bytes, s.gets, s.hits, s.puts
                );
                Frame::new(FrameOp::StatsReply, &req.name, line.into_bytes())
            }
            // A response op arriving as a request is a client bug.
            _ => Frame::new(FrameOp::Err, &req.name, b"not a request op".to_vec()),
        }
    }
}

/// One request/response exchange with a cache daemon.
///
/// Implementations carry the bytes; all retry, verification, and
/// breaker logic lives above in [`RemoteStorage`], so every transport —
/// real TCP, in-process loopback, fault-injecting wrapper — shares the
/// exact same robustness behaviour.
pub trait RemoteTransport: fmt::Debug + Send + Sync {
    /// Sends one encoded request frame and returns the raw response
    /// frame bytes.
    ///
    /// # Errors
    ///
    /// Returns any connection, timeout, or framing failure.
    fn round_trip(&self, request: &[u8]) -> io::Result<Vec<u8>>;

    /// Whether this transport moves real wall-clock time (a network).
    /// Deterministic transports return `false`, which turns retry
    /// backoff into pure work-unit accounting with no sleeping.
    fn is_wall_clock(&self) -> bool {
        false
    }
}

/// TCP transport to a `cmocached` daemon, one connection per exchange.
///
/// Connect, read, and write each observe the per-op timeout; wall time
/// is used *only* to bound waiting and is never recorded anywhere, so
/// reports and traces stay byte-identical regardless of latency.
#[derive(Debug)]
pub struct TcpTransport {
    addr: String,
    timeout: std::time::Duration,
}

impl TcpTransport {
    /// Creates a transport for `addr` (`host:port`) with a per-op
    /// timeout in milliseconds.
    #[must_use]
    pub fn new(addr: impl Into<String>, timeout_ms: u64) -> Self {
        TcpTransport {
            addr: addr.into(),
            timeout: std::time::Duration::from_millis(timeout_ms.max(1)),
        }
    }
}

impl RemoteTransport for TcpTransport {
    fn round_trip(&self, request: &[u8]) -> io::Result<Vec<u8>> {
        use std::net::{TcpStream, ToSocketAddrs};
        let addr =
            self.addr.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address")
            })?;
        let stream = TcpStream::connect_timeout(&addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let mut stream = stream;
        stream.write_all(request)?;
        stream.flush()?;
        read_frame_bytes(&mut stream)
    }

    fn is_wall_clock(&self) -> bool {
        true
    }
}

/// In-process transport: every exchange is answered directly by a
/// [`CacheService`], no sockets involved. Tests and benches use this to
/// exercise the full remote path deterministically.
#[derive(Debug)]
pub struct LoopbackTransport {
    service: CacheService,
}

impl LoopbackTransport {
    /// Wraps a service.
    #[must_use]
    pub fn new(service: CacheService) -> Self {
        LoopbackTransport { service }
    }

    /// Convenience: a loopback daemon over `storage`.
    #[must_use]
    pub fn over(storage: Arc<dyn Storage>) -> Self {
        LoopbackTransport::new(CacheService::new(storage))
    }
}

impl RemoteTransport for LoopbackTransport {
    fn round_trip(&self, request: &[u8]) -> io::Result<Vec<u8>> {
        Ok(self.service.handle(request))
    }
}

/// A wire fault, applied to the exchange it is scheduled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// The connection is refused before any byte moves.
    Drop,
    /// The daemon stalls past the per-op timeout; the exchange fails
    /// with `TimedOut` and nothing useful arrives.
    Stall,
    /// The reply arrives with one deterministically-chosen bit flipped
    /// (caught by the frame CRC / content hash).
    Garbage,
    /// The daemon disconnects mid-reply; only a prefix arrives.
    Disconnect,
}

#[derive(Debug, Default)]
struct WirePlan {
    ops: u64,
    /// The daemon "dies" at this exchange index: it and every later
    /// exchange fail with `ConnectionRefused`.
    kill_at: Option<u64>,
    faults: BTreeMap<u64, WireFault>,
}

/// Transport wrapper injecting wire faults from a deterministic,
/// exchange-indexed schedule — [`crate::FaultyStorage`]'s model
/// extended to the network. Retries are separate exchanges, so a
/// schedule can hit the first attempt and spare the retry (or not).
#[derive(Debug)]
pub struct FlakyTransport {
    inner: Arc<dyn RemoteTransport>,
    plan: Mutex<WirePlan>,
}

impl FlakyTransport {
    /// Wraps `inner` with an empty schedule.
    #[must_use]
    pub fn new(inner: Arc<dyn RemoteTransport>) -> Self {
        FlakyTransport {
            inner,
            plan: Mutex::new(WirePlan::default()),
        }
    }

    /// Kills the daemon at exchange index `op`: that exchange and all
    /// later ones fail as refused connections.
    #[must_use]
    pub fn kill_at(self, op: u64) -> Self {
        lock(&self.plan).kill_at = Some(op);
        self
    }

    /// Schedules `fault` on exchange index `op`.
    #[must_use]
    pub fn with_fault(self, op: u64, fault: WireFault) -> Self {
        lock(&self.plan).faults.insert(op, fault);
        self
    }

    /// Spreads `count` wire faults pseudo-randomly (seeded,
    /// deterministic) over exchange indices `0..max_op`.
    #[must_use]
    pub fn with_seeded_faults(
        inner: Arc<dyn RemoteTransport>,
        seed: u64,
        max_op: u64,
        count: u32,
    ) -> Self {
        let this = FlakyTransport::new(inner);
        {
            let mut plan = lock(&this.plan);
            let mut state = seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15)
                .wrapping_mul(0xbf58_476d_1ce4_e5b9)
                | 1;
            for _ in 0..count {
                let op = xorshift(&mut state) % max_op.max(1);
                let fault = match xorshift(&mut state) % 4 {
                    0 => WireFault::Drop,
                    1 => WireFault::Stall,
                    2 => WireFault::Garbage,
                    _ => WireFault::Disconnect,
                };
                plan.faults.insert(op, fault);
            }
        }
        this
    }

    /// Exchanges attempted so far (including faulted ones).
    #[must_use]
    pub fn ops(&self) -> u64 {
        lock(&self.plan).ops
    }

    fn flip_bit(data: &mut [u8], op: u64) {
        if data.is_empty() {
            return;
        }
        let bit = (op as usize).wrapping_mul(0x9e37_79b9) % (data.len() * 8);
        data[bit / 8] ^= 1 << (bit % 8);
    }
}

impl RemoteTransport for FlakyTransport {
    fn round_trip(&self, request: &[u8]) -> io::Result<Vec<u8>> {
        let (op, fault) = {
            let mut plan = lock(&self.plan);
            let op = plan.ops;
            plan.ops += 1;
            if plan.kill_at.is_some_and(|k| op >= k) {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "daemon killed (injected)",
                ));
            }
            (op, plan.faults.get(&op).copied())
        };
        match fault {
            Some(WireFault::Drop) => Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "connection dropped (injected)",
            )),
            Some(WireFault::Stall) => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "daemon stalled past the per-op timeout (injected)",
            )),
            Some(WireFault::Garbage) => {
                let mut reply = self.inner.round_trip(request)?;
                Self::flip_bit(&mut reply, op);
                Ok(reply)
            }
            Some(WireFault::Disconnect) => {
                let mut reply = self.inner.round_trip(request)?;
                reply.truncate(reply.len() / 2);
                Ok(reply)
            }
            None => self.inner.round_trip(request),
        }
    }

    fn is_wall_clock(&self) -> bool {
        self.inner.is_wall_clock()
    }
}

/// Retry/backoff/breaker policy for a [`RemoteStorage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first failure (total attempts =
    /// `retries + 1`).
    pub retries: u32,
    /// Base backoff delay in work units; attempt `a` waits
    /// `base << a` plus seeded jitter in the same range.
    pub base_units: u64,
    /// Seed for the jitter schedule. Two runs with the same seed and
    /// the same fault schedule back off identically.
    pub seed: u64,
    /// Consecutive failed attempts (counted across exchanges, reset by
    /// any success) that trip the circuit breaker. At the default
    /// `retries = 2` a single fully-exhausted exchange — a dead daemon's
    /// first contact — is enough to demote.
    pub breaker_threshold: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 2,
            base_units: 8,
            seed: 0xC3D0_CACE,
            breaker_threshold: 3,
        }
    }
}

impl RetryPolicy {
    /// The deterministic backoff delay, in work units, before retrying
    /// attempt `attempt` of exchange `op`: exponential in the attempt,
    /// with jitter drawn from the seed and the current work-unit clock
    /// reading — never from wall time, so the delay (and the trace
    /// event recording it) is identical run to run.
    #[must_use]
    pub fn backoff_units(&self, work: u64, op: u64, attempt: u32) -> u64 {
        let base = self.base_units.max(1) << attempt.min(16);
        // Mix before the nonzero clamp so every seed bit (including the
        // lowest) perturbs the schedule; xorshift needs state != 0.
        let mut state = (self.seed
            ^ work.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ op.wrapping_mul(0xbf58_476d_1ce4_e5b9)
            ^ u64::from(attempt).wrapping_mul(0x94d0_49bb_1331_11eb))
        .wrapping_mul(0x2545_f491_4f6c_dd1d)
            | 1;
        base + xorshift(&mut state) % base
    }
}

/// Statistics of a build's remote-tier traffic, surfaced in the
/// unified report's `faults.remote` section. All counters advance only
/// on the main thread's deterministic cache operations, so the section
/// is byte-identical at every `-j`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteStats {
    /// Whether a remote tier was attached at all.
    pub enabled: bool,
    /// GET exchanges issued.
    pub gets: u64,
    /// GETs answered with a verified blob.
    pub hits: u64,
    /// GETs answered with a miss.
    pub misses: u64,
    /// PUT exchanges acknowledged.
    pub puts: u64,
    /// Failed attempts that were retried.
    pub retries: u64,
    /// Exchanges that exhausted every attempt.
    pub failures: u64,
    /// Whether the circuit breaker tripped (build demoted to
    /// local-only for its remainder).
    pub breaker_open: bool,
    /// Verified payload bytes fetched.
    pub fetched_bytes: u64,
    /// Payload bytes pushed.
    pub pushed_bytes: u64,
}

#[derive(Debug, Default)]
struct RemoteState {
    stats: RemoteStats,
    /// Logical exchanges started (the retry schedule's op index).
    ops: u64,
    /// Consecutive failed attempts; reset by any success.
    consecutive_failures: u32,
}

/// The remote cache tier as a [`Storage`] backend.
///
/// Whole-file `read`/`write`/`remove` map directly onto the blob
/// protocol; the byte-granular operations (`append`, `read_at`,
/// `truncate`) compose read-modify-write exchanges, so a `Repository`
/// can run on a remote backend outright. The production configuration
/// composes it under `TieredStorage` instead, where only whole-blob
/// GET/PUT are ever issued.
#[derive(Debug)]
pub struct RemoteStorage {
    transport: Arc<dyn RemoteTransport>,
    policy: RetryPolicy,
    tel: Telemetry,
    state: Mutex<RemoteState>,
}

impl RemoteStorage {
    /// Creates the tier over `transport` with `policy`.
    #[must_use]
    pub fn new(transport: Arc<dyn RemoteTransport>, policy: RetryPolicy) -> Self {
        let state = RemoteState {
            stats: RemoteStats {
                enabled: true,
                ..RemoteStats::default()
            },
            ..RemoteState::default()
        };
        RemoteStorage {
            transport,
            policy,
            tel: Telemetry::disabled(),
            state: Mutex::new(state),
        }
    }

    /// Attaches the telemetry sink used for `remote` trace events and
    /// the work-unit clock the backoff jitter draws from.
    #[must_use]
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tel = tel;
        self
    }

    /// This tier's traffic statistics so far.
    #[must_use]
    pub fn stats(&self) -> RemoteStats {
        lock(&self.state).stats
    }

    /// Whether the circuit breaker has tripped.
    #[must_use]
    pub fn breaker_open(&self) -> bool {
        lock(&self.state).stats.breaker_open
    }

    fn demoted() -> io::Error {
        io::Error::new(
            io::ErrorKind::ConnectionAborted,
            "remote tier demoted (circuit breaker open)",
        )
    }

    /// One attempt: round-trip, decode, and verify. An `Err` response
    /// frame is a daemon-side failure and counts as a failed attempt.
    fn attempt(&self, request: &[u8]) -> io::Result<Frame> {
        let reply = self.transport.round_trip(request)?;
        let frame = Frame::decode(&reply)?;
        if frame.op == FrameOp::Err {
            return Err(io::Error::other(format!(
                "daemon error: {}",
                String::from_utf8_lossy(&frame.body)
            )));
        }
        Ok(frame)
    }

    /// Runs one logical exchange through the retry schedule and the
    /// circuit breaker. `what` names the operation in trace events
    /// (`"get"`, `"put"`, `"del"`).
    fn exchange(&self, what: &str, name: &str, request: &[u8]) -> io::Result<Frame> {
        let op = {
            let mut state = lock(&self.state);
            if state.stats.breaker_open {
                return Err(Self::demoted());
            }
            let op = state.ops;
            state.ops += 1;
            op
        };
        let mut attempt = 0u32;
        loop {
            match self.attempt(request) {
                Ok(frame) => {
                    lock(&self.state).consecutive_failures = 0;
                    return Ok(frame);
                }
                Err(_) if attempt < self.policy.retries => {
                    let delay = self
                        .policy
                        .backoff_units(self.tel.current_work(), op, attempt);
                    {
                        let mut state = lock(&self.state);
                        state.stats.retries += 1;
                        state.consecutive_failures += 1;
                    }
                    self.tel.emit(TraceEvent::Remote {
                        action: "retry",
                        name: format!("{what} {name}"),
                        bytes: delay,
                    });
                    // The delay lives on the deterministic work clock;
                    // real networks additionally sleep it off (bounded),
                    // deterministic transports never sleep.
                    self.tel.work(delay);
                    if self.transport.is_wall_clock() {
                        std::thread::sleep(std::time::Duration::from_millis(delay.min(250)));
                    }
                    attempt += 1;
                }
                Err(e) => {
                    let tripped = {
                        let mut state = lock(&self.state);
                        state.stats.failures += 1;
                        state.consecutive_failures += 1;
                        let trip = !state.stats.breaker_open
                            && state.consecutive_failures >= self.policy.breaker_threshold;
                        if trip {
                            state.stats.breaker_open = true;
                        }
                        trip
                    };
                    if tripped {
                        self.tel.emit(TraceEvent::Remote {
                            action: "open",
                            name: format!("{what} {name}"),
                            bytes: 0,
                        });
                        self.tel.emit(TraceEvent::Degraded {
                            component: "remote",
                            name: "circuit-breaker".to_owned(),
                            error: e.to_string(),
                        });
                    }
                    return Err(e);
                }
            }
        }
    }

    fn get(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        lock(&self.state).stats.gets += 1;
        let req = Frame::new(FrameOp::Get, name, Vec::new()).encode();
        let frame = self.exchange("get", name, &req)?;
        match frame.op {
            FrameOp::Hit => {
                {
                    let mut state = lock(&self.state);
                    state.stats.hits += 1;
                    state.stats.fetched_bytes += frame.body.len() as u64;
                }
                self.tel.emit(TraceEvent::Remote {
                    action: "hit",
                    name: name.to_owned(),
                    bytes: frame.body.len() as u64,
                });
                Ok(Some(frame.body))
            }
            FrameOp::Miss => {
                lock(&self.state).stats.misses += 1;
                self.tel.emit(TraceEvent::Remote {
                    action: "miss",
                    name: name.to_owned(),
                    bytes: 0,
                });
                Ok(None)
            }
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unexpected reply to get",
            )),
        }
    }

    fn put(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let req = Frame::new(FrameOp::Put, name, data.to_vec()).encode();
        let frame = self.exchange("put", name, &req)?;
        match frame.op {
            FrameOp::Ok => {
                {
                    let mut state = lock(&self.state);
                    state.stats.puts += 1;
                    state.stats.pushed_bytes += data.len() as u64;
                }
                self.tel.emit(TraceEvent::Remote {
                    action: "put",
                    name: name.to_owned(),
                    bytes: data.len() as u64,
                });
                Ok(())
            }
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unexpected reply to put",
            )),
        }
    }

    fn del(&self, name: &str) -> io::Result<bool> {
        let req = Frame::new(FrameOp::Del, name, Vec::new()).encode();
        let frame = self.exchange("del", name, &req)?;
        match frame.op {
            FrameOp::Ok => Ok(true),
            FrameOp::Miss => Ok(false),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unexpected reply to del",
            )),
        }
    }

    fn missing(name: &str) -> io::Error {
        io::Error::new(io::ErrorKind::NotFound, format!("no such blob: {name}"))
    }
}

impl Storage for RemoteStorage {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.get(name)?.ok_or_else(|| Self::missing(name))
    }

    fn write(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.put(name, data)
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<u64> {
        let mut blob = self.get(name)?.unwrap_or_default();
        let offset = blob.len() as u64;
        blob.extend_from_slice(data);
        self.put(name, &blob)?;
        Ok(offset)
    }

    fn read_at(&self, name: &str, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let blob = self.read(name)?;
        let start = offset as usize;
        match start.checked_add(len).filter(|&e| e <= blob.len()) {
            Some(end) => Ok(blob[start..end].to_vec()),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "read past end of blob",
            )),
        }
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        Ok(self.read(name)?.len() as u64)
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let mut blob = self.read(name)?;
        blob.truncate(len as usize);
        self.put(name, &blob)
    }

    fn sync(&self, _name: &str) -> io::Result<()> {
        // Puts are write-through on the daemon; there is nothing
        // further to make durable from the client side.
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let blob = self.read(from)?;
        self.put(to, &blob)?;
        self.del(from)?;
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        matches!(self.get(name), Ok(Some(_)))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        if self.del(name)? {
            Ok(())
        } else {
            Err(Self::missing(name))
        }
    }

    fn tier_label(&self) -> &'static str {
        "remote"
    }

    fn remote_stats(&self) -> Option<RemoteStats> {
        Some(self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn loopback(storage: Arc<dyn Storage>) -> Arc<dyn RemoteTransport> {
        Arc::new(LoopbackTransport::over(storage))
    }

    #[test]
    fn frame_round_trips_and_rejects_corruption() {
        let frame = Frame::new(FrameOp::Put, "repo.naim", b"payload bytes".to_vec());
        let wire = frame.encode();
        assert_eq!(Frame::decode(&wire).unwrap(), frame);
        // One flipped bit anywhere is fatal.
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x40;
            assert!(Frame::decode(&bad).is_err(), "flip at byte {i} accepted");
        }
        // So is any truncation.
        for cut in 0..wire.len() {
            assert!(
                Frame::decode(&wire[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn read_frame_bytes_frames_a_stream() {
        let frame = Frame::new(FrameOp::Hit, "blob", vec![7u8; 300]);
        let wire = frame.encode();
        let mut cursor = io::Cursor::new(wire.clone());
        assert_eq!(read_frame_bytes(&mut cursor).unwrap(), wire);
        // A mid-stream disconnect surfaces as UnexpectedEof.
        let mut short = io::Cursor::new(wire[..wire.len() / 2].to_vec());
        assert_eq!(
            read_frame_bytes(&mut short).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn service_round_trips_and_persists_names() {
        let store: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let service = CacheService::new(Arc::clone(&store));
        let put = Frame::new(FrameOp::Put, "a", b"alpha".to_vec()).encode();
        let reply = Frame::decode(&service.handle(&put)).unwrap();
        assert_eq!(reply.op, FrameOp::Ok);
        let get = Frame::new(FrameOp::Get, "a", Vec::new()).encode();
        let reply = Frame::decode(&service.handle(&get)).unwrap();
        assert_eq!(reply.op, FrameOp::Hit);
        assert_eq!(reply.body, b"alpha");
        // A restarted daemon over the same storage keeps its warmth.
        let reborn = CacheService::new(Arc::clone(&store));
        let reply = Frame::decode(&reborn.handle(&get)).unwrap();
        assert_eq!(
            (reply.op, reply.body.as_slice()),
            (FrameOp::Hit, &b"alpha"[..])
        );
        // Unknown names miss; garbage requests come back as Err frames.
        let miss = Frame::new(FrameOp::Get, "nope", Vec::new()).encode();
        assert_eq!(
            Frame::decode(&service.handle(&miss)).unwrap().op,
            FrameOp::Miss
        );
        assert_eq!(
            Frame::decode(&service.handle(b"not a frame")).unwrap().op,
            FrameOp::Err
        );
    }

    #[test]
    fn service_self_heals_a_corrupt_blob_into_a_miss() {
        let store: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let service = CacheService::new(Arc::clone(&store));
        let put = Frame::new(FrameOp::Put, "a", b"good bytes".to_vec()).encode();
        let _ = service.handle(&put);
        // Corrupt the stored blob behind the daemon's back.
        let blob = CacheService::blob_name(ContentHash::of(b"good bytes"));
        store.write(&blob, b"bad bytes!").unwrap();
        let get = Frame::new(FrameOp::Get, "a", Vec::new()).encode();
        assert_eq!(
            Frame::decode(&service.handle(&get)).unwrap().op,
            FrameOp::Miss
        );
    }

    #[test]
    fn rebind_and_del_reclaim_orphaned_blobs() {
        let store: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let service = CacheService::new(Arc::clone(&store));
        let blob_of = |body: &[u8]| CacheService::blob_name(ContentHash::of(body));
        let _ = service.handle(&Frame::new(FrameOp::Put, "a", b"v1".to_vec()).encode());
        assert!(store.exists(&blob_of(b"v1")));
        // Rebinding `a` orphans v1: the blob goes with it.
        let _ = service.handle(&Frame::new(FrameOp::Put, "a", b"v2".to_vec()).encode());
        assert!(!store.exists(&blob_of(b"v1")), "orphaned blob must go");
        assert!(store.exists(&blob_of(b"v2")));
        // A second name on the same content protects the blob from
        // either name's deletion — until the last reference drops.
        let _ = service.handle(&Frame::new(FrameOp::Put, "b", b"v2".to_vec()).encode());
        let del_a = Frame::new(FrameOp::Del, "a", Vec::new()).encode();
        assert_eq!(
            Frame::decode(&service.handle(&del_a)).unwrap().op,
            FrameOp::Ok
        );
        assert!(store.exists(&blob_of(b"v2")), "still referenced by `b`");
        let del_b = Frame::new(FrameOp::Del, "b", Vec::new()).encode();
        assert_eq!(
            Frame::decode(&service.handle(&del_b)).unwrap().op,
            FrameOp::Ok
        );
        assert!(!store.exists(&blob_of(b"v2")), "last reference dropped");
        let stats = service.stats();
        assert_eq!((stats.blobs, stats.bytes), (0, 0));
    }

    #[test]
    fn stats_op_reports_store_totals_and_traffic() {
        let store: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let service = CacheService::new(Arc::clone(&store));
        let _ = service.handle(&Frame::new(FrameOp::Put, "a", b"alpha".to_vec()).encode());
        let _ = service.handle(&Frame::new(FrameOp::Put, "b", b"beta!!".to_vec()).encode());
        let get = |name: &str| Frame::new(FrameOp::Get, name, Vec::new()).encode();
        let _ = service.handle(&get("a"));
        let _ = service.handle(&get("nope"));
        let reply =
            Frame::decode(&service.handle(&Frame::new(FrameOp::Stats, "", Vec::new()).encode()))
                .unwrap();
        assert_eq!(reply.op, FrameOp::StatsReply);
        assert_eq!(
            String::from_utf8(reply.body).unwrap(),
            "blobs=2 bytes=11 gets=2 hits=1 puts=2"
        );
        // A restarted daemon re-derives the store totals from the
        // persisted index; traffic counters restart at zero.
        let reborn = CacheService::new(Arc::clone(&store));
        let stats = reborn.stats();
        assert_eq!((stats.blobs, stats.bytes), (2, 11));
        assert_eq!((stats.gets, stats.hits, stats.puts), (0, 0, 0));
    }

    #[test]
    fn remote_storage_satisfies_the_storage_contract() {
        let remote = RemoteStorage::new(
            loopback(Arc::new(MemStorage::new())),
            RetryPolicy::default(),
        );
        remote.write("f", b"abc").unwrap();
        assert_eq!(remote.append("f", b"def").unwrap(), 3);
        assert_eq!(remote.read("f").unwrap(), b"abcdef");
        assert_eq!(remote.read_at("f", 2, 2).unwrap(), b"cd");
        assert_eq!(remote.size("f").unwrap(), 6);
        remote.truncate("f", 4).unwrap();
        remote.sync("f").unwrap();
        remote.rename("f", "g").unwrap();
        assert!(remote.exists("g") && !remote.exists("f"));
        assert_eq!(remote.read("g").unwrap(), b"abcd");
        remote.remove("g").unwrap();
        assert!(matches!(
            remote.read("g").unwrap_err().kind(),
            io::ErrorKind::NotFound
        ));
        assert_eq!(remote.tier_label(), "remote");
        let stats = remote.stats();
        assert!(stats.enabled && stats.puts > 0 && stats.hits > 0);
        assert_eq!(stats.failures, 0);
        assert!(!stats.breaker_open);
    }

    #[test]
    fn one_wire_fault_is_retried_transparently() {
        for fault in [
            WireFault::Drop,
            WireFault::Stall,
            WireFault::Garbage,
            WireFault::Disconnect,
        ] {
            let inner = loopback(Arc::new(MemStorage::new()));
            let flaky = Arc::new(FlakyTransport::new(inner).with_fault(1, fault));
            let remote = RemoteStorage::new(flaky, RetryPolicy::default());
            remote.write("f", b"survives one fault").unwrap();
            assert_eq!(remote.read("f").unwrap(), b"survives one fault");
            let stats = remote.stats();
            assert_eq!(stats.retries, 1, "{fault:?}");
            assert_eq!(stats.failures, 0, "{fault:?}");
        }
    }

    #[test]
    fn breaker_trips_after_consecutive_failures_and_stops_traffic() {
        // Attempts count across exchanges: with no retries, it takes
        // `threshold` whole exchanges to trip.
        let inner = loopback(Arc::new(MemStorage::new()));
        let flaky = Arc::new(FlakyTransport::new(inner).kill_at(0));
        let tel = Telemetry::enabled();
        let policy = RetryPolicy {
            retries: 0,
            ..RetryPolicy::default()
        };
        let remote = RemoteStorage::new(Arc::clone(&flaky) as Arc<dyn RemoteTransport>, policy)
            .with_telemetry(tel.clone());
        let threshold = policy.breaker_threshold;
        for n in 0..threshold {
            assert!(!remote.breaker_open(), "tripped after {n} attempts");
            assert!(remote.read("f").is_err());
        }
        assert!(remote.breaker_open());
        let wire_ops = flaky.ops();
        // Demoted: no further exchange reaches the transport.
        assert!(remote.read("g").is_err());
        assert!(!remote.exists("g"));
        assert_eq!(flaky.ops(), wire_ops, "breaker must stop wire traffic");
        let stats = remote.stats();
        assert_eq!(stats.failures, u64::from(threshold));
        assert_eq!(stats.retries, 0);
        let trace = tel.render_trace();
        assert!(
            trace.contains(r#""event":"remote","action":"open""#),
            "{trace}"
        );
        assert!(
            trace.contains(r#""event":"degraded","component":"remote","name":"circuit-breaker""#),
            "{trace}"
        );
    }

    #[test]
    fn dead_daemon_demotes_within_the_first_exchange_at_default_policy() {
        // The default budget (2 retries, threshold 3) makes one fully
        // exhausted exchange trip the breaker, so an outage costs one
        // retry schedule — not one per touched name.
        let inner = loopback(Arc::new(MemStorage::new()));
        let flaky = Arc::new(FlakyTransport::new(inner).kill_at(0));
        let remote = RemoteStorage::new(
            Arc::clone(&flaky) as Arc<dyn RemoteTransport>,
            RetryPolicy::default(),
        );
        assert!(remote.read("f").is_err());
        assert!(remote.breaker_open());
        assert_eq!(flaky.ops(), u64::from(RetryPolicy::default().retries) + 1);
        let stats = remote.stats();
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.retries, u64::from(RetryPolicy::default().retries));
    }

    #[test]
    fn backoff_schedule_is_reproducible_and_seed_sensitive() {
        let policy = RetryPolicy::default();
        for op in 0..8u64 {
            for attempt in 0..4u32 {
                for work in [0u64, 17, 4096] {
                    assert_eq!(
                        policy.backoff_units(work, op, attempt),
                        policy.backoff_units(work, op, attempt)
                    );
                    // Exponential floor grows with the attempt.
                    assert!(
                        policy.backoff_units(work, op, attempt) >= policy.base_units << attempt
                    );
                }
            }
        }
        let other = RetryPolicy {
            seed: policy.seed ^ 1,
            ..policy
        };
        let differs = (0..16u64)
            .any(|op| other.backoff_units(100, op, 1) != policy.backoff_units(100, op, 1));
        assert!(differs, "seed must perturb the jitter");
    }

    #[test]
    fn seeded_wire_schedule_is_deterministic() {
        let a = FlakyTransport::with_seeded_faults(loopback(Arc::new(MemStorage::new())), 9, 50, 6);
        let b = FlakyTransport::with_seeded_faults(loopback(Arc::new(MemStorage::new())), 9, 50, 6);
        assert_eq!(lock(&a.plan).faults, lock(&b.plan).faults);
        let c =
            FlakyTransport::with_seeded_faults(loopback(Arc::new(MemStorage::new())), 10, 50, 6);
        assert_ne!(lock(&a.plan).faults, lock(&c.plan).faults);
    }

    #[test]
    fn identical_fault_schedules_emit_identical_traces() {
        let run = || {
            let tel = Telemetry::enabled();
            let inner = loopback(Arc::new(MemStorage::new()));
            let flaky = Arc::new(
                FlakyTransport::new(inner)
                    .with_fault(1, WireFault::Garbage)
                    .with_fault(3, WireFault::Stall),
            );
            let remote =
                RemoteStorage::new(flaky, RetryPolicy::default()).with_telemetry(tel.clone());
            remote.write("a", b"one").unwrap();
            remote.write("b", b"two").unwrap();
            let _ = remote.read("a");
            let _ = remote.read("missing");
            (tel.render_trace(), remote.stats())
        };
        let (trace1, stats1) = run();
        let (trace2, stats2) = run();
        assert_eq!(trace1, trace2);
        assert_eq!(stats1, stats2);
        assert!(trace1.contains(r#""action":"retry""#), "{trace1}");
    }
}
