//! Compact byte encoding for relocatable pools.
//!
//! The encoder produces the paper's "relocatable form": a dense,
//! address-independent image in which objects are laid out in *stack
//! form* — each object immediately followed by the objects it owns — so
//! that most ownership links need no stored pointer at all (§4.2.2).
//! Integers use LEB128 varints (signed values zig-zag encoded), and
//! inter-object references are [`Pid`]s.

use crate::error::DecodeError;
use crate::pid::Pid;

/// Streaming encoder for a relocatable pool image.
///
/// See the [crate docs](crate) for a worked example.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an encoder with `cap` bytes pre-reserved.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the finished image.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a single raw byte (typically an object tag).
    pub fn write_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Writes an unsigned varint (LEB128).
    pub fn write_u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes an unsigned varint from a `usize`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Writes an unsigned varint from a `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    /// Writes a signed varint (zig-zag + LEB128).
    pub fn write_i64(&mut self, v: i64) {
        let zz = ((v << 1) ^ (v >> 63)) as u64;
        self.write_u64(zz);
    }

    /// Writes an `f64` as its raw bit pattern (fixed 8 bytes).
    pub fn write_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a persistent identifier.
    pub fn write_pid(&mut self, p: Pid) {
        self.write_u64(p.raw());
    }

    /// Writes a length-prefixed byte string.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Writes a boolean as a single byte.
    pub fn write_bool(&mut self, b: bool) {
        self.buf.push(u8::from(b));
    }
}

/// Streaming decoder over a relocatable pool image.
///
/// Decoding is the *eager swizzling* pass: the entire pool is rebuilt in
/// expanded form in a single forward scan, converting every stored
/// [`Pid`] back into a typed reference.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Current byte offset.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining in the image.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns `true` if the entire image has been consumed.
    #[must_use]
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Reads a single raw byte.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if the image is exhausted.
    pub fn read_u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(DecodeError::UnexpectedEof { offset: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads an unsigned varint.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] on truncation or
    /// [`DecodeError::VarintOverflow`] if the varint exceeds 64 bits.
    pub fn read_u64(&mut self) -> Result<u64, DecodeError> {
        let start = self.pos;
        let mut result = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(DecodeError::VarintOverflow { offset: start });
            }
            result |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    /// Reads an unsigned varint as a `usize`.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Decoder::read_u64`].
    pub fn read_usize(&mut self) -> Result<usize, DecodeError> {
        Ok(self.read_u64()? as usize)
    }

    /// Reads an unsigned varint as a `u32`.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Decoder::read_u64`]; values above
    /// `u32::MAX` are reported as corruption.
    pub fn read_u32(&mut self) -> Result<u32, DecodeError> {
        let v = self.read_u64()?;
        u32::try_from(v).map_err(|_| DecodeError::Corrupt {
            what: "u32 field out of range",
        })
    }

    /// Reads a signed (zig-zag) varint.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Decoder::read_u64`].
    pub fn read_i64(&mut self) -> Result<i64, DecodeError> {
        let zz = self.read_u64()?;
        Ok(((zz >> 1) as i64) ^ -((zz & 1) as i64))
    }

    /// Reads a raw 8-byte `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] on truncation.
    pub fn read_f64(&mut self) -> Result<f64, DecodeError> {
        if self.remaining() < 8 {
            return Err(DecodeError::UnexpectedEof { offset: self.pos });
        }
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    /// Reads a persistent identifier.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Decoder::read_u64`].
    pub fn read_pid(&mut self) -> Result<Pid, DecodeError> {
        Ok(Pid::new(self.read_u64()?))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if the stated length
    /// overruns the image.
    pub fn read_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.read_usize()?;
        if self.remaining() < len {
            return Err(DecodeError::UnexpectedEof { offset: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Corrupt`] if the bytes are not valid UTF-8.
    pub fn read_str(&mut self) -> Result<&'a str, DecodeError> {
        let bytes = self.read_bytes()?;
        std::str::from_utf8(bytes).map_err(|_| DecodeError::Corrupt {
            what: "string field is not UTF-8",
        })
    }

    /// Reads a boolean byte.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Corrupt`] for any byte other than 0 or 1.
    pub fn read_bool(&mut self) -> Result<bool, DecodeError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Corrupt {
                what: "boolean field out of range",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_u64(v: u64) -> u64 {
        let mut e = Encoder::new();
        e.write_u64(v);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let got = d.read_u64().unwrap();
        assert!(d.is_at_end());
        got
    }

    fn round_trip_i64(v: i64) -> i64 {
        let mut e = Encoder::new();
        e.write_i64(v);
        let bytes = e.into_bytes();
        Decoder::new(&bytes).read_i64().unwrap()
    }

    #[test]
    fn u64_round_trips() {
        for v in [0, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            assert_eq!(round_trip_u64(v), v);
        }
    }

    #[test]
    fn i64_round_trips() {
        for v in [0, 1, -1, 63, -64, 64, i64::MIN, i64::MAX] {
            assert_eq!(round_trip_i64(v), v);
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        let mut e = Encoder::new();
        e.write_u64(5);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn f64_round_trips() {
        for v in [0.0, -1.5, f64::MAX, f64::MIN_POSITIVE] {
            let mut e = Encoder::new();
            e.write_f64(v);
            let bytes = e.into_bytes();
            assert_eq!(
                Decoder::new(&bytes).read_f64().unwrap().to_bits(),
                v.to_bits()
            );
        }
    }

    #[test]
    fn strings_round_trip() {
        let mut e = Encoder::new();
        e.write_str("hello");
        e.write_str("");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.read_str().unwrap(), "hello");
        assert_eq!(d.read_str().unwrap(), "");
        assert!(d.is_at_end());
    }

    #[test]
    fn truncated_image_reports_eof() {
        let mut e = Encoder::new();
        e.write_u64(1 << 40);
        let mut bytes = e.into_bytes();
        bytes.truncate(2);
        let mut d = Decoder::new(&bytes);
        assert!(matches!(
            d.read_u64(),
            Err(DecodeError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn overlong_varint_reports_overflow() {
        let bytes = [0xff; 11];
        let mut d = Decoder::new(&bytes);
        assert!(matches!(
            d.read_u64(),
            Err(DecodeError::VarintOverflow { .. })
        ));
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let bytes = [7u8];
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.read_bool(), Err(DecodeError::Corrupt { .. })));
    }

    #[test]
    fn pid_round_trips() {
        let mut e = Encoder::new();
        e.write_pid(Pid::from_index(987));
        let bytes = e.into_bytes();
        assert_eq!(Decoder::new(&bytes).read_pid().unwrap().index(), 987);
    }
}
