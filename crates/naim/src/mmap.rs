//! Read-only memory-mapped views of repository files.
//!
//! The repository's hot path is rehydrating offloaded pools, and the
//! paper's cost model only works out if that path avoids copying every
//! record through intermediate buffers. On Unix we map the backing file
//! `PROT_READ`/`MAP_PRIVATE` with a tiny vendored FFI shim (this
//! workspace carries no external crates, so there is no `libc` to lean
//! on); everywhere else — and whenever the kernel refuses the mapping —
//! callers fall back to an owned in-memory copy, which behaves
//! identically through [`MapView`]'s `Deref<Target = [u8]>`.
//!
//! A [`MapView`] is immutable for its whole life: the storage layer
//! drops and re-creates views when the underlying file grows or is
//! truncated, so a view never observes a file changing under it.

use std::ops::Deref;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub fn map_failed(ptr: *mut c_void) -> bool {
        ptr as isize == -1
    }
}

enum Inner {
    /// A live `mmap(2)` region; unmapped on drop.
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// Owned bytes standing in for a mapping.
    Copied(Vec<u8>),
}

/// An immutable byte view of a storage object: either a real read-only
/// memory mapping or an owned copy, indistinguishable to readers.
///
/// # Example
///
/// ```
/// use cmo_naim::MapView;
/// let view = MapView::copied(vec![1, 2, 3]);
/// assert_eq!(&view[..], &[1, 2, 3]);
/// assert!(!view.is_mapped());
/// ```
pub struct MapView {
    inner: Inner,
}

// SAFETY: the mapping is read-only (`PROT_READ`) and private, the file
// descriptor is not retained, and the region is never remapped or
// written through, so sharing the view across threads is sound.
unsafe impl Send for MapView {}
unsafe impl Sync for MapView {}

impl MapView {
    /// Wraps owned bytes as a view (the portable fallback path).
    #[must_use]
    pub fn copied(bytes: Vec<u8>) -> Self {
        MapView {
            inner: Inner::Copied(bytes),
        }
    }

    /// Memory-maps `file` read-only in its entirety.
    ///
    /// Empty files come back as an (empty) copied view — `mmap` with a
    /// zero length is an error on every platform. Returns the OS error
    /// when the kernel refuses the mapping so the caller can fall back
    /// to ordinary reads.
    #[cfg(unix)]
    pub fn map_file(file: &std::fs::File) -> std::io::Result<Self> {
        use std::os::fd::AsRawFd;

        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Ok(MapView::copied(Vec::new()));
        }
        // SAFETY: mapping an owned, open descriptor read-only; the call
        // either yields a page-aligned region of `len` bytes that stays
        // valid until `munmap`, or MAP_FAILED which we surface as Err.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if sys::map_failed(ptr) {
            return Err(std::io::Error::last_os_error());
        }
        Ok(MapView {
            inner: Inner::Mapped {
                ptr: ptr as *const u8,
                len,
            },
        })
    }

    /// True when this view is a real memory mapping rather than a copy.
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { .. } => true,
            Inner::Copied(_) => false,
        }
    }

    /// The viewed bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => {
                // SAFETY: the region [ptr, ptr+len) stays mapped and
                // read-only until Drop runs.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Inner::Copied(bytes) => bytes,
        }
    }
}

impl Deref for MapView {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for MapView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapView")
            .field("mapped", &self.is_mapped())
            .field("len", &self.as_slice().len())
            .finish()
    }
}

impl Drop for MapView {
    fn drop(&mut self) {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => {
                // SAFETY: exactly the region returned by mmap, unmapped
                // exactly once.
                unsafe {
                    sys::munmap(*ptr as *mut std::ffi::c_void, *len);
                }
            }
            Inner::Copied(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn copied_view_derefs_to_bytes() {
        let view = MapView::copied(vec![7; 40]);
        assert_eq!(view.len(), 40);
        assert!(view.iter().all(|&b| b == 7));
        assert!(!view.is_mapped());
    }

    #[cfg(unix)]
    #[test]
    fn mapped_view_sees_file_contents() {
        let dir = std::env::temp_dir().join(format!("cmo-mmap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let view = MapView::map_file(&file).unwrap();
        assert!(view.is_mapped());
        assert_eq!(&view[..], &payload[..]);
        drop(view);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn empty_file_maps_as_empty_copy() {
        let dir = std::env::temp_dir().join(format!("cmo-mmap-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty");
        std::fs::File::create(&path).unwrap();
        let view = MapView::map_file(&std::fs::File::open(&path).unwrap()).unwrap();
        assert!(!view.is_mapped());
        assert!(view.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
