//! The loader: state management for transitory object pools (§4.2–4.3).
//!
//! The loader mediates all access to transitory pools (routine IR and
//! module symbol tables). Clients simply request objects and request
//! that unneeded pools be unloaded; whether a pool is actually
//! compacted, offloaded, or kept expanded in the unload-pending cache is
//! decided internally from the configured memory [`Thresholds`] — the
//! scheme is transparent to clients, exactly as in §4.3.

use crate::accounting::{MemClass, MemoryAccountant, MemorySnapshot, SharedAccountant};
use crate::encode::{Decoder, Encoder};
use crate::error::{DecodeError, NaimError};
use crate::repository::{MemBackend, RepoBackend, RepoHandle, Repository};
use cmo_telemetry::{Telemetry, TraceEvent};
use std::sync::Arc;

/// An object that has both expanded and relocatable forms (§4.2.1).
///
/// `compact` must write a self-contained image from which `uncompact`
/// rebuilds an equivalent expanded object. Derived data (analysis
/// results) must *not* be encoded: it is recompute-only by the §4.1
/// discipline, and omitting it is where most of the compaction win
/// comes from.
pub trait Relocatable: Sized {
    /// Serializes this object into relocatable form, swizzling
    /// references to [`crate::Pid`]s.
    fn compact(&self, enc: &mut Encoder);

    /// Rebuilds the expanded form from a relocatable image (eager
    /// swizzling).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the image is corrupt.
    fn uncompact(dec: &mut Decoder<'_>) -> Result<Self, DecodeError>;

    /// Approximate heap bytes occupied by the expanded form, used for
    /// byte accounting.
    fn expanded_bytes(&self) -> usize;
}

/// Identifies a pool registered with a [`Loader`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PoolId(u32);

impl PoolId {
    /// Raw index of this pool.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a pool id from a raw index (used by the sharded facade to
    /// translate between global and per-shard id spaces).
    pub(crate) fn from_raw(raw: u32) -> PoolId {
        PoolId(raw)
    }
}

/// What a pool contains, which determines the threshold that governs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PoolKind {
    /// Routine intermediate representation.
    Ir,
    /// A module symbol table.
    SymTab,
}

/// Residency state of a pool, as visible to diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolState {
    /// Expanded in memory and actively usable.
    Expanded,
    /// Expanded but unload-pending: sitting in the loader's cache of
    /// most-recently-used pools awaiting possible compaction.
    UnloadPending,
    /// Compacted to relocatable form, resident in memory.
    Compact,
    /// Offloaded to the disk repository.
    Offloaded,
}

/// Progressive NAIM capability levels (the four configurations of
/// Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NaimLevel {
    /// Everything stays expanded (HP-UX 9.0 behaviour, 1.7 KB/line).
    Off,
    /// IR pools may be compacted (HP-UX 10.01 behaviour, 0.9 KB/line).
    CompactIr,
    /// Symbol-table pools may be compacted too.
    CompactAll,
    /// Compacted pools may additionally be offloaded to disk.
    Offload,
}

/// Fractions of the memory budget at which each NAIM measure engages
/// (§4.3: "a series of memory thresholds ... turn on more and more of
/// the NAIM functionality").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Engage IR compaction above this fraction of the budget.
    pub ir_compaction: f64,
    /// Engage symbol-table compaction above this fraction.
    pub st_compaction: f64,
    /// Engage disk offloading above this fraction.
    pub offload: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            ir_compaction: 0.5,
            st_compaction: 0.7,
            offload: 0.85,
        }
    }
}

/// Configuration for a [`Loader`].
#[derive(Debug, Clone, PartialEq)]
pub struct NaimConfig {
    /// Soft memory budget in bytes — the stand-in for the physical
    /// memory of the build machine. Thresholds are fractions of this.
    pub budget_bytes: usize,
    /// Hard heap limit (the paper's ~1 GB HP-UX virtual-heap cap). When
    /// accounted memory cannot be brought under this limit the compile
    /// fails with [`NaimError::OutOfMemory`]. `None` means unlimited.
    pub hard_limit_bytes: Option<usize>,
    /// Most aggressive measure the loader may take.
    pub max_level: NaimLevel,
    /// Threshold fractions.
    pub thresholds: Thresholds,
    /// Maximum number of expanded pools retained in the unload-pending
    /// cache once NAIM is engaged.
    pub cache_pools: usize,
    /// Simulated cost (work units) per byte compacted or uncompacted.
    pub compact_cost_per_byte: u64,
    /// Simulated cost (work units) per byte moved to or from disk.
    pub disk_cost_per_byte: u64,
    /// Simulated cost (work units) per byte fetched back from the
    /// repository. Cheaper than [`NaimConfig::disk_cost_per_byte`]
    /// because the read path is zero-copy: records are borrowed from
    /// the backend's view (or read once into a reusable arena) and
    /// swizzled in place, never materializing an owned compact copy.
    /// The cost is charged identically whether a real memory map backs
    /// the view, so reports do not depend on the transport.
    pub fetch_cost_per_byte: u64,
    /// Number of shards a [`crate::ShardedLoader`] splits its pools
    /// across. Ignored by a plain [`Loader`]. Must be at least 1; the
    /// memory budget and thresholds stay program-wide regardless
    /// (shards report into one shared accountant), while `cache_pools`
    /// is a per-shard limit.
    pub shards: usize,
}

impl NaimConfig {
    /// Full NAIM capability with the given budget and default thresholds.
    #[must_use]
    pub fn with_budget(budget_bytes: usize) -> Self {
        NaimConfig {
            budget_bytes,
            hard_limit_bytes: None,
            max_level: NaimLevel::Offload,
            thresholds: Thresholds::default(),
            cache_pools: 16,
            compact_cost_per_byte: 1,
            disk_cost_per_byte: 4,
            fetch_cost_per_byte: 2,
            shards: 1,
        }
    }

    /// NAIM disabled: everything stays expanded (Figure 5 "NAIM off").
    #[must_use]
    pub fn disabled() -> Self {
        NaimConfig {
            max_level: NaimLevel::Off,
            ..NaimConfig::with_budget(usize::MAX / 4)
        }
    }

    /// Caps the capability level, returning the modified config.
    #[must_use]
    pub fn max_level(mut self, level: NaimLevel) -> Self {
        self.max_level = level;
        self
    }

    /// Sets the hard heap limit, returning the modified config.
    #[must_use]
    pub fn hard_limit(mut self, bytes: usize) -> Self {
        self.hard_limit_bytes = Some(bytes);
        self
    }

    /// Sets the shard count for sharded loaders, returning the
    /// modified config. Values below 1 are clamped to 1.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }
}

impl Default for NaimConfig {
    fn default() -> Self {
        // 256 MiB default budget: a mid-1990s large build machine.
        NaimConfig::with_budget(256 << 20)
    }
}

/// Counters describing loader activity, used by the Figure 5 bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoaderStats {
    /// Pools ever registered.
    pub pools: u64,
    /// `get`/`get_mut` calls satisfied by an already-expanded pool.
    pub hits: u64,
    /// Unload-pending pools rescued from the cache without re-expansion.
    pub cache_rescues: u64,
    /// Expansions from relocatable form (uncompactions).
    pub uncompactions: u64,
    /// Compactions to relocatable form.
    pub compactions: u64,
    /// Pool images written to the repository.
    pub offload_writes: u64,
    /// Pool images read back from the repository.
    pub offload_reads: u64,
    /// Total bytes processed by compaction + uncompaction.
    pub bytes_swizzled: u64,
    /// Total bytes moved to or from the repository.
    pub bytes_offloaded: u64,
    /// Simulated compile-time cost of all NAIM activity, in work units.
    pub work_units: u64,
    /// The share of [`LoaderStats::work_units`] spent fetching records
    /// back from the repository — the quantity the zero-copy read path
    /// reduces, tracked separately so the perf harness can watch it.
    pub fetch_work_units: u64,
}

impl LoaderStats {
    /// Folds another loader's counters into this one, field by field.
    ///
    /// Used wherever several loaders present as one: the sharded
    /// facade sums its shards, and partitioned HLO sums the private
    /// per-cluster loaders into the session loader's totals.
    pub fn absorb(&mut self, other: &LoaderStats) {
        self.pools += other.pools;
        self.hits += other.hits;
        self.cache_rescues += other.cache_rescues;
        self.uncompactions += other.uncompactions;
        self.compactions += other.compactions;
        self.offload_writes += other.offload_writes;
        self.offload_reads += other.offload_reads;
        self.bytes_swizzled += other.bytes_swizzled;
        self.bytes_offloaded += other.bytes_offloaded;
        self.work_units += other.work_units;
        self.fetch_work_units += other.fetch_work_units;
    }
}

#[derive(Debug)]
enum State<T> {
    Expanded(T),
    Compact(Vec<u8>),
    Offloaded(RepoHandle),
}

#[derive(Debug)]
struct Slot<T> {
    kind: PoolKind,
    state: State<T>,
    last_use: u64,
    unload_pending: bool,
    expanded_size: usize,
    compact_size: usize,
}

/// How a loader reports byte occupancy: a private accountant for a
/// standalone loader, or a reference to the program-wide atomic
/// accountant shared by every shard of a [`crate::ShardedLoader`].
#[derive(Debug)]
enum Accountant {
    Local(MemoryAccountant),
    Shared(Arc<SharedAccountant>),
}

impl Accountant {
    fn add(&mut self, class: MemClass, bytes: usize) {
        match self {
            Accountant::Local(a) => a.add(class, bytes),
            Accountant::Shared(a) => a.add(class, bytes),
        }
    }

    fn remove(&mut self, class: MemClass, bytes: usize) {
        match self {
            Accountant::Local(a) => a.remove(class, bytes),
            Accountant::Shared(a) => a.remove(class, bytes),
        }
    }

    fn adjust(&mut self, class: MemClass, delta: isize) {
        match self {
            Accountant::Local(a) => a.adjust(class, delta),
            Accountant::Shared(a) => a.adjust(class, delta),
        }
    }

    fn total(&self) -> usize {
        match self {
            Accountant::Local(a) => a.total(),
            Accountant::Shared(a) => a.total(),
        }
    }

    fn snapshot(&self) -> MemorySnapshot {
        match self {
            Accountant::Local(a) => a.snapshot(),
            Accountant::Shared(a) => a.snapshot(),
        }
    }
}

/// Manages the residency of transitory object pools.
///
/// See the [crate docs](crate) for a usage example. A `Loader` is a
/// single-threaded building block: one loader still serves one thread
/// at a time, but the [`crate::ShardedLoader`] facade composes several
/// of them (one per shard, each behind its own mutex, all reporting
/// into one shared atomic accountant) into the thread-safe loader the
/// parallel driver pipeline uses — the parallelization of NAIM
/// load/unload that the paper's §8 names as future work.
#[derive(Debug)]
pub struct Loader<T, B = MemBackend> {
    config: NaimConfig,
    accountant: Accountant,
    repo: Repository<B>,
    slots: Vec<Slot<T>>,
    clock: u64,
    stats: LoaderStats,
    telemetry: Telemetry,
    /// Global id of this loader's pool 0 (shard index within a sharded
    /// loader; 0 standalone).
    id_base: u32,
    /// Distance in global-id space between consecutive local pools
    /// (shard count within a sharded loader; 1 standalone).
    id_stride: u32,
    /// Set once the first zero-copy fetch has been announced in the
    /// trace, so the mmap event fires at most once per loader.
    mmap_announced: bool,
}

/// Trace-event kind string for a pool kind.
fn kind_str(kind: PoolKind) -> &'static str {
    match kind {
        PoolKind::Ir => "ir",
        PoolKind::SymTab => "symtab",
    }
}

impl<T: Relocatable> Loader<T, MemBackend> {
    /// Creates a loader with an in-memory repository backend.
    #[must_use]
    pub fn new(config: NaimConfig) -> Self {
        Loader::with_repository(config, Repository::in_memory())
    }

    /// Creates an in-memory loader whose local pool `i` carries global
    /// id `id_base + i * id_stride` in telemetry.
    ///
    /// Partitioned HLO gives every callgraph cluster a private loader;
    /// the id scheme keeps the pool ids those loaders emit in trace
    /// events disjoint from the session loader's (and from each
    /// other's), so a merged trace never shows two distinct pools under
    /// one id.
    #[must_use]
    pub fn with_ids(config: NaimConfig, id_base: u32, id_stride: u32) -> Self {
        let mut loader = Loader::new(config);
        loader.id_base = id_base;
        loader.id_stride = id_stride.max(1);
        loader
    }
}

impl<T: Relocatable, B: RepoBackend> Loader<T, B> {
    /// Creates a loader over an explicit repository (e.g. file-backed).
    pub fn with_repository(config: NaimConfig, repo: Repository<B>) -> Self {
        Loader {
            config,
            accountant: Accountant::Local(MemoryAccountant::new()),
            repo,
            slots: Vec::new(),
            clock: 0,
            stats: LoaderStats::default(),
            telemetry: Telemetry::disabled(),
            id_base: 0,
            id_stride: 1,
            mmap_announced: false,
        }
    }

    /// Creates shard `id_base` of `id_stride` total shards, reporting
    /// into the shared program-wide accountant. Local pool `i` carries
    /// global id `id_base + i * id_stride` in telemetry.
    pub(crate) fn shard(
        config: NaimConfig,
        repo: Repository<B>,
        accountant: Arc<SharedAccountant>,
        id_base: u32,
        id_stride: u32,
    ) -> Self {
        Loader {
            config,
            accountant: Accountant::Shared(accountant),
            repo,
            slots: Vec::new(),
            clock: 0,
            stats: LoaderStats::default(),
            telemetry: Telemetry::disabled(),
            id_base,
            id_stride: id_stride.max(1),
            mmap_announced: false,
        }
    }

    /// Global (externally visible) pool id for local slot `idx`.
    fn external_id(&self, idx: usize) -> u32 {
        self.id_base + idx as u32 * self.id_stride
    }

    /// Attaches a telemetry sink; pool-state transitions are emitted as
    /// [`TraceEvent::Pool`] events and NAIM traffic costs advance the
    /// sink's work-unit clock.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Rank of `idx` in the unload-pending LRU for its kind
    /// (0 = least recently used; 0 also when not in the cache).
    fn lru_rank(&self, idx: usize) -> u32 {
        let kind = self.slots[idx].kind;
        self.pending_lru(kind)
            .iter()
            .position(|&i| i == idx)
            .unwrap_or(0) as u32
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &NaimConfig {
        &self.config
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> LoaderStats {
        self.stats
    }

    /// Memory accounting snapshot (transitory classes are maintained by
    /// the loader; global and derived classes may be recorded by the
    /// optimizer through [`Loader::account`]).
    #[must_use]
    pub fn memory(&self) -> MemorySnapshot {
        self.accountant.snapshot()
    }

    /// Records memory occupied by structures outside the loader's
    /// control (global or derived data), so thresholds consider the
    /// whole optimizer heap.
    pub fn account(&mut self, class: MemClass, delta: isize) {
        self.accountant.adjust(class, delta);
    }

    /// Number of pools currently in each state:
    /// `(expanded, pending, compact, offloaded)`.
    #[must_use]
    pub fn census(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for s in &self.slots {
            match (&s.state, s.unload_pending) {
                (State::Expanded(_), false) => c.0 += 1,
                (State::Expanded(_), true) => c.1 += 1,
                (State::Compact(_), _) => c.2 += 1,
                (State::Offloaded(_), _) => c.3 += 1,
            }
        }
        c
    }

    /// Registers a new pool in expanded form.
    pub fn insert(&mut self, value: T, kind: PoolKind) -> PoolId {
        let size = value.expanded_bytes();
        self.accountant.add(MemClass::TransitoryExpanded, size);
        let id = PoolId(u32::try_from(self.slots.len()).expect("pool count fits in u32"));
        self.clock += 1;
        self.slots.push(Slot {
            kind,
            state: State::Expanded(value),
            last_use: self.clock,
            unload_pending: false,
            expanded_size: size,
            compact_size: 0,
        });
        self.stats.pools += 1;
        id
    }

    /// Registers a pool already resident in the repository (e.g. stored
    /// by an earlier run and re-located through the persistent index).
    ///
    /// The pool starts in [`PoolState::Offloaded`] and occupies no
    /// accounted memory; the first [`Loader::get`] rehydrates it through
    /// the ordinary fetch + eager-swizzling path.
    pub fn insert_offloaded(&mut self, handle: RepoHandle, kind: PoolKind) -> PoolId {
        let id = PoolId(u32::try_from(self.slots.len()).expect("pool count fits in u32"));
        self.clock += 1;
        self.slots.push(Slot {
            kind,
            state: State::Offloaded(handle),
            last_use: self.clock,
            unload_pending: false,
            expanded_size: 0,
            compact_size: handle.len(),
        });
        self.stats.pools += 1;
        id
    }

    /// Shared access to the backing repository (e.g. to inspect stats or
    /// look up records by content hash).
    #[must_use]
    pub fn repository(&self) -> &Repository<B> {
        &self.repo
    }

    /// Exclusive access to the backing repository (e.g. to store records
    /// directly or flush the persistent index).
    pub fn repository_mut(&mut self) -> &mut Repository<B> {
        &mut self.repo
    }

    /// Current residency state of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this loader.
    #[must_use]
    pub fn state(&self, id: PoolId) -> PoolState {
        let slot = &self.slots[id.index()];
        match (&slot.state, slot.unload_pending) {
            (State::Expanded(_), false) => PoolState::Expanded,
            (State::Expanded(_), true) => PoolState::UnloadPending,
            (State::Compact(_), _) => PoolState::Compact,
            (State::Offloaded(_), _) => PoolState::Offloaded,
        }
    }

    /// Kind of the pool `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this loader.
    #[must_use]
    pub fn kind(&self, id: PoolId) -> PoolKind {
        self.slots[id.index()].kind
    }

    fn expand(&mut self, id: PoolId) -> Result<(), NaimError> {
        let idx = id.index();
        let kind = kind_str(self.slots[idx].kind);
        let pool = self.external_id(idx);
        // Offloaded pools rehydrate in one pass: the record is borrowed
        // from the repository (zero-copy when the backend serves views,
        // the reusable scratch arena otherwise) and eagerly swizzled
        // straight to expanded form, never materializing an owned
        // compact copy in between.
        if let State::Offloaded(handle) = self.slots[idx].state {
            let zc_before = self.repo.stats().zero_copy_reads;
            let image = self.repo.fetch_ref(handle)?;
            let image_len = image.len();
            let mut dec = Decoder::new(image);
            let value = T::uncompact(&mut dec)?;
            let size = value.expanded_bytes();
            let fetch_cost = image_len as u64 * self.config.fetch_cost_per_byte;
            let swizzle_cost = image_len as u64 * self.config.compact_cost_per_byte;
            if !self.mmap_announced && self.repo.stats().zero_copy_reads > zc_before {
                self.mmap_announced = true;
                self.telemetry.emit(TraceEvent::Mmap {
                    action: "zero-copy",
                    bytes: image_len as u64,
                });
            }
            self.stats.offload_reads += 1;
            self.stats.bytes_offloaded += image_len as u64;
            self.stats.fetch_work_units += fetch_cost;
            self.stats.uncompactions += 1;
            self.stats.bytes_swizzled += image_len as u64;
            self.stats.work_units += fetch_cost + swizzle_cost;
            self.telemetry.work(fetch_cost);
            self.telemetry.emit(TraceEvent::Pool {
                action: "fetch",
                pool,
                kind,
                bytes: image_len as u64,
                lru_pos: 0,
            });
            self.telemetry.work(swizzle_cost);
            self.telemetry.emit(TraceEvent::Pool {
                action: "expand",
                pool,
                kind,
                bytes: image_len as u64,
                lru_pos: 0,
            });
            self.accountant.add(MemClass::TransitoryExpanded, size);
            let slot = &mut self.slots[idx];
            slot.expanded_size = size;
            slot.state = State::Expanded(value);
            return Ok(());
        }
        if let State::Compact(image) = &self.slots[idx].state {
            let mut dec = Decoder::new(image);
            let value = T::uncompact(&mut dec)?;
            let image_len = image.len();
            let size = value.expanded_bytes();
            let cost = image_len as u64 * self.config.compact_cost_per_byte;
            self.stats.uncompactions += 1;
            self.stats.bytes_swizzled += image_len as u64;
            self.stats.work_units += cost;
            self.accountant
                .remove(MemClass::TransitoryCompact, image_len);
            self.accountant.add(MemClass::TransitoryExpanded, size);
            let slot = &mut self.slots[idx];
            slot.expanded_size = size;
            slot.state = State::Expanded(value);
            self.telemetry.work(cost);
            self.telemetry.emit(TraceEvent::Pool {
                action: "expand",
                pool: self.external_id(idx),
                kind,
                bytes: image_len as u64,
                lru_pos: 0,
            });
        }
        Ok(())
    }

    /// Returns a shared reference to the expanded pool, loading it from
    /// relocatable or offloaded form if necessary.
    ///
    /// # Errors
    ///
    /// Returns a decode or repository error if re-expansion fails.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this loader.
    pub fn get(&mut self, id: PoolId) -> Result<&T, NaimError> {
        self.touch(id)?;
        match &self.slots[id.index()].state {
            State::Expanded(v) => Ok(v),
            _ => unreachable!("touch left pool expanded"),
        }
    }

    /// Returns an exclusive reference to the expanded pool, loading it
    /// if necessary.
    ///
    /// # Errors
    ///
    /// Returns a decode or repository error if re-expansion fails.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this loader.
    pub fn get_mut(&mut self, id: PoolId) -> Result<&mut T, NaimError> {
        self.touch(id)?;
        match &mut self.slots[id.index()].state {
            State::Expanded(v) => Ok(v),
            _ => unreachable!("touch left pool expanded"),
        }
    }

    /// Ensures the pool is expanded and marks it recently used, without
    /// borrowing its contents.
    ///
    /// # Errors
    ///
    /// Returns a decode or repository error if re-expansion fails.
    pub fn touch(&mut self, id: PoolId) -> Result<(), NaimError> {
        let idx = id.index();
        match &self.slots[idx].state {
            State::Expanded(_) => {
                self.stats.hits += 1;
                if self.slots[idx].unload_pending {
                    // The paper's cache win: only a state change, no work.
                    let lru_pos = self.lru_rank(idx);
                    self.stats.cache_rescues += 1;
                    self.telemetry.emit(TraceEvent::Pool {
                        action: "rescue",
                        pool: self.external_id(idx),
                        kind: kind_str(self.slots[idx].kind),
                        bytes: self.slots[idx].expanded_size as u64,
                        lru_pos,
                    });
                }
            }
            _ => self.expand(id)?,
        }
        self.clock += 1;
        let slot = &mut self.slots[idx];
        slot.last_use = self.clock;
        slot.unload_pending = false;
        Ok(())
    }

    /// Re-measures the expanded size of `id` after client mutation and
    /// fixes up the accounting.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this loader.
    pub fn reaccount(&mut self, id: PoolId) {
        let idx = id.index();
        if let State::Expanded(v) = &self.slots[idx].state {
            let new_size = v.expanded_bytes();
            let old_size = self.slots[idx].expanded_size;
            self.accountant.adjust(
                MemClass::TransitoryExpanded,
                new_size as isize - old_size as isize,
            );
            self.slots[idx].expanded_size = new_size;
        }
    }

    /// Declares that the client no longer needs `id` expanded. The pool
    /// enters the unload-pending cache; whether it is actually compacted
    /// or offloaded is decided by [`Loader::enforce`].
    ///
    /// # Errors
    ///
    /// Propagates enforcement failures (hard out-of-memory).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this loader.
    pub fn unload(&mut self, id: PoolId) -> Result<(), NaimError> {
        self.mark_unload(id);
        self.enforce()
    }

    /// Marks `id` unload-pending without enforcing the memory policy.
    /// The sharded facade uses this to batch marking (per shard) ahead
    /// of one program-wide enforcement pass.
    pub(crate) fn mark_unload(&mut self, id: PoolId) {
        self.reaccount(id);
        let slot = &mut self.slots[id.index()];
        if matches!(slot.state, State::Expanded(_)) {
            slot.unload_pending = true;
        }
    }

    /// Marks every expanded pool unload-pending without enforcing.
    pub(crate) fn mark_all_unload(&mut self) {
        for idx in 0..self.slots.len() {
            self.mark_unload(PoolId(idx as u32));
        }
    }

    /// Marks every expanded pool unload-pending and enforces the memory
    /// policy ("clients simply request that all unneeded pools are
    /// unloaded").
    ///
    /// # Errors
    ///
    /// Propagates enforcement failures (hard out-of-memory).
    pub fn unload_all(&mut self) -> Result<(), NaimError> {
        self.mark_all_unload();
        self.enforce()
    }

    fn compact_slot(&mut self, idx: usize) {
        let lru_pos = self.lru_rank(idx);
        let pool = self.external_id(idx);
        let slot = &mut self.slots[idx];
        if let State::Expanded(v) = &slot.state {
            let mut enc = Encoder::with_capacity(slot.compact_size.max(64));
            v.compact(&mut enc);
            let image = enc.into_bytes();
            let cost = image.len() as u64 * self.config.compact_cost_per_byte;
            self.stats.compactions += 1;
            self.stats.bytes_swizzled += image.len() as u64;
            self.stats.work_units += cost;
            self.telemetry.work(cost);
            self.telemetry.emit(TraceEvent::Pool {
                action: "compact",
                pool,
                kind: kind_str(slot.kind),
                bytes: image.len() as u64,
                lru_pos,
            });
            self.accountant
                .remove(MemClass::TransitoryExpanded, slot.expanded_size);
            self.accountant
                .add(MemClass::TransitoryCompact, image.len());
            slot.compact_size = image.len();
            slot.unload_pending = false;
            slot.state = State::Compact(image);
        }
    }

    fn offload_slot(&mut self, idx: usize) -> Result<(), NaimError> {
        // Take the image out first so we never hold a borrow across the
        // repository call.
        let image = match &mut self.slots[idx].state {
            State::Compact(image) => std::mem::take(image),
            _ => return Ok(()),
        };
        let handle = self.repo.store(&image)?;
        let cost = image.len() as u64 * self.config.disk_cost_per_byte;
        self.stats.offload_writes += 1;
        self.stats.bytes_offloaded += image.len() as u64;
        self.stats.work_units += cost;
        self.telemetry.work(cost);
        self.telemetry.emit(TraceEvent::Pool {
            action: "offload",
            pool: self.external_id(idx),
            kind: kind_str(self.slots[idx].kind),
            bytes: image.len() as u64,
            lru_pos: 0,
        });
        self.accountant
            .remove(MemClass::TransitoryCompact, image.len());
        self.slots[idx].state = State::Offloaded(handle);
        Ok(())
    }

    /// Unload-pending pool indices, least recently used first, filtered
    /// by `kind`.
    fn pending_lru(&self, kind: PoolKind) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.kind == kind && s.unload_pending && matches!(s.state, State::Expanded(_))
            })
            .map(|(i, _)| i)
            .collect();
        v.sort_by_key(|&i| self.slots[i].last_use);
        v
    }

    /// Applies the thresholded memory policy: compaction and offloading
    /// engage only as the accounted heap crosses the configured
    /// fractions of the budget, so compilations that fit in memory pay
    /// nothing (§4.3).
    ///
    /// # Errors
    ///
    /// Returns [`NaimError::OutOfMemory`] if the heap cannot be brought
    /// under the hard limit.
    pub fn enforce(&mut self) -> Result<(), NaimError> {
        self.enforce_unlimited()?;
        self.check_hard_limit()
    }

    /// The threshold-driven compact/offload sweep of [`Loader::enforce`]
    /// *without* the final hard-limit check. The sharded facade runs
    /// this on every shard before checking the program-wide hard limit
    /// once — a single shard over the limit is not out of memory while
    /// other shards still hold reclaimable pending pools.
    pub(crate) fn enforce_unlimited(&mut self) -> Result<(), NaimError> {
        let budget = self.config.budget_bytes as f64;
        let t_ir = (budget * self.config.thresholds.ir_compaction) as usize;
        let t_st = (budget * self.config.thresholds.st_compaction) as usize;
        let t_off = (budget * self.config.thresholds.offload) as usize;

        // Each phase computes its victim order once and walks it in one
        // batch. Compacting (or offloading) a pool never reorders the
        // surviving candidates — a compacted slot merely leaves the
        // pending set, and offloading never changes another slot's
        // size — so the batch picks exactly the victims the old
        // one-victim-per-scan loops did, without rescanning every slot
        // per eviction.
        if self.config.max_level >= NaimLevel::CompactIr {
            // Compact pending IR pools while over the IR threshold.
            for idx in self.pending_lru(PoolKind::Ir) {
                if self.accountant.total() <= t_ir {
                    break;
                }
                self.compact_slot(idx);
            }
        }
        if self.config.max_level >= NaimLevel::CompactAll {
            for idx in self.pending_lru(PoolKind::SymTab) {
                if self.accountant.total() <= t_st {
                    break;
                }
                self.compact_slot(idx);
            }
        }
        if self.config.max_level >= NaimLevel::Offload {
            // Offload the largest compacted images first: maximum
            // reclaimed memory per disk operation (ties to the earliest
            // slot, matching the old scan's preference).
            let mut candidates: Vec<usize> = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s.state, State::Compact(_)))
                .map(|(i, _)| i)
                .collect();
            candidates.sort_by_key(|&i| (std::cmp::Reverse(self.slots[i].compact_size), i));
            for idx in candidates {
                if self.accountant.total() <= t_off {
                    break;
                }
                self.offload_slot(idx)?;
            }
        }
        // The sweep is over: whatever the fetch arena accumulated since
        // the last sweep is returned to the allocator so rehydration
        // scratch never outlives the eviction wave that used it. The
        // byte count is transport-independent, keeping traces identical
        // with mmap on and off at a given -j.
        let served = self.repo.recycle_arena();
        if served > 0 {
            self.telemetry.emit(TraceEvent::Arena {
                action: "recycle",
                bytes: served,
            });
        }
        Ok(())
    }

    /// Fails with [`NaimError::OutOfMemory`] if accounted memory (which
    /// is program-wide when the accountant is shared) exceeds the hard
    /// limit.
    pub(crate) fn check_hard_limit(&self) -> Result<(), NaimError> {
        if let Some(limit) = self.config.hard_limit_bytes {
            let total = self.accountant.total();
            if total > limit {
                return Err(NaimError::OutOfMemory {
                    wanted: total,
                    budget: limit,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test payload whose expanded form is deliberately fatter than
    /// its relocatable form (stand-in for derived-field dropping).
    #[derive(Clone, Debug, PartialEq)]
    struct Blob {
        payload: Vec<u64>,
    }

    impl Blob {
        fn of(n: u64, len: usize) -> Self {
            Blob {
                payload: (0..len as u64).map(|i| i.wrapping_mul(n)).collect(),
            }
        }
    }

    impl Relocatable for Blob {
        fn compact(&self, enc: &mut Encoder) {
            enc.write_usize(self.payload.len());
            for &v in &self.payload {
                enc.write_u64(v);
            }
        }
        fn uncompact(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
            let len = dec.read_usize()?;
            let mut payload = Vec::with_capacity(len);
            for _ in 0..len {
                payload.push(dec.read_u64()?);
            }
            Ok(Blob { payload })
        }
        fn expanded_bytes(&self) -> usize {
            std::mem::size_of::<Self>() + self.payload.capacity() * 8
        }
    }

    fn tiny_config() -> NaimConfig {
        NaimConfig {
            cache_pools: 2,
            ..NaimConfig::with_budget(4096)
        }
    }

    #[test]
    fn round_trip_through_all_states() {
        let mut loader: Loader<Blob> = Loader::new(tiny_config());
        let mut ids = Vec::new();
        for i in 0..32 {
            ids.push(loader.insert(Blob::of(i, 100), PoolKind::Ir));
        }
        loader.unload_all().unwrap();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(loader.get(id).unwrap(), &Blob::of(i as u64, 100));
        }
    }

    #[test]
    fn small_compiles_never_compact() {
        // Under the thresholds nothing happens: the paper's "little or
        // no overhead" property.
        let mut loader: Loader<Blob> = Loader::new(NaimConfig::with_budget(1 << 30));
        let ids: Vec<_> = (0..8)
            .map(|i| loader.insert(Blob::of(i, 50), PoolKind::Ir))
            .collect();
        loader.unload_all().unwrap();
        assert_eq!(loader.stats().compactions, 0);
        for id in ids {
            assert!(matches!(
                loader.state(id),
                PoolState::UnloadPending | PoolState::Expanded
            ));
        }
    }

    #[test]
    fn naim_off_never_compacts_even_over_budget() {
        let mut loader: Loader<Blob> = Loader::new(NaimConfig::disabled());
        for i in 0..64 {
            loader.insert(Blob::of(i, 200), PoolKind::Ir);
        }
        loader.unload_all().unwrap();
        assert_eq!(loader.stats().compactions, 0);
    }

    #[test]
    fn hard_limit_reports_out_of_memory() {
        let config = NaimConfig::disabled().hard_limit(1024);
        let mut loader: Loader<Blob> = Loader::new(config);
        loader.insert(Blob::of(1, 1000), PoolKind::Ir);
        assert!(matches!(
            loader.unload_all(),
            Err(NaimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn compaction_keeps_memory_under_threshold() {
        let mut loader: Loader<Blob> = Loader::new(tiny_config());
        for i in 0..64 {
            let id = loader.insert(Blob::of(i, 100), PoolKind::Ir);
            loader.unload(id).unwrap();
        }
        assert!(loader.stats().compactions > 0);
        // Compact form of 100 small u64s is far smaller than expanded.
        let snap = loader.memory();
        assert!(snap.class(MemClass::TransitoryCompact) < snap.peak_total);
    }

    #[test]
    fn offload_engages_above_offload_threshold() {
        let config = NaimConfig {
            budget_bytes: 2048,
            cache_pools: 0,
            ..NaimConfig::with_budget(2048)
        };
        let mut loader: Loader<Blob> = Loader::new(config);
        let mut ids = Vec::new();
        for i in 0..64 {
            let id = loader.insert(Blob::of(i, 300), PoolKind::Ir);
            ids.push(id);
            loader.unload(id).unwrap();
        }
        assert!(loader.stats().offload_writes > 0);
        // And reading back still works.
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(loader.get(id).unwrap(), &Blob::of(i as u64, 300));
            loader.unload(id).unwrap();
        }
        assert!(loader.stats().offload_reads > 0);
    }

    #[test]
    fn cache_rescue_is_free() {
        let mut loader: Loader<Blob> = Loader::new(NaimConfig::with_budget(1 << 30));
        let id = loader.insert(Blob::of(3, 10), PoolKind::Ir);
        loader.unload(id).unwrap();
        let before = loader.stats();
        loader.touch(id).unwrap();
        let after = loader.stats();
        assert_eq!(after.cache_rescues, before.cache_rescues + 1);
        assert_eq!(after.uncompactions, before.uncompactions);
    }

    #[test]
    fn symtab_pools_obey_their_own_threshold() {
        let config = NaimConfig {
            max_level: NaimLevel::CompactIr,
            cache_pools: 0,
            ..NaimConfig::with_budget(2048)
        };
        let mut loader: Loader<Blob> = Loader::new(config);
        for i in 0..32 {
            let id = loader.insert(Blob::of(i, 200), PoolKind::SymTab);
            loader.unload(id).unwrap();
        }
        // Level CompactIr never touches symbol tables.
        assert_eq!(loader.stats().compactions, 0);
    }

    #[test]
    fn mutation_then_reload_sees_new_value() {
        let mut loader: Loader<Blob> = Loader::new(tiny_config());
        let id = loader.insert(Blob::of(1, 100), PoolKind::Ir);
        loader.get_mut(id).unwrap().payload.push(12345);
        loader.unload(id).unwrap();
        // Force it out by pressure.
        for i in 0..64 {
            let other = loader.insert(Blob::of(i, 100), PoolKind::Ir);
            loader.unload(other).unwrap();
        }
        let v = loader.get(id).unwrap();
        assert_eq!(*v.payload.last().unwrap(), 12345);
    }

    #[test]
    fn census_reflects_states() {
        let mut loader: Loader<Blob> = Loader::new(NaimConfig::with_budget(1 << 30));
        let a = loader.insert(Blob::of(1, 10), PoolKind::Ir);
        let _b = loader.insert(Blob::of(2, 10), PoolKind::Ir);
        loader.unload(a).unwrap();
        let (expanded, pending, compact, offloaded) = loader.census();
        assert_eq!((expanded, pending, compact, offloaded), (1, 1, 0, 0));
    }

    #[test]
    fn insert_offloaded_rehydrates_through_swizzling_path() {
        // Store a pool image directly, as a previous run's cache would,
        // then adopt it into a fresh loader and read it back.
        let mut repo = Repository::in_memory();
        let blob = Blob::of(9, 40);
        let mut enc = Encoder::new();
        blob.compact(&mut enc);
        let handle = repo.store(&enc.into_bytes()).unwrap();
        let mut loader: Loader<Blob> =
            Loader::with_repository(NaimConfig::with_budget(1 << 30), repo);
        let id = loader.insert_offloaded(handle, PoolKind::Ir);
        assert_eq!(loader.state(id), PoolState::Offloaded);
        assert_eq!(loader.get(id).unwrap(), &blob);
        assert_eq!(loader.state(id), PoolState::Expanded);
        let stats = loader.stats();
        assert_eq!(stats.offload_reads, 1);
        assert_eq!(stats.uncompactions, 1);
    }

    #[test]
    fn rescue_path_surfaces_typed_repository_error() {
        // A handle into an empty repository: the rescue path must
        // surface the repository's typed error, not panic or hand back
        // a garbage pool.
        let mut donor = Repository::in_memory();
        let mut enc = Encoder::new();
        Blob::of(1, 8).compact(&mut enc);
        let foreign = donor.store(&enc.into_bytes()).unwrap();
        let mut loader: Loader<Blob> = Loader::new(NaimConfig::with_budget(1 << 30));
        let id = loader.insert_offloaded(foreign, PoolKind::Ir);
        match loader.get(id) {
            Err(NaimError::UnknownPool { pool }) => assert_eq!(pool, foreign.id()),
            other => panic!("expected UnknownPool from the rescue path, got {other:?}"),
        }
    }

    #[test]
    fn work_units_accumulate_with_activity() {
        let mut loader: Loader<Blob> = Loader::new(tiny_config());
        for i in 0..64 {
            let id = loader.insert(Blob::of(i, 100), PoolKind::Ir);
            loader.unload(id).unwrap();
        }
        assert!(loader.stats().work_units > 0);
    }
}
