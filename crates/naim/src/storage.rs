//! Storage abstraction under the repository and the build cache, plus a
//! deterministic fault injector.
//!
//! §6.3 of the paper argues CMO is only deployable because failures are
//! isolated automatically. This module supplies the substrate for that
//! claim's storage half: every byte the persistent layers touch flows
//! through the [`Storage`] trait, so tests can interpose
//! [`FaultyStorage`] — a schedule-driven wrapper that injects torn
//! writes, ENOSPC, dropped fsyncs, bit flips, and whole-process crashes
//! at an exact I/O operation index — and verify that recovery produces
//! byte-identical builds.
//!
//! The crash model is "kill -9 with prefix survival": operations before
//! the kill point take effect, the killed write may leave a torn
//! half-prefix, and at the crash every file reverts to its last *synced*
//! length (data that was never [`Storage::sync`]ed does not survive).
//! Renames are modeled as atomic but carry only the source's durable
//! state, so a rename of an unsynced temp file loses the file — exactly
//! the classic zero-length-after-rename failure the commit protocol in
//! `cmo::BuildCache` must defend against.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::mmap::MapView;
use crate::remote::RemoteStats;
use crate::repository::RepoBackend;

/// A small named-file store: the I/O boundary for all persistent state.
///
/// Methods take `&self` so one storage handle can be shared between the
/// repository backend and the manifest/journal writers; implementations
/// provide their own interior mutability. Names are flat (no directory
/// components) — the store is a single cache directory.
pub trait Storage: fmt::Debug + Send + Sync {
    /// Reads the entire file `name`.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure, including a missing file.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;

    /// Replaces the contents of `name` with `data`, creating it if
    /// missing. Not atomic — callers wanting atomicity write a temp
    /// name, [`Storage::sync`] it, then [`Storage::rename`].
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure.
    fn write(&self, name: &str, data: &[u8]) -> io::Result<()>;

    /// Appends `data` to `name` (creating it if missing), returning the
    /// offset the data starts at.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure.
    fn append(&self, name: &str, data: &[u8]) -> io::Result<u64>;

    /// Reads `len` bytes of `name` starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure, including short reads.
    fn read_at(&self, name: &str, offset: u64, len: usize) -> io::Result<Vec<u8>>;

    /// Current size of `name` in bytes.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure, including a missing file.
    fn size(&self, name: &str) -> io::Result<u64>;

    /// Truncates `name` to `len` bytes.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure.
    fn truncate(&self, name: &str, len: u64) -> io::Result<()>;

    /// Makes the current contents of `name` durable (fsync).
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure.
    fn sync(&self, name: &str) -> io::Result<()>;

    /// Atomically renames `from` to `to`, replacing `to` if it exists.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure.
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;

    /// Whether `name` currently exists.
    fn exists(&self, name: &str) -> bool;

    /// Removes `name`.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure, including a missing file.
    fn remove(&self, name: &str) -> io::Result<()>;

    /// Returns a read-only [`MapView`] of `name`'s entire current
    /// contents, or `Ok(None)` when this storage does not serve views.
    ///
    /// The default declines: callers then fall back to [`Storage::read_at`],
    /// so wrappers that meter or perturb the operation stream (the fault
    /// injector in particular) keep their op-indexed schedules unchanged
    /// by simply not overriding this.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure, including a missing file.
    fn map(&self, _name: &str) -> io::Result<Option<MapView>> {
        Ok(None)
    }

    /// Stable label naming this backend's tier in diagnostics:
    /// `"local"` (the default), `"remote"`, or `"tiered"`. Wrappers
    /// forward to their inner storage so error context names the tier
    /// the bytes actually came from.
    fn tier_label(&self) -> &'static str {
        "local"
    }

    /// Remote-tier traffic statistics, when a remote tier is attached
    /// somewhere in this storage stack. The default reports none.
    fn remote_stats(&self) -> Option<RemoteStats> {
        None
    }
}

/// Real-filesystem storage rooted at a directory.
#[derive(Debug)]
pub struct DiskStorage {
    root: PathBuf,
    mmap: bool,
}

impl DiskStorage {
    /// Opens (creating if needed) the directory `root`. Memory-mapped
    /// views are served where the platform supports them; disable with
    /// [`DiskStorage::with_mmap`].
    ///
    /// # Errors
    ///
    /// Returns any failure creating the directory.
    pub fn new<P: AsRef<Path>>(root: P) -> io::Result<Self> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(DiskStorage { root, mmap: true })
    }

    /// Enables or disables memory-mapped views. With mmap off every
    /// read goes through the `pread`-style copy path; reports and
    /// traces are byte-identical either way (the cost model charges
    /// fetches by length, not by transport).
    #[must_use]
    pub fn with_mmap(mut self, enabled: bool) -> Self {
        self.mmap = enabled;
        self
    }

    /// The directory this storage lives in.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Storage for DiskStorage {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.path(name))
    }

    fn write(&self, name: &str, data: &[u8]) -> io::Result<()> {
        std::fs::write(self.path(name), data)
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<u64> {
        let mut file = File::options()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        let offset = file.seek(SeekFrom::End(0))?;
        file.write_all(data)?;
        Ok(offset)
    }

    fn read_at(&self, name: &str, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let mut file = File::open(self.path(name))?;
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        Ok(std::fs::metadata(self.path(name))?.len())
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let file = File::options().write(true).open(self.path(name))?;
        file.set_len(len)
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        File::open(self.path(name))?.sync_all()
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        std::fs::rename(self.path(from), self.path(to))
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).exists()
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        std::fs::remove_file(self.path(name))
    }

    fn map(&self, name: &str) -> io::Result<Option<MapView>> {
        if !self.mmap {
            return Ok(None);
        }
        // `CMO_NO_MMAP=1` forces the decline-to-map arm that non-unix
        // builds always take, so CI on unix exercises that path too
        // (the mmap-on/off byte-identity test runs it explicitly).
        if std::env::var_os("CMO_NO_MMAP").is_some_and(|v| v == "1") {
            return Ok(None);
        }
        #[cfg(unix)]
        {
            let file = File::open(self.path(name))?;
            // A refused mapping (exotic filesystem, resource limits) is
            // not an error — the caller just reads the slow way.
            Ok(MapView::map_file(&file).ok())
        }
        #[cfg(not(unix))]
        {
            Ok(None)
        }
    }
}

/// Recovers a possibly-poisoned mutex guard: a panic while holding the
/// lock must not cascade into every later storage operation.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Deterministic in-memory storage for tests and fault harnesses.
#[derive(Debug, Default)]
pub struct MemStorage {
    files: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemStorage {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Deep-copies the store, so one post-crash state can be recovered
    /// independently at several job counts.
    #[must_use]
    pub fn snapshot(&self) -> MemStorage {
        MemStorage {
            files: Mutex::new(lock(&self.files).clone()),
        }
    }

    fn missing(name: &str) -> io::Error {
        io::Error::new(io::ErrorKind::NotFound, format!("no such file: {name}"))
    }
}

impl Storage for MemStorage {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        lock(&self.files)
            .get(name)
            .cloned()
            .ok_or_else(|| Self::missing(name))
    }

    fn write(&self, name: &str, data: &[u8]) -> io::Result<()> {
        lock(&self.files).insert(name.to_owned(), data.to_vec());
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<u64> {
        let mut files = lock(&self.files);
        let file = files.entry(name.to_owned()).or_default();
        let offset = file.len() as u64;
        file.extend_from_slice(data);
        Ok(offset)
    }

    fn read_at(&self, name: &str, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let files = lock(&self.files);
        let file = files.get(name).ok_or_else(|| Self::missing(name))?;
        let start = offset as usize;
        match start.checked_add(len).filter(|&e| e <= file.len()) {
            Some(end) => Ok(file[start..end].to_vec()),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "read past end of file",
            )),
        }
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        lock(&self.files)
            .get(name)
            .map(|f| f.len() as u64)
            .ok_or_else(|| Self::missing(name))
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let mut files = lock(&self.files);
        let file = files.get_mut(name).ok_or_else(|| Self::missing(name))?;
        file.truncate(len as usize);
        Ok(())
    }

    fn sync(&self, _name: &str) -> io::Result<()> {
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let mut files = lock(&self.files);
        let data = files.remove(from).ok_or_else(|| Self::missing(from))?;
        files.insert(to.to_owned(), data);
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        lock(&self.files).contains_key(name)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        lock(&self.files)
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| Self::missing(name))
    }

    fn map(&self, name: &str) -> io::Result<Option<MapView>> {
        // A copied snapshot: callers treat views as immutable and
        // re-request them after any size change, so this behaves like
        // the real mapping.
        Ok(Some(MapView::copied(self.read(name)?)))
    }
}

/// A single injectable fault, applied to the operation it is scheduled
/// on. A fault scheduled on an operation kind it cannot affect (for
/// example [`Fault::BitFlip`] on a write) is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A write/append fails with "no space left on device" before any
    /// byte lands.
    Enospc,
    /// A write/append persists only the first half of its bytes, then
    /// fails.
    TornWrite,
    /// A read returns its bytes with one deterministically-chosen bit
    /// flipped.
    BitFlip,
    /// A sync reports success without making anything durable, so a
    /// later crash loses data the caller believed committed.
    DropSync,
}

/// The durable length of a file under the crash model: `None` means the
/// file does not durably exist (it was created but never synced).
type Durable = Option<u64>;

/// Mutable schedule + runtime state of a [`FaultyStorage`].
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Operations performed so far (every trait call except `exists`).
    ops: u64,
    /// Crash the process model at this operation index.
    kill_at: Option<u64>,
    /// Set once the kill point fires; all later operations fail.
    crashed: bool,
    /// Faults keyed by the operation index they fire on.
    faults: BTreeMap<u64, Fault>,
    /// Last synced length per file (crash-surviving state).
    durable: BTreeMap<String, Durable>,
}

/// What [`FaultyStorage::admit`] decides for one operation.
enum Admit {
    Proceed,
    Kill,
    Fault(Fault),
}

/// Storage wrapper that injects faults from a deterministic schedule.
///
/// Wraps any inner [`Storage`]; the schedule is fixed up front
/// (builder methods or [`FaultyStorage::with_seeded_faults`]), so a run
/// over the same inner state replays identically.
#[derive(Debug)]
pub struct FaultyStorage {
    inner: Arc<dyn Storage>,
    plan: Mutex<FaultPlan>,
}

impl FaultyStorage {
    /// Wraps `inner` with an empty fault schedule.
    #[must_use]
    pub fn new(inner: Arc<dyn Storage>) -> Self {
        FaultyStorage {
            inner,
            plan: Mutex::new(FaultPlan::default()),
        }
    }

    /// Schedules a crash at operation index `op` (0-based).
    #[must_use]
    pub fn kill_at(self, op: u64) -> Self {
        lock(&self.plan).kill_at = Some(op);
        self
    }

    /// Schedules `fault` to fire on operation index `op`.
    #[must_use]
    pub fn with_fault(self, op: u64, fault: Fault) -> Self {
        lock(&self.plan).faults.insert(op, fault);
        self
    }

    /// Wraps `inner` with `count` faults spread pseudo-randomly (seeded,
    /// deterministic) over operation indices `0..max_op`.
    #[must_use]
    pub fn with_seeded_faults(inner: Arc<dyn Storage>, seed: u64, max_op: u64, count: u32) -> Self {
        let this = FaultyStorage::new(inner);
        {
            let mut plan = lock(&this.plan);
            let mut state = seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15)
                .wrapping_mul(0xbf58_476d_1ce4_e5b9)
                | 1;
            for _ in 0..count {
                let op = xorshift(&mut state) % max_op.max(1);
                let fault = match xorshift(&mut state) % 4 {
                    0 => Fault::Enospc,
                    1 => Fault::TornWrite,
                    2 => Fault::BitFlip,
                    _ => Fault::DropSync,
                };
                plan.faults.insert(op, fault);
            }
        }
        this
    }

    /// Total operations admitted so far.
    #[must_use]
    pub fn ops(&self) -> u64 {
        lock(&self.plan).ops
    }

    /// Whether the kill point has fired.
    #[must_use]
    pub fn crashed(&self) -> bool {
        lock(&self.plan).crashed
    }

    /// Counts the operation, records the file's durable baseline on
    /// first mutation, and decides the operation's fate.
    fn admit(&self, mutated: Option<&str>) -> io::Result<(u64, Admit)> {
        let mut plan = lock(&self.plan);
        if plan.crashed {
            return Err(io::Error::other("storage crashed (kill point passed)"));
        }
        if let Some(name) = mutated {
            if !plan.durable.contains_key(name) {
                // A file that predates the fault injector counts as
                // durable at its current length.
                let baseline = if self.inner.exists(name) {
                    Some(self.inner.size(name)?)
                } else {
                    None
                };
                plan.durable.insert(name.to_owned(), baseline);
            }
        }
        let op = plan.ops;
        plan.ops += 1;
        if plan.kill_at == Some(op) {
            return Ok((op, Admit::Kill));
        }
        match plan.faults.get(&op) {
            Some(&fault) => Ok((op, Admit::Fault(fault))),
            None => Ok((op, Admit::Proceed)),
        }
    }

    /// Fires the crash: reverts every touched file to its durable state
    /// and fails all subsequent operations.
    fn crash(&self) -> io::Error {
        let mut plan = lock(&self.plan);
        plan.crashed = true;
        for (name, durable) in &plan.durable {
            match *durable {
                Some(len) => {
                    if self.inner.exists(name)
                        && self.inner.size(name).map(|s| s > len).unwrap_or(false)
                    {
                        let _ = self.inner.truncate(name, len);
                    }
                }
                None => {
                    if self.inner.exists(name) {
                        let _ = self.inner.remove(name);
                    }
                }
            }
        }
        io::Error::other("storage crashed (injected kill point)")
    }

    fn flip_bit(data: &mut [u8], op: u64) {
        if data.is_empty() {
            return;
        }
        let bit = (op as usize).wrapping_mul(0x9e37_79b9) % (data.len() * 8);
        data[bit / 8] ^= 1 << (bit % 8);
    }

    fn enospc() -> io::Error {
        io::Error::other("no space left on device (injected)")
    }

    fn torn() -> io::Error {
        io::Error::new(io::ErrorKind::WriteZero, "torn write (injected)")
    }
}

pub(crate) fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

impl Storage for FaultyStorage {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        let (op, admit) = self.admit(None)?;
        match admit {
            Admit::Kill => Err(self.crash()),
            Admit::Fault(Fault::BitFlip) => {
                let mut data = self.inner.read(name)?;
                Self::flip_bit(&mut data, op);
                Ok(data)
            }
            _ => self.inner.read(name),
        }
    }

    fn write(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let (_, admit) = self.admit(Some(name))?;
        match admit {
            Admit::Kill => {
                let _ = self.inner.write(name, &data[..data.len() / 2]);
                Err(self.crash())
            }
            Admit::Fault(Fault::Enospc) => Err(Self::enospc()),
            Admit::Fault(Fault::TornWrite) => {
                self.inner.write(name, &data[..data.len() / 2])?;
                Err(Self::torn())
            }
            _ => self.inner.write(name, data),
        }
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<u64> {
        let (_, admit) = self.admit(Some(name))?;
        match admit {
            Admit::Kill => {
                let _ = self.inner.append(name, &data[..data.len() / 2]);
                Err(self.crash())
            }
            Admit::Fault(Fault::Enospc) => Err(Self::enospc()),
            Admit::Fault(Fault::TornWrite) => {
                self.inner.append(name, &data[..data.len() / 2])?;
                Err(Self::torn())
            }
            _ => self.inner.append(name, data),
        }
    }

    fn read_at(&self, name: &str, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let (op, admit) = self.admit(None)?;
        match admit {
            Admit::Kill => Err(self.crash()),
            Admit::Fault(Fault::BitFlip) => {
                let mut data = self.inner.read_at(name, offset, len)?;
                Self::flip_bit(&mut data, op);
                Ok(data)
            }
            _ => self.inner.read_at(name, offset, len),
        }
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        let (_, admit) = self.admit(None)?;
        match admit {
            Admit::Kill => Err(self.crash()),
            _ => self.inner.size(name),
        }
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let (_, admit) = self.admit(Some(name))?;
        match admit {
            Admit::Kill => Err(self.crash()),
            _ => self.inner.truncate(name, len),
        }
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        let (_, admit) = self.admit(Some(name))?;
        match admit {
            Admit::Kill => Err(self.crash()),
            // The dropped sync *reports* success; durable state is not
            // advanced, so a later crash loses the data anyway.
            Admit::Fault(Fault::DropSync) => Ok(()),
            _ => {
                self.inner.sync(name)?;
                let durable = Some(self.inner.size(name)?);
                lock(&self.plan).durable.insert(name.to_owned(), durable);
                Ok(())
            }
        }
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let (_, admit) = self.admit(Some(from))?;
        {
            // Baseline the destination too: a crash may need to restore
            // its pre-rename durable length.
            let mut plan = lock(&self.plan);
            if !plan.durable.contains_key(to) {
                let baseline = if self.inner.exists(to) {
                    Some(self.inner.size(to)?)
                } else {
                    None
                };
                plan.durable.insert(to.to_owned(), baseline);
            }
        }
        match admit {
            Admit::Kill => Err(self.crash()),
            _ => {
                self.inner.rename(from, to)?;
                // The rename is atomic, but the new name only durably
                // holds what the old name had synced.
                let mut plan = lock(&self.plan);
                let carried = plan.durable.remove(from).flatten();
                plan.durable.insert(from.to_owned(), None);
                plan.durable.insert(to.to_owned(), carried);
                Ok(())
            }
        }
    }

    fn exists(&self, name: &str) -> bool {
        if lock(&self.plan).crashed {
            return false;
        }
        self.inner.exists(name)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        let (_, admit) = self.admit(Some(name))?;
        match admit {
            Admit::Kill => Err(self.crash()),
            _ => {
                self.inner.remove(name)?;
                lock(&self.plan).durable.insert(name.to_owned(), None);
                Ok(())
            }
        }
    }

    // Pass-throughs (uncounted, like `exists`): diagnostics must not
    // shift the op-indexed fault schedule.
    fn tier_label(&self) -> &'static str {
        self.inner.tier_label()
    }

    fn remote_stats(&self) -> Option<RemoteStats> {
        self.inner.remote_stats()
    }
}

/// Adapts one named file of a [`Storage`] to the repository's
/// [`RepoBackend`] interface, caching a read-only [`MapView`] so
/// repeated fetches borrow straight from the mapping.
#[derive(Debug)]
pub struct StorageFile {
    storage: Arc<dyn Storage>,
    name: String,
    /// Cached view of a prefix of the file. Appends leave it valid for
    /// its covered range (the repository is append-only); it is dropped
    /// on truncate and re-requested when a read falls past its end.
    view: Option<MapView>,
}

impl StorageFile {
    /// Binds the backend to file `name` inside `storage`.
    #[must_use]
    pub fn new(storage: Arc<dyn Storage>, name: impl Into<String>) -> Self {
        StorageFile {
            storage,
            name: name.into(),
            view: None,
        }
    }
}

impl RepoBackend for StorageFile {
    fn append(&mut self, data: &[u8]) -> io::Result<u64> {
        self.storage.append(&self.name, data)
    }

    fn read_at(&mut self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        self.storage.read_at(&self.name, offset, len)
    }

    fn size(&mut self) -> io::Result<u64> {
        if !self.storage.exists(&self.name) {
            return Ok(0);
        }
        self.storage.size(&self.name)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        // The cached mapping may cover pages past the new end; faulting
        // them in after the truncate would be undefined, so drop it.
        self.view = None;
        if len == 0 && !self.storage.exists(&self.name) {
            // Truncating a not-yet-created file to empty creates it
            // (Repository::create_backend starts from nothing).
            return self.storage.write(&self.name, &[]);
        }
        self.storage.truncate(&self.name, len)
    }

    fn ensure_view(&mut self, offset: u64, len: usize) -> io::Result<bool> {
        let end = offset as usize + len;
        if self.view.as_ref().is_some_and(|v| v.len() >= end) {
            return Ok(true);
        }
        // Stale or missing: re-request a view of the grown file.
        self.view = self.storage.map(&self.name)?;
        Ok(self.view.as_ref().is_some_and(|v| v.len() >= end))
    }

    fn view(&self, offset: u64, len: usize) -> Option<&[u8]> {
        let start = offset as usize;
        self.view.as_deref()?.get(start..start + len)
    }

    fn backend_label(&self) -> &'static str {
        self.storage.tier_label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_round_trips_and_snapshots() {
        let mem = MemStorage::new();
        mem.write("a", b"hello").unwrap();
        assert_eq!(mem.append("a", b" world").unwrap(), 5);
        assert_eq!(mem.read("a").unwrap(), b"hello world");
        assert_eq!(mem.read_at("a", 6, 5).unwrap(), b"world");
        assert_eq!(mem.size("a").unwrap(), 11);
        let snap = mem.snapshot();
        mem.truncate("a", 5).unwrap();
        assert_eq!(mem.read("a").unwrap(), b"hello");
        assert_eq!(snap.read("a").unwrap(), b"hello world");
        mem.rename("a", "b").unwrap();
        assert!(!mem.exists("a"));
        assert!(mem.exists("b"));
        mem.remove("b").unwrap();
        assert!(matches!(
            mem.read("b").unwrap_err().kind(),
            io::ErrorKind::NotFound
        ));
    }

    #[test]
    fn disk_storage_round_trips() {
        let dir = std::env::temp_dir().join(format!("cmo-naim-storage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = DiskStorage::new(&dir).unwrap();
        disk.write("f", b"abc").unwrap();
        assert_eq!(disk.append("f", b"def").unwrap(), 3);
        assert_eq!(disk.read("f").unwrap(), b"abcdef");
        assert_eq!(disk.read_at("f", 2, 2).unwrap(), b"cd");
        assert_eq!(disk.size("f").unwrap(), 6);
        disk.truncate("f", 4).unwrap();
        disk.sync("f").unwrap();
        disk.rename("f", "g").unwrap();
        assert!(disk.exists("g") && !disk.exists("f"));
        assert_eq!(disk.read("g").unwrap(), b"abcd");
        disk.remove("g").unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_keeps_half_and_errors() {
        let faulty =
            FaultyStorage::new(Arc::new(MemStorage::new())).with_fault(0, Fault::TornWrite);
        assert!(faulty.write("f", b"12345678").is_err());
        assert_eq!(faulty.read("f").unwrap(), b"1234");
        assert!(!faulty.crashed());
    }

    #[test]
    fn enospc_leaves_no_bytes() {
        let faulty = FaultyStorage::new(Arc::new(MemStorage::new())).with_fault(0, Fault::Enospc);
        assert!(faulty.append("f", b"xyz").is_err());
        assert!(!faulty.exists("f"));
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let mem = Arc::new(MemStorage::new());
        mem.write("f", b"\0\0\0\0").unwrap();
        let faulty = FaultyStorage::new(mem).with_fault(0, Fault::BitFlip);
        let flipped = faulty.read("f").unwrap();
        let ones: u32 = flipped.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "flipped bytes: {flipped:?}");
        // The next read (no scheduled fault) sees the true bytes.
        assert_eq!(faulty.read("f").unwrap(), b"\0\0\0\0");
    }

    #[test]
    fn crash_reverts_unsynced_data_and_fails_later_ops() {
        let mem = Arc::new(MemStorage::new());
        let faulty = FaultyStorage::new(Arc::clone(&mem) as Arc<dyn Storage>).kill_at(4);
        faulty.append("f", b"synced").unwrap(); // op 0
        faulty.sync("f").unwrap(); // op 1
        faulty.append("f", b"+lost").unwrap(); // op 2
        faulty.append("g", b"never synced").unwrap(); // op 3
        assert!(faulty.size("f").is_err()); // op 4: kill
        assert!(faulty.crashed());
        assert!(faulty.read("f").is_err(), "post-crash ops must fail");
        // The inner store is the disk after reboot: synced prefix only.
        assert_eq!(mem.read("f").unwrap(), b"synced");
        assert!(!mem.exists("g"));
    }

    #[test]
    fn dropped_sync_loses_data_at_crash() {
        let mem = Arc::new(MemStorage::new());
        let faulty = FaultyStorage::new(Arc::clone(&mem) as Arc<dyn Storage>)
            .with_fault(1, Fault::DropSync)
            .kill_at(2);
        faulty.append("f", b"data").unwrap(); // op 0
        faulty.sync("f").unwrap(); // op 1: dropped, reports Ok
        assert!(faulty.read("f").is_err()); // op 2: kill
        assert!(!mem.exists("f"), "dropped sync must not be durable");
    }

    #[test]
    fn rename_of_unsynced_file_is_lost_at_crash() {
        let mem = Arc::new(MemStorage::new());
        let faulty = FaultyStorage::new(Arc::clone(&mem) as Arc<dyn Storage>).kill_at(4);
        faulty.write("t.tmp", b"new").unwrap(); // op 0: never synced
        faulty.rename("t.tmp", "t").unwrap(); // op 1
        faulty.write("u.tmp", b"durable").unwrap(); // op 2
        faulty.sync("u.tmp").unwrap(); // op 3
        assert!(faulty.rename("u.tmp", "u").is_err()); // op 4: kill
        assert!(!mem.exists("t"), "unsynced rename survived the crash");
        // The killed rename never happened; the synced temp survives.
        assert_eq!(mem.read("u.tmp").unwrap(), b"durable");
    }

    #[test]
    fn synced_rename_survives_crash() {
        let mem = Arc::new(MemStorage::new());
        let faulty = FaultyStorage::new(Arc::clone(&mem) as Arc<dyn Storage>).kill_at(3);
        faulty.write("t.tmp", b"new").unwrap(); // op 0
        faulty.sync("t.tmp").unwrap(); // op 1
        faulty.rename("t.tmp", "t").unwrap(); // op 2
        assert!(faulty.read("t").is_err()); // op 3: kill
        assert_eq!(mem.read("t").unwrap(), b"new");
        assert!(!mem.exists("t.tmp"));
    }

    #[test]
    fn preexisting_files_are_durable_at_attach_time() {
        let mem = Arc::new(MemStorage::new());
        mem.write("old", b"ancient bytes").unwrap();
        let faulty = FaultyStorage::new(Arc::clone(&mem) as Arc<dyn Storage>).kill_at(1);
        faulty.append("old", b"+new").unwrap(); // op 0
        assert!(faulty.size("old").is_err()); // op 1: kill
        assert_eq!(mem.read("old").unwrap(), b"ancient bytes");
    }

    #[test]
    fn seeded_schedule_is_deterministic() {
        let a = FaultyStorage::with_seeded_faults(Arc::new(MemStorage::new()), 42, 100, 8);
        let b = FaultyStorage::with_seeded_faults(Arc::new(MemStorage::new()), 42, 100, 8);
        assert_eq!(lock(&a.plan).faults, lock(&b.plan).faults);
        let c = FaultyStorage::with_seeded_faults(Arc::new(MemStorage::new()), 43, 100, 8);
        assert_ne!(lock(&a.plan).faults, lock(&c.plan).faults);
    }

    #[test]
    fn storage_file_adapts_repo_backend() {
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let mut file = StorageFile::new(Arc::clone(&storage), "repo.naim");
        assert_eq!(file.size().unwrap(), 0, "missing file reads as empty");
        assert_eq!(file.append(b"abcdef").unwrap(), 0);
        assert_eq!(file.read_at(2, 3).unwrap(), b"cde");
        file.truncate(4).unwrap();
        assert_eq!(file.size().unwrap(), 4);
    }

    #[test]
    fn storage_file_serves_views_and_refreshes_after_growth() {
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let mut file = StorageFile::new(Arc::clone(&storage), "repo.naim");
        file.append(b"abcdef").unwrap();
        assert!(file.ensure_view(0, 6).unwrap());
        assert_eq!(file.view(2, 3).unwrap(), b"cde");
        // Beyond the cached view: declined until re-ensured.
        assert!(file.view(0, 7).is_none());
        file.append(b"ghi").unwrap();
        assert!(file.ensure_view(6, 3).unwrap());
        assert_eq!(file.view(6, 3).unwrap(), b"ghi");
        // Truncation drops the cached view entirely.
        file.truncate(4).unwrap();
        assert!(file.view(0, 1).is_none());
        assert!(!file.ensure_view(0, 5).unwrap());
        assert!(file.ensure_view(0, 4).unwrap());
    }

    #[test]
    fn faulty_storage_never_serves_views() {
        // The fault injector's schedules are op-indexed; serving views
        // would let readers bypass metered `read_at` calls and shift
        // every later kill point. The default `map` declines.
        let faulty = FaultyStorage::new(Arc::new(MemStorage::new()));
        faulty.write("f", b"bytes").unwrap();
        assert!(faulty.map("f").unwrap().is_none());
        let mut file = StorageFile::new(
            Arc::new(FaultyStorage::new(Arc::new(MemStorage::new()))),
            "f",
        );
        file.append(b"bytes").unwrap();
        assert!(!file.ensure_view(0, 5).unwrap());
        assert!(file.view(0, 5).is_none());
    }
}
