//! A sharded, thread-safe facade over the NAIM [`Loader`] (§8).
//!
//! The paper names parallelizing NAIM load/unload alongside
//! optimization as future work; this module is that step. Pools are
//! distributed round-robin over `NaimConfig::shards` independent
//! [`Loader`]s, each behind its own mutex, and every shard reports
//! into one program-wide [`SharedAccountant`] — so the expand/compact/
//! offload thresholds of §4.3 still see the *whole* optimizer heap,
//! not a per-shard slice.
//!
//! Two access styles coexist:
//!
//! * The `&mut self` API mirrors [`Loader`] method-for-method
//!   ([`ShardedLoader::get`], [`ShardedLoader::get_mut`],
//!   [`ShardedLoader::unload`], …) and returns plain references. With
//!   exclusive access the mutexes are bypassed via `Mutex::get_mut`,
//!   so single-threaded callers (the HLO session) pay nothing.
//! * The `&self` API ([`ShardedLoader::with`],
//!   [`ShardedLoader::with_mut`], [`ShardedLoader::touch_shared`],
//!   [`ShardedLoader::unload_shared`]) locks only the owning shard and
//!   may be called concurrently from the driver's worker pool;
//!   operations on different shards proceed in parallel.
//!
//! Pool ids are *global*: pool `g` lives in shard `g % n` at local
//! index `g / n`, and each shard stamps the global id into its
//! telemetry events, so traces read identically whatever the shard
//! count.

use crate::accounting::{MemClass, MemorySnapshot, SharedAccountant};
use crate::error::NaimError;
use crate::loader::{Loader, LoaderStats, NaimConfig, PoolId, PoolKind, PoolState, Relocatable};
use crate::repository::{MemBackend, RepoBackend, Repository};
use cmo_telemetry::Telemetry;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks a shard, recovering from poisoning: loader state is guarded
/// by per-method invariants, not by panic-freedom of other threads.
fn lock<T, B>(shard: &Mutex<Loader<T, B>>) -> MutexGuard<'_, Loader<T, B>> {
    shard.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A thread-safe loader composed of per-shard [`Loader`]s with one
/// shared memory accountant.
///
/// Construct with [`ShardedLoader::new`]; the shard count comes from
/// [`NaimConfig::shards`].
#[derive(Debug)]
pub struct ShardedLoader<T, B = MemBackend> {
    shards: Vec<Mutex<Loader<T, B>>>,
    accountant: Arc<SharedAccountant>,
    config: NaimConfig,
    /// Total pools ever inserted; also the next global pool id.
    n_pools: u32,
}

impl<T: Relocatable> ShardedLoader<T, MemBackend> {
    /// Creates a sharded loader with in-memory repository backends
    /// (one per shard).
    #[must_use]
    pub fn new(config: NaimConfig) -> Self {
        let n = config.shards.max(1);
        let repos = (0..n).map(|_| Repository::in_memory()).collect();
        ShardedLoader::with_repositories(config, repos)
    }
}

impl<T: Relocatable, B: RepoBackend> ShardedLoader<T, B> {
    /// Creates a sharded loader over explicit repositories, one per
    /// shard.
    ///
    /// # Panics
    ///
    /// Panics if `repos` is empty or its length disagrees with
    /// `config.shards` (when `config.shards > 1`).
    pub fn with_repositories(config: NaimConfig, repos: Vec<Repository<B>>) -> Self {
        let n = config.shards.max(1);
        assert_eq!(
            repos.len(),
            n,
            "need exactly one repository per shard ({n})"
        );
        let accountant = Arc::new(SharedAccountant::new());
        let stride = u32::try_from(n).expect("shard count fits in u32");
        let shards = repos
            .into_iter()
            .enumerate()
            .map(|(s, repo)| {
                Mutex::new(Loader::shard(
                    config.clone(),
                    repo,
                    Arc::clone(&accountant),
                    s as u32,
                    stride,
                ))
            })
            .collect();
        ShardedLoader {
            shards,
            accountant,
            config,
            n_pools: 0,
        }
    }

    /// Attaches a telemetry sink shared by every shard.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for shard in &mut self.shards {
            shard
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .set_telemetry(telemetry.clone());
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &NaimConfig {
        &self.config
    }

    /// Number of shards.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard index owning global pool `id`.
    fn shard_of(&self, id: PoolId) -> usize {
        id.index() % self.shards.len()
    }

    /// Per-shard pool id for global pool `id`.
    fn local_of(&self, id: PoolId) -> PoolId {
        PoolId::from_raw((id.index() / self.shards.len()) as u32)
    }

    /// Exclusive (lock-free) access to the shard owning `id`.
    fn owner_mut(&mut self, id: PoolId) -> (&mut Loader<T, B>, PoolId) {
        let s = self.shard_of(id);
        let local = self.local_of(id);
        let loader = self.shards[s]
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        (loader, local)
    }

    /// Registers a new pool, assigning it the next global id.
    /// Distribution over shards is round-robin in insertion order, so
    /// global ids are dense and shard placement is deterministic.
    pub fn insert(&mut self, value: T, kind: PoolKind) -> PoolId {
        let id = PoolId::from_raw(self.n_pools);
        self.n_pools += 1;
        let (loader, local) = self.owner_mut(id);
        let got = loader.insert(value, kind);
        debug_assert_eq!(got, local, "round-robin id mapping out of sync");
        id
    }

    /// Shared reference to the expanded pool, loading it if necessary.
    ///
    /// # Errors
    ///
    /// Returns a decode or repository error if re-expansion fails.
    pub fn get(&mut self, id: PoolId) -> Result<&T, NaimError> {
        let (loader, local) = self.owner_mut(id);
        loader.get(local)
    }

    /// Exclusive reference to the expanded pool, loading it if
    /// necessary.
    ///
    /// # Errors
    ///
    /// Returns a decode or repository error if re-expansion fails.
    pub fn get_mut(&mut self, id: PoolId) -> Result<&mut T, NaimError> {
        let (loader, local) = self.owner_mut(id);
        loader.get_mut(local)
    }

    /// Ensures the pool is expanded and marks it recently used.
    ///
    /// # Errors
    ///
    /// Returns a decode or repository error if re-expansion fails.
    pub fn touch(&mut self, id: PoolId) -> Result<(), NaimError> {
        let (loader, local) = self.owner_mut(id);
        loader.touch(local)
    }

    /// Current residency state of `id`.
    #[must_use]
    pub fn state(&mut self, id: PoolId) -> PoolState {
        let (loader, local) = self.owner_mut(id);
        loader.state(local)
    }

    /// Kind of the pool `id`.
    #[must_use]
    pub fn kind(&mut self, id: PoolId) -> PoolKind {
        let (loader, local) = self.owner_mut(id);
        loader.kind(local)
    }

    /// Declares that the client no longer needs `id` expanded, then
    /// enforces the program-wide memory policy.
    ///
    /// # Errors
    ///
    /// Propagates enforcement failures (hard out-of-memory).
    pub fn unload(&mut self, id: PoolId) -> Result<(), NaimError> {
        let (loader, local) = self.owner_mut(id);
        loader.mark_unload(local);
        self.enforce()
    }

    /// Marks every pool in every shard unload-pending and enforces.
    ///
    /// # Errors
    ///
    /// Propagates enforcement failures (hard out-of-memory).
    pub fn unload_all(&mut self) -> Result<(), NaimError> {
        for shard in &mut self.shards {
            shard
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .mark_all_unload();
        }
        self.enforce()
    }

    /// Runs the threshold sweep on every shard, then checks the
    /// program-wide hard limit once. Sweeping all shards before the
    /// check matters: one shard over the limit is not out of memory
    /// while another still holds reclaimable pending pools.
    ///
    /// # Errors
    ///
    /// Returns [`NaimError::OutOfMemory`] if the heap cannot be brought
    /// under the hard limit.
    pub fn enforce(&mut self) -> Result<(), NaimError> {
        for shard in &mut self.shards {
            shard
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .enforce_unlimited()?;
        }
        self.check_hard_limit()
    }

    /// Records memory occupied by structures outside the loader's
    /// control (global or derived data).
    pub fn account(&self, class: MemClass, delta: isize) {
        self.accountant.adjust(class, delta);
    }

    /// Program-wide memory accounting snapshot.
    #[must_use]
    pub fn memory(&self) -> MemorySnapshot {
        self.accountant.snapshot()
    }

    /// Activity counters summed over all shards.
    #[must_use]
    pub fn stats(&self) -> LoaderStats {
        let mut sum = LoaderStats::default();
        for shard in &self.shards {
            sum.absorb(&lock(shard).stats());
        }
        sum
    }

    /// Pool counts per state summed over all shards:
    /// `(expanded, pending, compact, offloaded)`.
    #[must_use]
    pub fn census(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for shard in &self.shards {
            let (e, p, k, o) = lock(shard).census();
            c.0 += e;
            c.1 += p;
            c.2 += k;
            c.3 += o;
        }
        c
    }

    /// Hard-limit check against the shared accountant; see
    /// [`ShardedLoader::enforce`].
    fn check_hard_limit(&self) -> Result<(), NaimError> {
        if let Some(limit) = self.config.hard_limit_bytes {
            let total = self.accountant.total();
            if total > limit {
                return Err(NaimError::OutOfMemory {
                    wanted: total,
                    budget: limit,
                });
            }
        }
        Ok(())
    }

    // ---- concurrent (&self) API ------------------------------------
    //
    // Each method locks exactly one shard at a time, in a single
    // acquire-release per call — no nested locks, hence no deadlock.

    /// Runs `f` over the expanded pool, loading it if necessary, while
    /// holding only the owning shard's lock.
    ///
    /// # Errors
    ///
    /// Returns a decode or repository error if re-expansion fails.
    pub fn with<R>(&self, id: PoolId, f: impl FnOnce(&T) -> R) -> Result<R, NaimError> {
        let mut loader = lock(&self.shards[self.shard_of(id)]);
        loader.get(self.local_of(id)).map(f)
    }

    /// Runs `f` over the expanded pool with exclusive access, holding
    /// only the owning shard's lock.
    ///
    /// # Errors
    ///
    /// Returns a decode or repository error if re-expansion fails.
    pub fn with_mut<R>(&self, id: PoolId, f: impl FnOnce(&mut T) -> R) -> Result<R, NaimError> {
        let mut loader = lock(&self.shards[self.shard_of(id)]);
        loader.get_mut(self.local_of(id)).map(f)
    }

    /// Thread-safe [`ShardedLoader::touch`].
    ///
    /// # Errors
    ///
    /// Returns a decode or repository error if re-expansion fails.
    pub fn touch_shared(&self, id: PoolId) -> Result<(), NaimError> {
        lock(&self.shards[self.shard_of(id)]).touch(self.local_of(id))
    }

    /// Thread-safe [`ShardedLoader::unload`]: marks the pool pending
    /// and sweeps its own shard; the full cross-shard sweep runs only
    /// if the hard limit is still exceeded afterwards.
    ///
    /// # Errors
    ///
    /// Propagates enforcement failures (hard out-of-memory).
    pub fn unload_shared(&self, id: PoolId) -> Result<(), NaimError> {
        {
            let mut loader = lock(&self.shards[self.shard_of(id)]);
            loader.mark_unload(self.local_of(id));
            loader.enforce_unlimited()?;
        }
        if self.check_hard_limit().is_err() {
            self.enforce_shared()?;
        }
        Ok(())
    }

    /// Thread-safe [`ShardedLoader::enforce`], locking shards one at a
    /// time.
    ///
    /// # Errors
    ///
    /// Returns [`NaimError::OutOfMemory`] if the heap cannot be brought
    /// under the hard limit.
    pub fn enforce_shared(&self) -> Result<(), NaimError> {
        for shard in &self.shards {
            lock(shard).enforce_unlimited()?;
        }
        self.check_hard_limit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{Decoder, Encoder};
    use crate::error::DecodeError;

    #[derive(Clone, Debug, PartialEq)]
    struct Blob {
        payload: Vec<u64>,
    }

    impl Blob {
        fn of(n: u64, len: usize) -> Self {
            Blob {
                payload: (0..len as u64).map(|i| i.wrapping_mul(n)).collect(),
            }
        }
    }

    impl Relocatable for Blob {
        fn compact(&self, enc: &mut Encoder) {
            enc.write_usize(self.payload.len());
            for &v in &self.payload {
                enc.write_u64(v);
            }
        }
        fn uncompact(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
            let len = dec.read_usize()?;
            let mut payload = Vec::with_capacity(len);
            for _ in 0..len {
                payload.push(dec.read_u64()?);
            }
            Ok(Blob { payload })
        }
        fn expanded_bytes(&self) -> usize {
            std::mem::size_of::<Self>() + self.payload.capacity() * 8
        }
    }

    fn config(shards: usize) -> NaimConfig {
        NaimConfig {
            cache_pools: 2,
            ..NaimConfig::with_budget(4096)
        }
        .shards(shards)
    }

    #[test]
    fn facade_is_send_and_sync() {
        fn assert_send_sync<X: Send + Sync>() {}
        assert_send_sync::<ShardedLoader<Blob>>();
    }

    #[test]
    fn poisoned_shard_stays_usable() {
        let mut l: ShardedLoader<Blob> = ShardedLoader::new(config(2));
        let ids: Vec<_> = (0..8)
            .map(|i| l.insert(Blob::of(i, 50), PoolKind::Ir))
            .collect();
        let loader = Arc::new(l);
        // Panic while holding a shard's lock, poisoning its mutex.
        let poisoner = Arc::clone(&loader);
        let first = ids[0];
        let result = std::thread::spawn(move || {
            poisoner
                .with(first, |_| panic!("worker died mid-access"))
                .unwrap()
        })
        .join();
        assert!(result.is_err(), "the panic must reach the worker's join");
        // Every pool — including those on the poisoned shard — remains
        // readable, and the loader still accepts shared-access traffic.
        for (i, &id) in ids.iter().enumerate() {
            let blob = loader.with(id, Clone::clone).unwrap();
            assert_eq!(blob, Blob::of(i as u64, 50));
        }
        loader.unload_shared(first).unwrap();
        let blob = loader.with(first, Clone::clone).unwrap();
        assert_eq!(blob, Blob::of(0, 50));
    }

    #[test]
    fn round_trips_through_all_states_across_shards() {
        let mut loader: ShardedLoader<Blob> = ShardedLoader::new(config(4));
        assert_eq!(loader.n_shards(), 4);
        let ids: Vec<_> = (0..32)
            .map(|i| loader.insert(Blob::of(i, 100), PoolKind::Ir))
            .collect();
        // Dense global ids, round-robin over shards.
        assert_eq!(ids[5].index(), 5);
        loader.unload_all().unwrap();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(loader.get(id).unwrap(), &Blob::of(i as u64, 100));
        }
        assert!(loader.stats().compactions > 0);
    }

    #[test]
    fn single_shard_matches_plain_loader_behaviour() {
        let mut sharded: ShardedLoader<Blob> = ShardedLoader::new(config(1));
        let mut plain: Loader<Blob> = Loader::new(config(1));
        let mut ids = Vec::new();
        for i in 0..64 {
            let a = sharded.insert(Blob::of(i, 100), PoolKind::Ir);
            let b = plain.insert(Blob::of(i, 100), PoolKind::Ir);
            assert_eq!(a.index(), b.index());
            sharded.unload(a).unwrap();
            plain.unload(b).unwrap();
        }
        assert_eq!(sharded.stats(), plain.stats());
        assert_eq!(sharded.census(), plain.census());
        assert_eq!(sharded.memory().peak_total, plain.memory().peak_total);
        for &id in &ids {
            assert_eq!(sharded.state(id), plain.state(id));
        }
        ids.clear();
    }

    #[test]
    fn budget_is_enforced_program_wide_not_per_shard() {
        // With a shared accountant, inserting everything into shard 0's
        // id space still counts against the global total seen by every
        // shard's thresholds.
        let mut loader: ShardedLoader<Blob> = ShardedLoader::new(config(4));
        for i in 0..64 {
            let id = loader.insert(Blob::of(i, 100), PoolKind::Ir);
            loader.unload(id).unwrap();
        }
        let snap = loader.memory();
        assert!(loader.stats().compactions > 0);
        assert!(snap.total() <= snap.peak_total);
    }

    #[test]
    fn hard_limit_consults_all_shards_before_failing() {
        // Lots of pending pools spread over shards; the hard limit is
        // generous enough for the *compacted* program but far below the
        // expanded total. A per-shard hard check would fail before
        // other shards got a chance to compact; the facade must
        // succeed.
        let cfg = NaimConfig {
            cache_pools: 0,
            ..NaimConfig::with_budget(2048)
        }
        .shards(4)
        .hard_limit(64 << 10);
        let mut loader: ShardedLoader<Blob> = ShardedLoader::new(cfg);
        for i in 0..32 {
            let id = loader.insert(Blob::of(i, 100), PoolKind::Ir);
            loader.unload(id).unwrap();
        }
        // And a genuinely-too-small limit still fails.
        let cfg = NaimConfig::disabled().shards(2).hard_limit(512);
        let mut loader: ShardedLoader<Blob> = ShardedLoader::new(cfg);
        loader.insert(Blob::of(1, 1000), PoolKind::Ir);
        assert!(matches!(
            loader.unload_all(),
            Err(NaimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn concurrent_get_unload_touch_across_shards() {
        // The ISSUE's smoke test: hammer the &self API from several
        // threads and check nothing panics, deadlocks, or corrupts
        // pool contents or accounting.
        let cfg = NaimConfig {
            cache_pools: 1,
            ..NaimConfig::with_budget(8192)
        }
        .shards(4);
        let mut loader: ShardedLoader<Blob> = ShardedLoader::new(cfg);
        let ids: Vec<_> = (0..64)
            .map(|i| loader.insert(Blob::of(i, 50), PoolKind::Ir))
            .collect();
        loader.unload_all().unwrap();
        let loader = &loader;
        std::thread::scope(|s| {
            for t in 0..4usize {
                let ids = &ids;
                s.spawn(move || {
                    for round in 0..50 {
                        for (i, &id) in ids.iter().enumerate().skip(t % 4) {
                            match (i + round + t) % 3 {
                                0 => {
                                    let ok =
                                        loader.with(id, |b| *b == Blob::of(i as u64, 50)).unwrap();
                                    assert!(ok, "pool {i} corrupted");
                                }
                                1 => loader.touch_shared(id).unwrap(),
                                _ => loader.unload_shared(id).unwrap(),
                            }
                        }
                    }
                });
            }
        });
        // All pools still intact and accounted after the storm.
        let snap = loader.memory();
        assert!(snap.total() > 0);
        for (i, &id) in ids.iter().enumerate() {
            loader
                .with(id, |b| assert_eq!(b, &Blob::of(i as u64, 50)))
                .unwrap();
        }
    }

    #[test]
    fn with_mut_mutations_survive_eviction() {
        let mut loader: ShardedLoader<Blob> = ShardedLoader::new(config(2));
        let id = loader.insert(Blob::of(1, 100), PoolKind::Ir);
        loader.with_mut(id, |b| b.payload.push(777)).unwrap();
        loader.unload(id).unwrap();
        for i in 0..64 {
            let other = loader.insert(Blob::of(i, 100), PoolKind::Ir);
            loader.unload(other).unwrap();
        }
        loader
            .with(id, |b| assert_eq!(*b.payload.last().unwrap(), 777))
            .unwrap();
    }
}
