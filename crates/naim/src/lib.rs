#![warn(missing_docs)]
//! Not-all-in-memory (NAIM) compilation model.
//!
//! This crate implements the memory-management substrate described in
//! section 4 of *Scalable Cross-Module Optimization* (Ayers, de Jong,
//! Peyton, Schooler; PLDI 1998). The optimizer's data structures fall into
//! three classes:
//!
//! * **Global** objects (program symbol table, call graph) are always
//!   memory resident; they are merely *accounted for* here.
//! * **Transitory** objects (module symbol tables, routine IR) exist in
//!   either *expanded* form (ordinary structs, efficient traversal) or
//!   *relocatable* form (a compact, address-independent byte encoding in
//!   which inter-object references are persistent identifiers, [`Pid`]s).
//!   Relocatable pools may further be *offloaded* to a disk
//!   [`Repository`], freeing process memory entirely.
//! * **Derived** objects (data-flow facts, dominators, loop annotations)
//!   are recompute-only: they are never encoded and are dropped whenever
//!   their owning pool leaves expanded form.
//!
//! The [`Loader`] mediates every access to a transitory pool. It keeps an
//! LRU cache of expanded pools, converts pools to and from relocatable
//! form through the [`Relocatable`] compaction/uncompaction drivers
//! (*eager swizzling*: all `Pid`s in a pool are resolved when the pool is
//! loaded), and engages progressively more aggressive behaviour as the
//! accounted heap crosses configurable [`Thresholds`] — exactly the
//! staged IR-compaction / symbol-table-compaction / disk-offloading
//! regime of the paper (Figure 5).
//!
//! # Example
//!
//! ```
//! use cmo_naim::{Loader, NaimConfig, Relocatable, Encoder, Decoder, DecodeError, PoolKind};
//!
//! #[derive(Clone, Debug, PartialEq)]
//! struct Notes(Vec<u64>);
//!
//! impl Relocatable for Notes {
//!     fn compact(&self, enc: &mut Encoder) {
//!         enc.write_u64(self.0.len() as u64);
//!         for &n in &self.0 { enc.write_u64(n); }
//!     }
//!     fn uncompact(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
//!         let len = dec.read_u64()? as usize;
//!         let mut v = Vec::with_capacity(len);
//!         for _ in 0..len { v.push(dec.read_u64()?); }
//!         Ok(Notes(v))
//!     }
//!     fn expanded_bytes(&self) -> usize {
//!         std::mem::size_of::<Self>() + self.0.capacity() * 8
//!     }
//! }
//!
//! # fn main() -> Result<(), cmo_naim::NaimError> {
//! let mut loader: Loader<Notes> = Loader::new(NaimConfig::with_budget(4096));
//! let id = loader.insert(Notes(vec![1, 2, 3]), PoolKind::Ir);
//! loader.unload(id);           // eligible for compaction / offload
//! let notes = loader.get(id)?; // transparently re-expanded on demand
//! assert_eq!(notes.0, vec![1, 2, 3]);
//! # Ok(())
//! # }
//! ```

mod accounting;
mod arena;
mod encode;
mod error;
mod loader;
mod mmap;
mod pid;
mod remote;
mod repository;
mod sharded;
mod storage;
mod tiered;

pub use accounting::{MemClass, MemoryAccountant, MemorySnapshot, SharedAccountant};
pub use arena::Arena;
pub use encode::{Decoder, Encoder};
pub use error::{DecodeError, NaimError};
pub use loader::{
    Loader, LoaderStats, NaimConfig, NaimLevel, PoolId, PoolKind, PoolState, Relocatable,
    Thresholds,
};
pub use mmap::MapView;
pub use pid::Pid;
pub use remote::{
    read_frame_bytes, CacheService, FlakyTransport, Frame, FrameOp, LoopbackTransport, RemoteStats,
    RemoteStorage, RemoteTransport, RetryPolicy, ServiceStats, TcpTransport, WireFault,
};
pub use repository::{
    crc32, ContentHash, MemBackend, RepoBackend, RepoHandle, RepoRecovery, RepoStats, Repository,
    REPO_MAGIC, REPO_VERSION,
};
pub use sharded::ShardedLoader;
pub use storage::{DiskStorage, Fault, FaultyStorage, MemStorage, Storage, StorageFile};
pub use tiered::TieredStorage;
