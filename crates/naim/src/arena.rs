//! Arena-based allocation for pool locality.
//!
//! HLO groups the objects that are optimized together into a dense set of
//! pages (§4.3, first technique): all objects making up a single IR
//! routine live in one arena, so compaction can reclaim the whole arena
//! at once and traversals stay cache-friendly. This reproduction uses the
//! arena both for that locality story and as the unit of the paper's
//! "compaction is garbage collection" observation: dropping an arena
//! reclaims all unreachable objects with no per-object free.

use std::cell::RefCell;

const DEFAULT_CHUNK: usize = 16 * 1024;

/// A bump allocator that hands out `u64`-aligned byte slices and frees
/// them all at once when dropped.
///
/// # Example
///
/// ```
/// use cmo_naim::Arena;
/// let arena = Arena::new();
/// let a = arena.alloc_slice(&[1u8, 2, 3]);
/// assert_eq!(a, &[1, 2, 3]);
/// assert!(arena.allocated_bytes() >= 3);
/// ```
#[derive(Debug, Default)]
pub struct Arena {
    chunks: RefCell<Vec<Vec<u8>>>,
    allocated: RefCell<usize>,
}

impl Arena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes handed out by this arena (not counting slack at chunk
    /// ends).
    #[must_use]
    pub fn allocated_bytes(&self) -> usize {
        *self.allocated.borrow()
    }

    /// Total bytes reserved from the system, including slack.
    #[must_use]
    pub fn reserved_bytes(&self) -> usize {
        self.chunks.borrow().iter().map(Vec::capacity).sum()
    }

    /// Copies `data` into the arena and returns the stable slice.
    ///
    /// The returned reference lives as long as the arena itself; the
    /// arena never moves or frees individual allocations.
    pub fn alloc_slice(&self, data: &[u8]) -> &[u8] {
        let len = data.len().max(1);
        let mut chunks = self.chunks.borrow_mut();
        let need_new = match chunks.last() {
            Some(c) => c.capacity() - c.len() < len,
            None => true,
        };
        if need_new {
            chunks.push(Vec::with_capacity(DEFAULT_CHUNK.max(len)));
        }
        let chunk = chunks.last_mut().expect("chunk just ensured");
        let start = chunk.len();
        chunk.extend_from_slice(data);
        // Pad to 8-byte alignment for the next allocation.
        let pad = (8 - chunk.len() % 8) % 8;
        chunk.resize(chunk.len() + pad, 0);
        *self.allocated.borrow_mut() += data.len();
        // SAFETY of the lifetime extension: chunks are never shrunk,
        // reallocated in place, or removed while the arena lives, and
        // `Vec::with_capacity` guarantees no growth reallocation because
        // we never exceed the reserved capacity of a chunk.
        unsafe {
            let ptr = chunk.as_ptr().add(start);
            std::slice::from_raw_parts(ptr, data.len())
        }
    }

    /// Drops every chunk, releasing all memory at once.
    pub fn reset(&mut self) {
        self.chunks.get_mut().clear();
        *self.allocated.get_mut() = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_stable_across_growth() {
        let arena = Arena::new();
        let first = arena.alloc_slice(b"first");
        // Force many chunks.
        for i in 0..1000 {
            let data = vec![i as u8; 100];
            let s = arena.alloc_slice(&data);
            assert_eq!(s, &data[..]);
        }
        assert_eq!(first, b"first");
    }

    #[test]
    fn accounting_tracks_allocations() {
        let arena = Arena::new();
        arena.alloc_slice(&[0; 100]);
        arena.alloc_slice(&[0; 28]);
        assert_eq!(arena.allocated_bytes(), 128);
        assert!(arena.reserved_bytes() >= 128);
    }

    #[test]
    fn reset_reclaims_everything() {
        let mut arena = Arena::new();
        arena.alloc_slice(&[0; 4096]);
        arena.reset();
        assert_eq!(arena.allocated_bytes(), 0);
        assert_eq!(arena.reserved_bytes(), 0);
    }

    #[test]
    fn empty_slice_allocation_is_fine() {
        let arena = Arena::new();
        let s = arena.alloc_slice(&[]);
        assert!(s.is_empty());
    }
}
