//! Property tests over repository corruption: a `repo.naim` truncated
//! or bit-flipped at an *arbitrary* offset either opens (possibly with
//! recovery) or reports a typed corruption error — it never panics,
//! and a record that still resolves either fetches its original bytes
//! or fails with a typed error. No path may serve silently wrong data.

use cmo_naim::{ContentHash, MemStorage, NaimError, Repository, Storage, StorageFile};
use proptest::prelude::*;
use std::sync::Arc;

const REPO: &str = "repo.naim";

/// The payloads baked into the baseline file, index-flushed so both
/// the footer fast path and the scan path get exercised depending on
/// where the mutation lands.
fn payloads() -> Vec<Vec<u8>> {
    (0u8..6)
        .map(|i| {
            (0..40 + usize::from(i) * 17)
                .map(|j| (j as u8).wrapping_mul(31).wrapping_add(i))
                .collect()
        })
        .collect()
}

/// A well-formed repository image containing [`payloads`].
fn baseline() -> Vec<u8> {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let mut repo =
        Repository::create_backend(StorageFile::new(Arc::clone(&storage), REPO)).unwrap();
    for p in payloads() {
        repo.store(&p).unwrap();
    }
    repo.flush_index().unwrap();
    drop(repo);
    storage.read(REPO).unwrap()
}

/// Opens a repository over the given (possibly mutilated) bytes.
fn reopen(bytes: &[u8]) -> Result<Repository<StorageFile>, NaimError> {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    storage.write(REPO, bytes).unwrap();
    Repository::open_backend(StorageFile::new(storage, REPO))
}

/// The post-corruption contract: open recovers or fails typed; every
/// payload that still resolves fetches its original bytes or fails
/// typed. Anything else (a panic, an untyped error, wrong bytes) is a
/// bug.
fn assert_contract(bytes: &[u8]) {
    match reopen(bytes) {
        Ok(mut repo) => {
            for p in payloads() {
                let Some(handle) = repo.lookup(ContentHash::of(&p)) else {
                    continue; // lost to truncation/recovery: acceptable
                };
                match repo.fetch(handle) {
                    Ok(back) => assert_eq!(back, p, "fetch served corrupted bytes as good"),
                    Err(e) => assert!(
                        e.is_corruption() || matches!(e, NaimError::Repository(_)),
                        "untyped fetch error: {e:?}"
                    ),
                }
            }
        }
        Err(e) => assert!(
            e.is_corruption() || matches!(e, NaimError::Repository(_)),
            "untyped open error: {e:?}"
        ),
    }
}

proptest! {
    #[test]
    fn truncation_at_any_offset_recovers_or_reports(cut in any::<u32>()) {
        let base = baseline();
        let cut = cut as usize % (base.len() + 1);
        assert_contract(&base[..cut]);
    }

    #[test]
    fn bit_flip_at_any_offset_recovers_or_reports(pos in any::<u32>(), bit in 0u8..8) {
        let mut base = baseline();
        let pos = pos as usize % base.len();
        base[pos] ^= 1 << bit;
        assert_contract(&base);
    }

    #[test]
    fn garbage_tail_of_any_length_recovers_or_reports(
        tail in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut base = baseline();
        base.extend_from_slice(&tail);
        assert_contract(&base);
    }
}
