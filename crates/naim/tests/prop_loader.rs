//! Property tests: the loader preserves pool contents under arbitrary
//! interleavings of inserts, touches, mutations, and unloads, at any
//! budget and capability level.

use cmo_naim::{
    DecodeError, Decoder, Encoder, Loader, NaimConfig, NaimLevel, PoolKind, Relocatable,
};
use proptest::prelude::*;

#[derive(Clone, Debug, PartialEq)]
struct Payload(Vec<i64>);

impl Relocatable for Payload {
    fn compact(&self, enc: &mut Encoder) {
        enc.write_usize(self.0.len());
        for &v in &self.0 {
            enc.write_i64(v);
        }
    }
    fn uncompact(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = dec.read_usize()?;
        let mut v = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            v.push(dec.read_i64()?);
        }
        Ok(Payload(v))
    }
    fn expanded_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.0.capacity() * 8
    }
}

#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<i64>),
    Touch(usize),
    Mutate(usize, i64),
    Unload(usize),
    UnloadAll,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec(any::<i64>(), 0..64).prop_map(Op::Insert),
        any::<usize>().prop_map(Op::Touch),
        (any::<usize>(), any::<i64>()).prop_map(|(i, v)| Op::Mutate(i, v)),
        any::<usize>().prop_map(Op::Unload),
        Just(Op::UnloadAll),
    ]
}

fn arb_level() -> impl Strategy<Value = NaimLevel> {
    prop_oneof![
        Just(NaimLevel::Off),
        Just(NaimLevel::CompactIr),
        Just(NaimLevel::CompactAll),
        Just(NaimLevel::Offload),
    ]
}

proptest! {
    #[test]
    fn loader_is_a_faithful_store(
        ops in proptest::collection::vec(arb_op(), 1..60),
        budget in 256usize..16_384,
        level in arb_level(),
        cache in 0usize..8,
    ) {
        let config = NaimConfig {
            cache_pools: cache,
            ..NaimConfig::with_budget(budget).max_level(level)
        };
        let mut loader: Loader<Payload> = Loader::new(config);
        // The reference model: plain Vec of expected contents.
        let mut model: Vec<Vec<i64>> = Vec::new();
        let mut ids = Vec::new();

        for op in ops {
            match op {
                Op::Insert(data) => {
                    let kind = if model.len().is_multiple_of(3) {
                        PoolKind::SymTab
                    } else {
                        PoolKind::Ir
                    };
                    ids.push(loader.insert(Payload(data.clone()), kind));
                    model.push(data);
                }
                Op::Touch(i) if !ids.is_empty() => {
                    let i = i % ids.len();
                    let got = loader.get(ids[i]).expect("get");
                    prop_assert_eq!(&got.0, &model[i]);
                }
                Op::Mutate(i, v) if !ids.is_empty() => {
                    let i = i % ids.len();
                    loader.get_mut(ids[i]).expect("get_mut").0.push(v);
                    model[i].push(v);
                }
                Op::Unload(i) if !ids.is_empty() => {
                    let i = i % ids.len();
                    loader.unload(ids[i]).expect("unload");
                }
                Op::UnloadAll => loader.unload_all().expect("unload_all"),
                _ => {}
            }
        }
        // Final sweep: every pool readable with exactly its contents.
        for (i, &id) in ids.iter().enumerate() {
            prop_assert_eq!(&loader.get(id).expect("final get").0, &model[i]);
        }
        // Accounting sanity: nothing negative, census adds up.
        let (a, b, c, d) = loader.census();
        prop_assert_eq!(a + b + c + d, ids.len());
        prop_assert!(loader.memory().total() < usize::MAX / 2);
    }

    #[test]
    fn naim_off_never_compacts(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let mut loader: Loader<Payload> = Loader::new(NaimConfig::disabled());
        let mut ids = Vec::new();
        for op in ops {
            match op {
                Op::Insert(data) => ids.push(loader.insert(Payload(data), PoolKind::Ir)),
                Op::Unload(i) if !ids.is_empty() => {
                    let i = i % ids.len();
                    loader.unload(ids[i]).unwrap();
                }
                Op::UnloadAll => loader.unload_all().unwrap(),
                _ => {}
            }
        }
        prop_assert_eq!(loader.stats().compactions, 0);
        prop_assert_eq!(loader.stats().offload_writes, 0);
    }
}
