//! Eviction-edge tests for the loader's zero-copy fetch path: arena
//! recycling after LRU eviction waves, and fetch-after-evict of a
//! record that was corrupted on disk and then restored.

use cmo_naim::{
    DecodeError, Decoder, Encoder, Loader, MemStorage, NaimConfig, PoolKind, PoolState,
    Relocatable, Repository, Storage, StorageFile,
};
use cmo_telemetry::Telemetry;
use std::sync::Arc;

#[derive(Clone, Debug, PartialEq)]
struct Blob {
    payload: Vec<u64>,
}

impl Blob {
    fn of(seed: u64, len: usize) -> Self {
        Blob {
            payload: (0..len as u64).map(|i| seed * 1_000_003 + i).collect(),
        }
    }
}

impl Relocatable for Blob {
    fn compact(&self, enc: &mut Encoder) {
        enc.write_u64(self.payload.len() as u64);
        for &v in &self.payload {
            enc.write_u64(v);
        }
    }
    fn uncompact(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = dec.read_u64()? as usize;
        let mut payload = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            payload.push(dec.read_u64()?);
        }
        Ok(Blob { payload })
    }
    fn expanded_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.payload.capacity() * 8
    }
}

/// After an LRU eviction wave offloads pools and later fetches bring
/// them back, the enforcement sweep that follows returns the fetch
/// arena to the allocator: `arena` trace events appear, a `mmap`
/// event announces the first zero-copy fetch, and the served-byte
/// counter is back at zero once the last sweep ends.
#[test]
fn arena_recycles_after_lru_eviction() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let backend = StorageFile::new(Arc::clone(&storage), "repo.naim");
    let repo = Repository::create_backend(backend).expect("create repo");
    let config = NaimConfig {
        cache_pools: 0,
        ..NaimConfig::with_budget(2048)
    };
    let tel = Telemetry::enabled();
    let mut loader: Loader<Blob, StorageFile> = Loader::with_repository(config, repo);
    loader.set_telemetry(tel.clone());

    // Pressure far past the budget: every unload triggers a sweep and
    // the tail of the LRU is offloaded to the repository.
    let ids: Vec<_> = (0..48)
        .map(|i| {
            let id = loader.insert(Blob::of(i, 300), PoolKind::Ir);
            loader.unload(id).expect("unload");
            id
        })
        .collect();
    assert!(
        loader.stats().offload_writes > 0,
        "pressure never offloaded"
    );

    // Rehydrate everything; each fetch is served through the storage
    // view (MemStorage hands out copied views) and charged to the
    // fetch work clock.
    for (i, &id) in ids.iter().enumerate() {
        assert_eq!(loader.get(id).expect("get"), &Blob::of(i as u64, 300));
        loader.unload(id).expect("unload again");
    }
    let stats = loader.stats();
    assert!(stats.offload_reads > 0, "nothing was fetched back");
    assert!(stats.fetch_work_units > 0, "fetches were not charged");
    assert!(
        stats.fetch_work_units < stats.work_units,
        "fetch work is a component of total work"
    );

    // The final unload ran an enforcement sweep, so whatever the last
    // fetches accumulated has been recycled.
    assert_eq!(loader.repository().arena_served(), 0);

    let trace = tel.render_trace();
    assert!(
        trace.contains("\"event\":\"arena\",\"action\":\"recycle\""),
        "no arena recycle event in trace"
    );
    assert_eq!(
        trace.matches("\"event\":\"mmap\"").count(),
        1,
        "zero-copy announcement must fire exactly once per loader"
    );
}

/// A record corrupted on disk after eviction fails its CRC on fetch —
/// typed error, no stats movement — and fetches cleanly once the
/// original byte is restored.
#[test]
fn fetch_after_evict_of_corrupt_then_restored_record() {
    let dir = std::env::temp_dir().join(format!("cmo-loader-edges-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let repo_path = dir.join("repo.naim");
    let repo = Repository::create(&repo_path).expect("create repo");

    // A budget so small every compacted pool is pushed to disk.
    let config = NaimConfig {
        cache_pools: 0,
        ..NaimConfig::with_budget(16)
    };
    let mut loader: Loader<Blob, std::fs::File> = Loader::with_repository(config, repo);
    let victim_blob = Blob::of(3, 300);
    let ids: Vec<_> = (0..8)
        .map(|i| {
            let id = loader.insert(Blob::of(i, 300), PoolKind::Ir);
            loader.unload(id).expect("unload");
            id
        })
        .collect();
    let victim = ids[3];
    assert_eq!(loader.state(victim), PoolState::Offloaded);

    // Locate the victim's image inside the repository file by its
    // encoded bytes, and flip one byte in the middle of the payload.
    let mut enc = Encoder::new();
    victim_blob.compact(&mut enc);
    let image = enc.into_bytes();
    let file = std::fs::read(&repo_path).expect("read repo file");
    let at = file
        .windows(image.len())
        .position(|w| w == image.as_slice())
        .expect("victim image not found in repository file");
    let flip = at + image.len() / 2;
    let original = file[flip];
    let write_byte = |b: u8| {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .open(&repo_path)
            .expect("open for corruption");
        f.seek(SeekFrom::Start(flip as u64)).expect("seek");
        f.write_all(&[b]).expect("write");
    };
    write_byte(original ^ 0xFF);

    let reads_before = loader.repository().stats().reads;
    let err = loader
        .get(victim)
        .expect_err("corrupt record must not decode");
    assert!(
        format!("{err}").to_lowercase().contains("checksum")
            || format!("{err:?}").contains("Checksum"),
        "unexpected error for corrupt record: {err}"
    );
    assert_eq!(
        loader.state(victim),
        PoolState::Offloaded,
        "slot must stay offloaded"
    );
    assert_eq!(
        loader.repository().stats().reads,
        reads_before,
        "a failed fetch must not count as a read"
    );

    // Restore the byte: the very same handle now fetches cleanly.
    write_byte(original);
    assert_eq!(loader.get(victim).expect("restored fetch"), &victim_blob);

    let _ = std::fs::remove_dir_all(&dir);
}
