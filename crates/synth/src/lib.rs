#![warn(missing_docs)]
//! Synthetic application generator.
//!
//! The paper evaluates on the SPECint95 suite plus three proprietary
//! multi-million-line MCAD applications (§2, §6.4: "large programs
//! like Mcad1, Mcad2, and Mcad3 are hard to come by"). They are not
//! available, so this crate generates MLC applications whose *shape*
//! matches what the paper's techniques exploit:
//!
//! * many separately compiled modules with a deep, acyclic,
//!   cross-module call web (every routine reachable from `main`);
//! * Zipf-skewed workloads — a few entry points take most of the
//!   execution, so ~20 % of the code covers ~all the runtime (the
//!   premise of selectivity, Figure 6);
//! * hot call sites passing constant arguments, read-only exported
//!   configuration globals, and write-only logging globals (fodder for
//!   inlining, IP constant propagation, and dead-store removal);
//! * biased branches (fodder for profile-guided layout);
//! * distinct *training* and *reference* inputs whose hot sets overlap
//!   but differ (§6.2's training-set methodology);
//! * mixed "languages": some modules are integer-flavored C-style
//!   code, others float-flavored Fortran-style code (Mcad2 mixes C,
//!   C++, and Fortran — HLO must not care).
//!
//! Generation is fully deterministic from the seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

mod presets;
mod render;
mod workload;

pub use presets::{mcad_preset, spec_preset, spec_suite, SPEC_NAMES};
pub use workload::make_input;

/// Parameters for one synthetic application.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSpec {
    /// Application name.
    pub name: String,
    /// RNG seed; everything derives deterministically from it.
    pub seed: u64,
    /// Number of modules.
    pub modules: usize,
    /// Routines per module (inclusive range).
    pub routines_per_module: (usize, usize),
    /// Arithmetic statements per routine body (inclusive range).
    pub stmts_per_routine: (usize, usize),
    /// Fraction of call edges that cross module boundaries.
    pub cross_module_frac: f64,
    /// Zipf exponent of the workload skew over entry points (higher =
    /// more concentrated hot spot).
    pub zipf_exponent: f64,
    /// Iterations of the main dispatch loop per run.
    pub workload_iters: u64,
    /// Fraction of entry-point hotness ranks that differ between the
    /// training and reference inputs (0 = identical workloads, the ISV
    /// methodology; higher = §6.2's stale-training risk).
    pub train_divergence: f64,
    /// Fraction of modules generated float-flavored ("Fortran").
    pub float_module_frac: f64,
    /// Call-tree depth bound (levels).
    pub levels: usize,
}

impl SynthSpec {
    /// A small, fast default spec (useful in tests).
    #[must_use]
    pub fn small(name: &str, seed: u64) -> Self {
        SynthSpec {
            name: name.to_owned(),
            seed,
            modules: 4,
            routines_per_module: (6, 10),
            stmts_per_routine: (3, 8),
            cross_module_frac: 0.4,
            zipf_exponent: 1.2,
            workload_iters: 500,
            train_divergence: 0.0,
            float_module_frac: 0.2,
            levels: 5,
        }
    }

    /// Returns the spec resized to `n` modules (used by the Figure 4
    /// increasing-prefix experiment; the app is regenerated
    /// self-contained at each size).
    #[must_use]
    pub fn with_modules(mut self, n: usize) -> Self {
        self.modules = n;
        self
    }
}

/// One generated application.
#[derive(Debug, Clone)]
pub struct SynthApp {
    /// Application name.
    pub name: String,
    /// `(module name, MLC source)` pairs, `main` module first.
    pub modules: Vec<(String, String)>,
    /// Training workload input.
    pub train_input: Vec<i64>,
    /// Reference (benchmark) workload input.
    pub ref_input: Vec<i64>,
    /// Total source lines across all modules.
    pub total_lines: u64,
}

/// Internal model of one routine before rendering.
#[derive(Debug, Clone)]
pub(crate) struct RoutineModel {
    #[allow(dead_code)]
    pub module: usize,
    pub index: usize,
    pub level: usize,
    pub arity: usize,
    pub stmts: usize,
    /// Calls: (target module, target routine index, constant arg mask).
    pub calls: Vec<CallModel>,
    pub exported: bool,
    /// Reads another module's exported config global.
    pub reads_foreign_cfg: Option<usize>,
}

#[derive(Debug, Clone)]
pub(crate) struct CallModel {
    #[allow(dead_code)]
    pub module: usize,
    pub index: usize,
    /// Per-argument: `Some(k)` passes the literal constant `k`
    /// (constant-propagation fodder), `None` passes a live expression.
    pub const_args: Vec<Option<i64>>,
    /// Guarded by a biased conditional (taken ~15/16 of the time).
    pub biased_guard: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct ModuleModel {
    pub routines: Vec<RoutineModel>,
    pub float_flavored: bool,
    pub array_len: u32,
}

/// Generates the application for `spec`.
///
/// # Panics
///
/// Panics if the spec is degenerate (zero modules or routines).
#[must_use]
pub fn generate(spec: &SynthSpec) -> SynthApp {
    assert!(spec.modules > 0, "spec needs at least one module");
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x5ee1);

    // --- Structure: modules, routines, levels. ---
    let mut modules: Vec<ModuleModel> = Vec::with_capacity(spec.modules);
    for m in 0..spec.modules {
        let k = rng.gen_range(
            spec.routines_per_module.0..=spec.routines_per_module.1.max(spec.routines_per_module.0),
        );
        let float_flavored = rng.gen_bool(spec.float_module_frac.clamp(0.0, 1.0));
        let mut routines = Vec::with_capacity(k);
        for r in 0..k {
            let level = if r == 0 {
                0
            } else {
                1 + (r - 1) * (spec.levels - 1) / k.max(2)
            };
            routines.push(RoutineModel {
                module: m,
                index: r,
                level,
                arity: rng.gen_range(1..=3),
                stmts: rng.gen_range(
                    spec.stmts_per_routine.0
                        ..=spec.stmts_per_routine.1.max(spec.stmts_per_routine.0),
                ),
                calls: Vec::new(),
                exported: r == 0, // entries are exported; more later
                reads_foreign_cfg: None,
            });
        }
        modules.push(ModuleModel {
            routines,
            float_flavored,
            array_len: rng.gen_range(8..=64),
        });
    }

    // Flat index of all routines for wiring.
    let all: Vec<(usize, usize, usize)> = modules
        .iter()
        .enumerate()
        .flat_map(|(m, mm)| mm.routines.iter().map(move |r| (m, r.index, r.level)))
        .collect();

    // --- Call wiring: acyclic by level, bounded fan-out, tree-ish
    //     fan-in. Preferring the least-called candidate keeps most
    //     routines dominated by one or two callers (the shape of real
    //     call graphs), with shared utilities emerging only where the
    //     level structure forces them.
    let mut fan_in = vec![0usize; all.len()];
    let flat_index = {
        let mut bases = Vec::with_capacity(modules.len());
        let mut idx = 0;
        for model in &modules {
            bases.push(idx);
            idx += model.routines.len();
        }
        move |m: usize, r: usize| bases[m] + r
    };
    // The last ~10% of modules are shared "library" modules, callable
    // from anywhere; other cross-module calls stay within a subsystem
    // neighbourhood (ring distance ≤ 2). This reproduces the locality
    // structure of large layered applications: subsystem-local hot
    // paths plus a shared utility layer hot from everywhere (the
    // clustering winner).
    let n_library = (spec.modules / 10).max(usize::from(spec.modules >= 4));
    let lib_start = spec.modules - n_library;
    for &(m, r, level) in &all {
        let n_calls = [1usize, 1, 2, 2, 3, 3][rng.gen_range(0..6)];
        for _ in 0..n_calls {
            let cross = rng.gen_bool(spec.cross_module_frac.clamp(0.0, 1.0));
            let to_library = cross && lib_start > 0 && rng.gen_bool(0.3);
            let in_scope = |cm: usize| -> bool {
                if !cross {
                    return cm == m;
                }
                if to_library {
                    return cm >= lib_start && cm != m;
                }
                if cm == m {
                    return false;
                }
                let dist = (cm as i64 - m as i64).rem_euclid(spec.modules as i64);
                let dist = dist.min(spec.modules as i64 - dist);
                dist <= 2
            };
            let mut candidates: Vec<&(usize, usize, usize)> = all
                .iter()
                .filter(|&&(cm, _, cl)| cl > level && in_scope(cm))
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let min_in = candidates
                .iter()
                .map(|&&(cm, cr, _)| fan_in[flat_index(cm, cr)])
                .min()
                .expect("candidates nonempty");
            candidates.retain(|&&(cm, cr, _)| fan_in[flat_index(cm, cr)] == min_in);
            let &&(cm, cr, _) = &candidates[rng.gen_range(0..candidates.len())];
            fan_in[flat_index(cm, cr)] += 1;
            let arity = modules[cm].routines[cr].arity;
            let const_args: Vec<Option<i64>> = (0..arity)
                .map(|_| rng.gen_bool(0.45).then(|| rng.gen_range(0..3i64)))
                .collect();
            modules[m].routines[r].calls.push(CallModel {
                module: cm,
                index: cr,
                const_args,
                biased_guard: rng.gen_bool(0.5),
            });
        }
        if rng.gen_bool(0.3) && spec.modules > 1 {
            let other = (m + 1 + rng.gen_range(0..spec.modules - 1)) % spec.modules;
            modules[m].routines[r].reads_foreign_cfg = Some(other);
        }
    }

    // --- Reachability: every non-entry routine gets at least one
    //     caller at a strictly lower level. ---
    let mut callee_seen = vec![false; all.len()];
    let module_base: Vec<usize> = {
        let mut bases = Vec::with_capacity(modules.len());
        let mut idx = 0;
        for model in &modules {
            bases.push(idx);
            idx += model.routines.len();
        }
        bases
    };
    let flat_of = move |m: usize, r: usize| -> usize { module_base[m] + r };
    let call_list: Vec<(usize, usize)> = modules
        .iter()
        .flat_map(|mm| {
            mm.routines
                .iter()
                .flat_map(|r| r.calls.iter().map(|c| (c.module, c.index)))
        })
        .collect();
    for (cm, cr) in call_list {
        callee_seen[flat_of(cm, cr)] = true;
    }
    for &(m, r, level) in &all {
        if level == 0 || callee_seen[flat_of(m, r)] {
            continue;
        }
        // Deterministic rescue caller: any routine at a lower level.
        let lower: Vec<&(usize, usize, usize)> =
            all.iter().filter(|&&(_, _, cl)| cl < level).collect();
        let &&(pm, pr, _) = &lower[rng.gen_range(0..lower.len())];
        let arity = modules[m].routines[r].arity;
        let const_args = vec![None; arity];
        modules[pm].routines[pr].calls.push(CallModel {
            module: m,
            index: r,
            const_args,
            biased_guard: false,
        });
    }

    // --- Linkage: exported iff entry or called cross-module. ---
    let cross_called: Vec<(usize, usize)> = modules
        .iter()
        .enumerate()
        .flat_map(|(m, mm)| {
            mm.routines.iter().flat_map(move |r| {
                r.calls
                    .iter()
                    .filter(move |c| c.module != m)
                    .map(|c| (c.module, c.index))
            })
        })
        .collect();
    for (cm, cr) in cross_called {
        modules[cm].routines[cr].exported = true;
    }

    // --- Render sources. ---
    let mut out_modules = Vec::with_capacity(spec.modules + 1);
    // Every module's entry routine is a dispatch target, so all
    // modules are live and the Zipf skew decides hotness.
    let n_entries = spec.modules;
    out_modules.push((
        "main".to_owned(),
        render::render_main(spec, &modules, n_entries),
    ));
    for (m, model) in modules.iter().enumerate() {
        out_modules.push((
            format!("m{m}"),
            render::render_module(spec, &modules, m, model),
        ));
    }
    let total_lines: u64 = out_modules
        .iter()
        .map(|(_, src)| src.lines().count() as u64)
        .sum();

    // --- Workloads. ---
    let train_input = workload::make_input(spec, n_entries, true);
    let ref_input = workload::make_input(spec, n_entries, false);

    SynthApp {
        name: spec.name.clone(),
        modules: out_modules,
        train_input,
        ref_input,
        total_lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmo_frontend::compile_module;
    use cmo_ir::link_objects;

    #[test]
    fn generated_app_compiles_and_links() {
        let app = generate(&SynthSpec::small("t", 42));
        let objs: Vec<_> = app
            .modules
            .iter()
            .map(|(name, src)| {
                compile_module(name, src)
                    .unwrap_or_else(|e| panic!("module {name} failed: {e}\n--- source ---\n{src}"))
            })
            .collect();
        let unit = link_objects(objs).expect("must link");
        cmo_ir::validate::validate_unit(&unit.program, &unit.bodies).unwrap();
        assert!(unit.program.main_routine().is_some());
        assert!(app.total_lines > 50);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&SynthSpec::small("t", 7));
        let b = generate(&SynthSpec::small("t", 7));
        assert_eq!(a.modules, b.modules);
        assert_eq!(a.ref_input, b.ref_input);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthSpec::small("t", 1));
        let b = generate(&SynthSpec::small("t", 2));
        assert_ne!(a.modules, b.modules);
    }

    #[test]
    fn train_and_ref_share_length_but_differ_when_divergent() {
        let mut spec = SynthSpec::small("t", 3);
        spec.train_divergence = 0.5;
        let app = generate(&spec);
        assert_eq!(app.train_input.len(), app.ref_input.len());
        assert_ne!(app.train_input, app.ref_input);

        spec.train_divergence = 0.0;
        let same = generate(&spec);
        assert_eq!(same.train_input, same.ref_input);
    }

    #[test]
    fn all_routines_reachable_from_main() {
        let app = generate(&SynthSpec::small("t", 11));
        let objs: Vec<_> = app
            .modules
            .iter()
            .map(|(n, s)| compile_module(n, s).unwrap())
            .collect();
        let unit = link_objects(objs).unwrap();
        // Walk the call graph from main.
        let main = unit.program.main_routine().unwrap();
        let mut seen = vec![false; unit.bodies.len()];
        let mut work = vec![main];
        while let Some(r) = work.pop() {
            if seen[r.index()] {
                continue;
            }
            seen[r.index()] = true;
            for block in &unit.bodies[r.index()].blocks {
                for instr in &block.instrs {
                    if let cmo_ir::Instr::Call { callee, .. } = instr {
                        work.push(callee.id());
                    }
                }
            }
        }
        let unreachable = seen.iter().filter(|&&s| !s).count();
        assert_eq!(unreachable, 0, "dead generated routines");
    }

    #[test]
    fn module_count_scales_lines() {
        let small = generate(&SynthSpec::small("t", 5).with_modules(2));
        let large = generate(&SynthSpec::small("t", 5).with_modules(10));
        assert!(large.total_lines > small.total_lines * 2);
    }
}
