//! Rendering the structural model to MLC source text.

use crate::{ModuleModel, SynthSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::fmt::Write as _;

fn routine_name(m: usize, r: usize) -> String {
    format!("m{m}_r{r}")
}

fn params_decl(arity: usize) -> String {
    (0..arity)
        .map(|i| format!("p{i}: int"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders the module defining `main` with its dispatch loop.
pub(crate) fn render_main(spec: &SynthSpec, modules: &[ModuleModel], n_entries: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "// {}: synthetic driver module", spec.name);
    #[allow(clippy::needless_range_loop)]
    for m in 0..n_entries {
        let arity = modules[m].routines[0].arity;
        let _ = writeln!(
            s,
            "extern fn {}({}) -> int;",
            routine_name(m, 0),
            params_decl(arity)
        );
    }
    let _ = writeln!(s, "fn main() -> int {{");
    let _ = writeln!(s, "    var n: int = input();");
    let _ = writeln!(s, "    var it: int = 0;");
    let _ = writeln!(s, "    var acc: int = 0;");
    let _ = writeln!(s, "    while (it < n) {{");
    let _ = writeln!(s, "        var sel: int = input();");
    #[allow(clippy::needless_range_loop)]
    for m in 0..n_entries {
        let arity = modules[m].routines[0].arity;
        let mut args = vec!["it % 17".to_owned()];
        for k in 1..arity {
            args.push(format!("{}", (m + k) % 5));
        }
        let prefix = if m == 0 { "if" } else { "else if" };
        let _ = writeln!(
            s,
            "        {prefix} (sel == {m}) {{ acc = acc + {}({}); }}",
            routine_name(m, 0),
            args.join(", ")
        );
    }
    let _ = writeln!(s, "        else {{ acc = acc + 1; }}");
    let _ = writeln!(s, "        it = it + 1;");
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "    output(acc);");
    let _ = writeln!(s, "    return acc % 1000000;");
    let _ = writeln!(s, "}}");
    s
}

/// Renders one library module.
pub(crate) fn render_module(
    spec: &SynthSpec,
    modules: &[ModuleModel],
    m: usize,
    model: &ModuleModel,
) -> String {
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x9e37 ^ (m as u64) << 20);
    let mut s = String::new();
    let lang = if model.float_flavored { "f77" } else { "c" };
    let _ = writeln!(s, "// module m{m} ({lang}-flavored)");

    // Module globals: read-only config (IP const-prop fodder),
    // internal state, write-only log (dead-store fodder), data table.
    let cfg_val = rng.gen_range(1..100);
    let _ = writeln!(s, "global m{m}_cfg: int = {cfg_val};");
    let _ = writeln!(s, "static m{m}_state: int = 0;");
    let _ = writeln!(s, "global m{m}_log: int = 0;");
    let len = model.array_len;
    let init: Vec<String> = (0..4.min(len))
        .map(|i| format!("{}", (i * 3 + 1) % 17))
        .collect();
    let _ = writeln!(s, "static m{m}_tab: int[{len}] = [{}];", init.join(", "));

    // Extern declarations for cross-module references.
    let mut extern_fns: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut extern_cfgs: BTreeSet<usize> = BTreeSet::new();
    for r in &model.routines {
        for c in &r.calls {
            if c.module != m {
                extern_fns.insert((c.module, c.index));
            }
        }
        if let Some(k) = r.reads_foreign_cfg {
            if k != m {
                extern_cfgs.insert(k);
            }
        }
    }
    for (cm, cr) in &extern_fns {
        let arity = modules[*cm].routines[*cr].arity;
        let _ = writeln!(
            s,
            "extern fn {}({}) -> int;",
            routine_name(*cm, *cr),
            params_decl(arity)
        );
    }
    for k in &extern_cfgs {
        let _ = writeln!(s, "extern global m{k}_cfg: int;");
    }
    let _ = writeln!(s);

    for r in &model.routines {
        let kw = if r.exported { "fn" } else { "static fn" };
        let _ = writeln!(
            s,
            "{kw} {}({}) -> int {{",
            routine_name(m, r.index),
            params_decl(r.arity)
        );
        let trip = rng.gen_range(1..4);
        if model.float_flavored {
            let _ = writeln!(s, "    var f: float = float(p0) * 1.5 + 0.25;");
            let _ = writeln!(s, "    var i: int = 0;");
            let _ = writeln!(s, "    while (i < {trip}) {{");
            for k in 0..r.stmts {
                match (k + rng.gen_range(0..4)) % 4 {
                    0 => {
                        let c = rng.gen_range(2..9);
                        let _ = writeln!(s, "        f = f * 1.0625 + float(i * {c});");
                    }
                    1 => {
                        let _ = writeln!(s, "        f = f - float(i) / 3.5;");
                    }
                    2 => {
                        let a = rng.gen_range(2..9);
                        let _ = writeln!(s, "        f = f + (2.25 * {a}.0 - 1.5);");
                    }
                    _ => {
                        let _ = writeln!(s, "        if (f > 1000000.0) {{ f = f / 2.0; }}");
                    }
                }
            }
            let _ = writeln!(s, "        i = i + 1;");
            let _ = writeln!(s, "    }}");
            let _ = writeln!(s, "    var acc: int = int(f) % 32768;");
        } else {
            let mut acc_init = "p0".to_owned();
            for k in 1..r.arity {
                acc_init = format!("{acc_init} + p{k}");
            }
            let _ = writeln!(s, "    var acc: int = {acc_init};");
            let _ = writeln!(s, "    var i: int = 0;");
            let _ = writeln!(s, "    m{m}_state = m{m}_state + 1;");
            let last = r.arity - 1;
            let k1 = rng.gen_range(1..50);
            let k2 = rng.gen_range(2..48);
            let _ = writeln!(s, "    while (i < {trip}) {{");
            // A mode switch on the last parameter *inside* the hot
            // loop, with an expensive general arm: when inlining
            // propagates a constant argument, the switch folds and the
            // division disappears — the paper's
            // inlining-enables-optimization effect.
            let _ = writeln!(s, "        if (p{last} == 0) {{ acc = acc + {k1}; }}");
            let _ = writeln!(
                s,
                "        else {{ acc = acc + (acc / (p{last} + {k2})) % ({k1} + 1); }}"
            );
            for k in 0..r.stmts {
                match (k + rng.gen_range(0..5)) % 5 {
                    0 => {
                        let a = rng.gen_range(2..13);
                        let b = rng.gen_range(3..31);
                        let _ = writeln!(s, "        acc = acc + (i * {a} + p0) % {b};");
                    }
                    1 => {
                        let _ = writeln!(s, "        acc = acc + m{m}_tab[acc % {len}];");
                    }
                    2 => {
                        let _ = writeln!(s, "        m{m}_tab[i % {len}] = acc % 255;");
                    }
                    3 => {
                        let c = rng.gen_range(1..6);
                        let _ = writeln!(s, "        acc = (acc * {c} + i) % 1048576;");
                    }
                    _ => {
                        // Manifest-constant arithmetic (C macros and
                        // named constants): folds at +O2, executes
                        // mul/div at +O1.
                        let a = rng.gen_range(3..20);
                        let b = rng.gen_range(3..20);
                        let c = rng.gen_range(5..40);
                        let _ = writeln!(s, "        acc = acc + {a} * {b} % {c};");
                    }
                }
            }
            let _ = writeln!(s, "        i = i + 1;");
            let _ = writeln!(s, "    }}");
        }
        let _ = writeln!(s, "    acc = acc + m{m}_cfg;");
        if let Some(k) = r.reads_foreign_cfg {
            let _ = writeln!(s, "    acc = acc + m{k}_cfg;");
        }
        let _ = writeln!(s, "    m{m}_log = acc;");
        for c in &r.calls {
            let callee = routine_name(c.module, c.index);
            let args: Vec<String> = c
                .const_args
                .iter()
                .enumerate()
                .map(|(i, ca)| match ca {
                    Some(k) => format!("{k}"),
                    None => format!("acc % {} + {}", 7 + i, i + 1),
                })
                .collect();
            let call = format!("acc = acc + {callee}({});", args.join(", "));
            if c.biased_guard {
                // Biased ~15/16 taken: layout fodder.
                let _ = writeln!(s, "    if (acc % 16 != 0) {{ {call} }}");
            } else {
                let _ = writeln!(s, "    {call}");
            }
        }
        let _ = writeln!(s, "    return acc % 65536;");
        let _ = writeln!(s, "}}");
        let _ = writeln!(s);
    }
    s
}
