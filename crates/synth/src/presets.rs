//! Presets mirroring the paper's benchmark suite, scaled ~100× down.
//!
//! Figure 1 evaluates the eight SPECint95 integer benchmarks (126.gcc
//! ≈ 120 K lines being the largest) and three MCAD applications: Mcad1
//! ≈ 5 M lines of C, Mcad2 ≈ 6.5 M mixed C/Fortran/C++, Mcad3 ≈ 9 M
//! C++. The presets here reproduce the *relative* sizes and characters
//! (language mix, module counts, workload skew) at a scale a laptop
//! compiles in seconds; the paper's absolute line counts are noted per
//! preset.

use crate::SynthSpec;

/// The SPECint95 benchmark names in Figure 1 order.
pub const SPEC_NAMES: [&str; 8] = [
    "go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl", "vortex",
];

fn base(name: &str, seed: u64) -> SynthSpec {
    SynthSpec {
        name: name.to_owned(),
        seed,
        modules: 4,
        routines_per_module: (8, 14),
        stmts_per_routine: (2, 6),
        cross_module_frac: 0.45,
        zipf_exponent: 1.2,
        workload_iters: 1200,
        train_divergence: 0.15,
        float_module_frac: 0.1,
        levels: 5,
    }
}

/// A SPECint95-like preset by benchmark name.
///
/// # Panics
///
/// Panics on a name not in [`SPEC_NAMES`].
#[must_use]
pub fn spec_preset(name: &str) -> SynthSpec {
    match name {
        // 029.go: one big hand-written evaluator, few modules, heavy
        // integer computation, poor branch predictability.
        "go" => SynthSpec {
            modules: 3,
            routines_per_module: (14, 20),
            stmts_per_routine: (6, 14),
            zipf_exponent: 0.8,
            ..base("go", 0x60)
        },
        // 124.m88ksim: CPU simulator, central dispatch loop.
        "m88ksim" => SynthSpec {
            modules: 5,
            zipf_exponent: 1.6,
            ..base("m88ksim", 0x88)
        },
        // 126.gcc: the largest SPEC program (~120 K lines), many
        // modules, flat-ish profile.
        "gcc" => SynthSpec {
            modules: 10,
            routines_per_module: (12, 22),
            stmts_per_routine: (4, 12),
            zipf_exponent: 0.9,
            ..base("gcc", 0xcc)
        },
        // 129.compress: tiny kernel, extreme hot spot.
        "compress" => SynthSpec {
            modules: 2,
            routines_per_module: (5, 8),
            zipf_exponent: 2.2,
            ..base("compress", 0xc0)
        },
        // 130.li: lisp interpreter, deep small-routine call chains —
        // the classic inlining winner.
        "li" => SynthSpec {
            modules: 3,
            routines_per_module: (10, 16),
            stmts_per_routine: (2, 5),
            zipf_exponent: 1.5,
            levels: 7,
            ..base("li", 0x11)
        },
        // 132.ijpeg: image codec, float-heavy inner kernels.
        "ijpeg" => SynthSpec {
            modules: 5,
            float_module_frac: 0.6,
            zipf_exponent: 1.7,
            ..base("ijpeg", 0x19)
        },
        // 134.perl: interpreter, mixed profile.
        "perl" => SynthSpec {
            modules: 6,
            routines_per_module: (10, 18),
            zipf_exponent: 1.3,
            ..base("perl", 0x9e)
        },
        // 147.vortex: object database, many cross-module calls.
        "vortex" => SynthSpec {
            modules: 7,
            routines_per_module: (10, 18),
            cross_module_frac: 0.65,
            zipf_exponent: 1.4,
            ..base("vortex", 0x40)
        },
        other => panic!("unknown SPEC preset `{other}`"),
    }
}

/// All eight SPEC-like specs in Figure 1 order.
#[must_use]
pub fn spec_suite() -> Vec<SynthSpec> {
    SPEC_NAMES.iter().map(|n| spec_preset(n)).collect()
}

/// An MCAD-like preset.
///
/// * `mcad1`: ~5 M lines of C in the paper — here the largest
///   C-flavored app, strong hot spot (the 71 % headline program).
/// * `mcad2`: ~6.5 M mixed C/Fortran/C++ — here a heavy float-module
///   mix.
/// * `mcad3`: ~9 M lines of C++ — here the largest app overall.
///
/// `scale` multiplies the module count (1.0 = the default benchmark
/// scale; the Figure 4 sweep regenerates at increasing scales).
///
/// # Panics
///
/// Panics on an unknown name.
#[must_use]
pub fn mcad_preset(name: &str, scale: f64) -> SynthSpec {
    let spec = match name {
        "mcad1" => SynthSpec {
            modules: 48,
            routines_per_module: (14, 26),
            stmts_per_routine: (2, 6),
            cross_module_frac: 0.5,
            zipf_exponent: 2.2,
            workload_iters: 2500,
            train_divergence: 0.0, // trained and benchmarked on the same data (§2)
            float_module_frac: 0.05,
            levels: 6,
            ..base("mcad1", 0x3CAD1)
        },
        "mcad2" => SynthSpec {
            modules: 56,
            routines_per_module: (12, 24),
            float_module_frac: 0.45,
            zipf_exponent: 1.5,
            workload_iters: 2500,
            train_divergence: 0.0,
            levels: 6,
            ..base("mcad2", 0x3CAD2)
        },
        "mcad3" => SynthSpec {
            modules: 72,
            routines_per_module: (14, 24),
            float_module_frac: 0.25,
            zipf_exponent: 1.4,
            workload_iters: 2000,
            train_divergence: 0.0,
            levels: 6,
            ..base("mcad3", 0x3CAD3)
        },
        other => panic!("unknown MCAD preset `{other}`"),
    };
    let modules = ((spec.modules as f64) * scale).round().max(1.0) as usize;
    SynthSpec { modules, ..spec }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn every_spec_preset_generates() {
        for spec in spec_suite() {
            let app = generate(&spec);
            assert!(app.modules.len() >= 3, "{}", spec.name);
            assert!(app.total_lines > 100, "{}", spec.name);
        }
    }

    #[test]
    fn relative_sizes_match_the_paper() {
        let gcc = generate(&spec_preset("gcc"));
        let compress = generate(&spec_preset("compress"));
        let mcad1 = generate(&mcad_preset("mcad1", 1.0));
        let mcad3 = generate(&mcad_preset("mcad3", 1.0));
        assert!(gcc.total_lines > 3 * compress.total_lines);
        assert!(mcad1.total_lines > 3 * gcc.total_lines);
        assert!(mcad3.total_lines > mcad1.total_lines);
    }

    #[test]
    fn scaling_grows_mcad() {
        let half = generate(&mcad_preset("mcad1", 0.25));
        let full = generate(&mcad_preset("mcad1", 1.0));
        assert!(full.total_lines > 2 * half.total_lines);
    }

    #[test]
    fn mcad2_is_mixed_language() {
        let app = generate(&mcad_preset("mcad2", 0.5));
        let f77 = app
            .modules
            .iter()
            .filter(|(_, src)| src.contains("f77-flavored"))
            .count();
        let c = app
            .modules
            .iter()
            .filter(|(_, src)| src.contains("c-flavored"))
            .count();
        assert!(f77 >= 3 && c >= 3, "f77={f77} c={c}");
    }
}
