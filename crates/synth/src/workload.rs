//! Workload synthesis: Zipf-skewed entry selection with controllable
//! train/reference divergence.

use crate::SynthSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds an input stream: `[iterations, selector, selector, ...]`.
///
/// Selectors choose among `n_entries` dispatch targets with a Zipf
/// distribution over a hotness permutation. The *reference* input uses
/// the base permutation; the *training* input perturbs it by swapping
/// `train_divergence × n_entries` rank pairs, modeling training sets
/// that "will not exercise parts of the applications that are
/// important to some users" (§6.2). With zero divergence the two
/// streams are identical (the paper's ISV methodology: trained and
/// benchmarked on the same data).
#[must_use]
pub fn make_input(spec: &SynthSpec, n_entries: usize, train: bool) -> Vec<i64> {
    let n = n_entries.max(1);
    let mut perm_rng = SmallRng::seed_from_u64(spec.seed ^ 0xbeef);
    // Base hotness permutation: perm[rank] = entry index.
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = perm_rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    if train && spec.train_divergence > 0.0 {
        let swaps = ((n as f64) * spec.train_divergence).ceil() as usize;
        let mut div_rng = SmallRng::seed_from_u64(spec.seed ^ 0x7ea1);
        for _ in 0..swaps {
            let a = div_rng.gen_range(0..n);
            let b = div_rng.gen_range(0..n);
            perm.swap(a, b);
        }
    }
    // Zipf cumulative weights over ranks.
    let s = spec.zipf_exponent.max(0.0);
    let weights: Vec<f64> = (0..n).map(|j| 1.0 / ((j + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cumulative.push(acc);
    }

    // Sampling is seeded identically for train and reference so that
    // zero divergence yields byte-identical streams.
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0xda7a);
    let mut input = Vec::with_capacity(spec.workload_iters as usize + 1);
    input.push(spec.workload_iters as i64);
    for _ in 0..spec.workload_iters {
        let x: f64 = rng.gen();
        let rank = cumulative.partition_point(|&c| c < x).min(n - 1);
        input.push(perm[rank] as i64);
    }
    input
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(divergence: f64, zipf: f64) -> SynthSpec {
        SynthSpec {
            train_divergence: divergence,
            zipf_exponent: zipf,
            workload_iters: 10_000,
            ..SynthSpec::small("w", 99)
        }
    }

    #[test]
    fn stream_shape() {
        let input = make_input(&spec(0.0, 1.2), 8, false);
        assert_eq!(input.len(), 10_001);
        assert_eq!(input[0], 10_000);
        assert!(input[1..].iter().all(|&s| (0..8).contains(&s)));
    }

    #[test]
    fn zipf_concentrates_mass() {
        let input = make_input(&spec(0.0, 1.5), 16, false);
        let mut counts = [0u64; 16];
        for &s in &input[1..] {
            counts[s as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        assert!(max > 3_000, "hottest entry dominates: {counts:?}");
        assert!(nonzero >= 4, "tail still exercised");
    }

    #[test]
    fn divergence_changes_hot_set() {
        let sp = spec(1.0, 1.5);
        let train = make_input(&sp, 8, true);
        let reference = make_input(&sp, 8, false);
        let hot = |v: &[i64]| {
            let mut counts = [0u64; 8];
            for &s in &v[1..] {
                counts[s as usize] += 1;
            }
            (0..8).max_by_key(|&i| counts[i]).unwrap()
        };
        // With full divergence the hottest entries usually differ;
        // at minimum the streams are not identical.
        assert_ne!(train, reference);
        let _ = hot(&train);
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let input = make_input(&spec(0.0, 0.0), 4, false);
        let mut counts = [0u64; 4];
        for &s in &input[1..] {
            counts[s as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 1_500, "uniform-ish: {counts:?}");
        }
    }
}
