//! Figure 6: Mcad1 compile time and run time as the selectivity
//! parameter sweeps from 0 to 100 % of call sites.
//!
//! The paper's sweep shows compile time growing from ~200 to ~900
//! minutes as more code is compiled with CMO+PBO, while run-time
//! benefit saturates at roughly 20 % of the code — "about 80 % of the
//! code has no appreciable effect on performance". We regenerate both
//! curves: per selectivity point, the fraction of source lines in CMO
//! modules, the build cost (wall-clock and simulated work), and the
//! run time.
//!
//! Run with `cargo run --release -p cmo-bench --bin fig6_selectivity`.
//! Flags: `--smoke` (smaller app, fewer sweep points), `--json-out
//! <path>` (write a `cmo.bench.v1` snapshot for `bench-diff`).

use cmo::{BuildOptions, OptLevel};
use cmo_bench::{
    bench_args, compiler_for, measure, measure_cache_tiers, train, write_csv, BenchReport, BenchRow,
};
use cmo_synth::{generate, mcad_preset};

fn main() {
    let args = bench_args();
    let scale = if args.smoke { 0.25 } else { 0.75 };
    let app = generate(&mcad_preset("mcad1", scale));
    let cc = compiler_for(&app);
    let db = train(&cc, &app).expect("train");

    // The PBO-only baseline the sweep is drawn against (+O2 +P).
    let base =
        measure(&cc, &app, &BuildOptions::o2().with_profile_db(db.clone())).expect("baseline");

    println!(
        "Figure 6: selectivity sweep on {} ({} lines, {} modules)",
        app.name,
        app.total_lines,
        app.modules.len()
    );
    println!(
        "{:>5} {:>9} {:>8} {:>10} {:>12} {:>12} {:>9}",
        "sel%", "cmo_loc", "loc%", "build ms", "work units", "run cycles", "speedup"
    );
    let mut rows = Vec::new();
    let mut snapshot = BenchReport::new("fig6", args.smoke);
    let sweep: &[f64] = if args.smoke {
        &[0.0, 20.0, 100.0]
    } else {
        &[0.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0]
    };
    for &sel in sweep {
        let opts = BuildOptions::new(OptLevel::O4)
            .with_profile_db(db.clone())
            .with_selectivity(sel);
        let m = measure(&cc, &app, &opts).expect("build");
        assert_eq!(
            m.checksum, base.checksum,
            "selectivity must not change code"
        );
        let loc_pct = 100.0 * m.report.cmo_loc as f64 / m.report.total_loc.max(1) as f64;
        let speedup = base.cycles as f64 / m.cycles as f64;
        println!(
            "{:>5.0} {:>9} {:>7.1}% {:>10.1} {:>12} {:>12} {:>9.3}",
            sel, m.report.cmo_loc, loc_pct, m.compile_ms, m.report.compile_work, m.cycles, speedup,
        );
        rows.push(format!(
            "{},{},{:.2},{:.2},{},{},{:.4}",
            sel, m.report.cmo_loc, loc_pct, m.compile_ms, m.report.compile_work, m.cycles, speedup
        ));
        let mut row = BenchRow::new(format!("sel-{sel:.0}"));
        row.int("cmo_loc", m.report.cmo_loc as u64)
            .int("compile_work", m.report.compile_work)
            .int("run_cycles", m.cycles)
            .float("wall_ms", m.compile_ms)
            .float("speedup_vs_o2p", speedup);
        snapshot.rows.push(row);
    }
    // Cache-tier scenario on the sweep app: cold vs local-warm vs
    // remote-warm work units, gated deterministically.
    let tiers = measure_cache_tiers(&app);
    println!(
        "cache tiers: cold {} work, local-warm {} work, remote-warm {} work ({} bytes fetched)",
        tiers.cold_work, tiers.local_warm_work, tiers.remote_warm_work, tiers.remote_fetched_bytes
    );
    let mut row = BenchRow::new("cache-tiers");
    row.int("cold_work", tiers.cold_work)
        .int("local_warm_work", tiers.local_warm_work)
        .int("remote_warm_work", tiers.remote_warm_work)
        .int("remote_fetched_bytes", tiers.remote_fetched_bytes);
    snapshot.rows.push(row);

    if let Some(path) = &args.json_out {
        snapshot.write(path);
    }
    write_csv(
        "fig6_selectivity.csv",
        "sel_percent,cmo_loc,loc_percent,build_ms,work_units,run_cycles,speedup_vs_o2p",
        &rows,
    );
    println!();
    println!(
        "Baseline +O2+P: {} cycles, {:.1} ms build",
        base.cycles, base.compile_ms
    );
    println!("Paper (Figure 6): compile time grows steadily with selected code;");
    println!("run-time benefit saturates around 20% of the code — pick the knee.");
}
