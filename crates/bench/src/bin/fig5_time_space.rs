//! Figure 5: HLO compile time versus memory usage when compiling a
//! 126.gcc-scale program under the four NAIM configurations.
//!
//! The paper shows the trade-off curve: NAIM off (~240 MB, fastest),
//! IR compaction (~100 MB, +20 % time), symbol-table compaction, and
//! disk offloading (~25 MB, +50 % time). We regenerate the same four
//! points: peak optimizer memory against both wall-clock build time
//! and the deterministic simulated work-unit count.
//!
//! The offload row also reports how much cheaper rehydration is with
//! the zero-copy fetch path: fetched bytes are charged
//! `fetch_cost_per_byte` (borrowed view / arena read) instead of the
//! legacy `disk_cost_per_byte` (copy through an owned buffer), and the
//! run asserts the reduction is at least 20 %.
//!
//! Run with `cargo run --release -p cmo-bench --bin fig5_time_space`.
//! Flags: `--smoke` (CI-sized program), `--json-out <path>` (write a
//! `cmo.bench.v1` snapshot for `bench-diff`).

use cmo::{BuildOptions, NaimConfig, NaimLevel, OptLevel};
use cmo_bench::{
    bench_args, compiler_for, measure_at_jobs, train, write_csv, BenchReport, BenchRow,
};
use cmo_synth::{generate, spec_preset};

fn main() {
    let args = bench_args();
    // A gcc-scale program, grown so its expanded IR dwarfs the budget.
    // Smoke mode shrinks both the program and the budget in step, so
    // every NAIM level still binds at CI sizes.
    let mut spec = spec_preset("gcc");
    spec.modules = if args.smoke { 8 } else { 24 };
    let budget = if args.smoke { 200 << 10 } else { 600 << 10 };
    let app = generate(&spec);
    let cc = compiler_for(&app);
    let db = train(&cc, &app).expect("train");

    let configs: [(&str, NaimConfig); 4] = [
        ("naim-off", NaimConfig::disabled()),
        (
            "ir-compaction",
            NaimConfig::with_budget(budget).max_level(NaimLevel::CompactIr),
        ),
        (
            "st-compaction",
            NaimConfig::with_budget(budget).max_level(NaimLevel::CompactAll),
        ),
        (
            "offload",
            NaimConfig::with_budget(budget).max_level(NaimLevel::Offload),
        ),
    ];

    println!(
        "Figure 5: time/space trade-off on a gcc-scale program ({} lines)",
        app.total_lines
    );
    println!(
        "{:<14} {:>12} {:>11} {:>11} {:>12} {:>11} {:>10} {:>10} {:>9}",
        "config",
        "peak bytes",
        "ms (-j1)",
        "ms (-j4)",
        "work units",
        "fetch wu",
        "compacts",
        "expands",
        "offloads"
    );
    let mut rows = Vec::new();
    let mut snapshot = BenchReport::new("fig5", args.smoke);
    let mut checksum = None;
    for (name, naim) in configs {
        let fetch_cost = naim.fetch_cost_per_byte;
        let disk_cost = naim.disk_cost_per_byte;
        let opts = BuildOptions::new(OptLevel::O4)
            .with_profile_db(db.clone())
            .with_selectivity(100.0)
            .with_naim(naim);
        // Each configuration builds at one and at four workers; the
        // sweep asserts the report and checksum are identical, so the
        // table's two ms columns are the only thing -j may change.
        let sweep = measure_at_jobs(&cc, &app, &opts, &[1, 4]).expect("build");
        let (ms_j1, ms_j4) = (sweep[0].1.compile_ms, sweep[1].1.compile_ms);
        let (hlo_j1, hlo_j4) = (sweep[0].1.hlo_wall_nanos, sweep[1].1.hlo_wall_nanos);
        let m = &sweep[0].1;
        let report = &m.report;
        println!(
            "{:<14} {:>12} {:>11.1} {:>11.1} {:>12} {:>11} {:>10} {:>10} {:>9}",
            name,
            report.peak_bytes(),
            ms_j1,
            ms_j4,
            report.loader.work_units,
            report.loader.fetch_work_units,
            report.loader.compactions,
            report.loader.uncompactions,
            report.loader.offload_writes,
        );
        rows.push(format!(
            "{},{},{:.2},{:.2},{},{},{},{},{}",
            name,
            report.peak_bytes(),
            ms_j1,
            ms_j4,
            report.loader.work_units,
            report.loader.fetch_work_units,
            report.loader.compactions,
            report.loader.uncompactions,
            report.loader.offload_writes
        ));
        let mut row = BenchRow::new(name);
        row.int("peak_bytes", report.peak_bytes() as u64)
            .int("compile_work", report.compile_work)
            .int("work_units", report.loader.work_units)
            .int("fetch_work_units", report.loader.fetch_work_units)
            .int("compactions", report.loader.compactions)
            .int("uncompactions", report.loader.uncompactions)
            .int("offload_writes", report.loader.offload_writes)
            .float("wall_ms_j1", ms_j1)
            .float("wall_ms_j4", ms_j4)
            .float("hlo_wall_nanos_j1", hlo_j1 as f64)
            .float("hlo_wall_nanos_j4", hlo_j4 as f64);
        if name == "offload" {
            // The zero-copy fetch path charges fetch_cost_per_byte for
            // every rehydrated byte; the legacy path charged the full
            // disk_cost_per_byte copy. Same bytes, so the ratio of the
            // two per-byte rates is exactly the work-unit reduction.
            let fetch_wu = report.loader.fetch_work_units;
            assert!(
                fetch_wu > 0,
                "offload config never rehydrated — budget too large"
            );
            let legacy_wu = fetch_wu / fetch_cost * disk_cost;
            let cut_pct = 100.0 * (legacy_wu - fetch_wu) as f64 / legacy_wu as f64;
            println!(
                "zero-copy fetch: {fetch_wu} work units vs {legacy_wu} legacy \
                 (copying) work units = {cut_pct:.1}% reduction"
            );
            assert!(
                cut_pct >= 20.0,
                "fetch/rehydrate work-unit reduction {cut_pct:.1}% below the 20% floor"
            );
            row.float("fetch_reduction_pct", cut_pct);
        }
        snapshot.rows.push(row);
        match checksum {
            None => checksum = Some(m.checksum),
            Some(c) => assert_eq!(c, m.checksum, "NAIM level must not change code"),
        }
    }
    write_csv(
        "fig5_time_space.csv",
        "config,peak_bytes,build_ms_j1,build_ms_j4,work_units,fetch_work_units,compactions,uncompactions,offload_writes",
        &rows,
    );
    if let Some(path) = &args.json_out {
        snapshot.write(path);
    }
    println!();
    println!("Paper (Figure 5): each successive NAIM level trades compile time");
    println!("for memory — expect peak bytes to fall monotonically down the");
    println!("table while work units rise.");
}
