//! Figure 5: HLO compile time versus memory usage when compiling a
//! 126.gcc-scale program under the four NAIM configurations.
//!
//! The paper shows the trade-off curve: NAIM off (~240 MB, fastest),
//! IR compaction (~100 MB, +20 % time), symbol-table compaction, and
//! disk offloading (~25 MB, +50 % time). We regenerate the same four
//! points: peak optimizer memory against both wall-clock build time
//! and the deterministic simulated work-unit count.
//!
//! Run with `cargo run --release -p cmo-bench --bin fig5_time_space`.

use cmo::{BuildOptions, NaimConfig, NaimLevel, OptLevel};
use cmo_bench::{compiler_for, measure_at_jobs, train, write_csv};
use cmo_synth::{generate, spec_preset};

fn main() {
    // A gcc-scale program, grown so its expanded IR dwarfs the budget.
    let mut spec = spec_preset("gcc");
    spec.modules = 24;
    let app = generate(&spec);
    let cc = compiler_for(&app);
    let db = train(&cc, &app).expect("train");

    // Budget chosen so each successive NAIM level actually binds.
    let budget = 600 << 10;
    let configs: [(&str, NaimConfig); 4] = [
        ("naim-off", NaimConfig::disabled()),
        (
            "ir-compaction",
            NaimConfig::with_budget(budget).max_level(NaimLevel::CompactIr),
        ),
        (
            "st-compaction",
            NaimConfig::with_budget(budget).max_level(NaimLevel::CompactAll),
        ),
        (
            "offload",
            NaimConfig::with_budget(budget).max_level(NaimLevel::Offload),
        ),
    ];

    println!(
        "Figure 5: time/space trade-off on a gcc-scale program ({} lines)",
        app.total_lines
    );
    println!(
        "{:<14} {:>12} {:>11} {:>11} {:>12} {:>10} {:>10} {:>9}",
        "config",
        "peak bytes",
        "ms (-j1)",
        "ms (-j4)",
        "work units",
        "compacts",
        "expands",
        "offloads"
    );
    let mut rows = Vec::new();
    let mut checksum = None;
    for (name, naim) in configs {
        let opts = BuildOptions::new(OptLevel::O4)
            .with_profile_db(db.clone())
            .with_selectivity(100.0)
            .with_naim(naim);
        // Each configuration builds at one and at four workers; the
        // sweep asserts the report and checksum are identical, so the
        // table's two ms columns are the only thing -j may change.
        let sweep = measure_at_jobs(&cc, &app, &opts, &[1, 4]).expect("build");
        let (ms_j1, ms_j4) = (sweep[0].1.compile_ms, sweep[1].1.compile_ms);
        let m = &sweep[0].1;
        let report = &m.report;
        println!(
            "{:<14} {:>12} {:>11.1} {:>11.1} {:>12} {:>10} {:>10} {:>9}",
            name,
            report.peak_bytes(),
            ms_j1,
            ms_j4,
            report.loader.work_units,
            report.loader.compactions,
            report.loader.uncompactions,
            report.loader.offload_writes,
        );
        rows.push(format!(
            "{},{},{:.2},{:.2},{},{},{},{}",
            name,
            report.peak_bytes(),
            ms_j1,
            ms_j4,
            report.loader.work_units,
            report.loader.compactions,
            report.loader.uncompactions,
            report.loader.offload_writes
        ));
        match checksum {
            None => checksum = Some(m.checksum),
            Some(c) => assert_eq!(c, m.checksum, "NAIM level must not change code"),
        }
    }
    write_csv(
        "fig5_time_space.csv",
        "config,peak_bytes,build_ms_j1,build_ms_j4,work_units,compactions,uncompactions,offload_writes",
        &rows,
    );
    println!();
    println!("Paper (Figure 5): each successive NAIM level trades compile time");
    println!("for memory — expect peak bytes to fall monotonically down the");
    println!("table while work units rise.");
}
