//! Figure 4: compiler and HLO memory usage as more lines of code are
//! compiled in CMO mode.
//!
//! The paper compiles increasing portions of the 5 MLoC Mcad1 under
//! CMO and plots overall-compiler and HLO memory occupancy: thanks to
//! NAIM, HLO memory grows *sub-linearly* in lines of code, while the
//! overall compiler grows faster (inlining growth plus LLO's
//! super-linear per-routine working set). We regenerate both curves on
//! Mcad1-like apps at increasing scales, with a fixed NAIM budget, and
//! include the NAIM-off peak for contrast.
//!
//! Run with `cargo run --release -p cmo-bench --bin fig4_memory_scaling`.
//! Flags: `--smoke` (first two scales only), `--json-out <path>`
//! (write a `cmo.bench.v1` snapshot for `bench-diff`).

use cmo::{BuildOptions, NaimConfig, OptLevel};
use cmo_bench::{
    bench_args, compiler_for, measure, measure_at_jobs, train, write_csv, BenchReport, BenchRow,
};
use cmo_synth::{generate, mcad_preset};

/// Fixed optimizer memory budget: the "physical memory of the build
/// machine" stand-in. Mcad1 at full scale needs several times this in
/// expanded form, so the thresholds engage partway up the sweep.
const BUDGET: usize = 3 << 20;

fn main() {
    let args = bench_args();
    println!("Figure 4: optimizer memory vs lines of code compiled with CMO");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10} {:>12} {:>10} {:>10}",
        "lines", "HLO peak", "naim-off", "overall", "B/line", "offloads", "ms (-j1)", "ms (-j4)"
    );
    let scales: &[f64] = if args.smoke {
        &[0.125, 0.25]
    } else {
        &[0.125, 0.25, 0.375, 0.5, 0.675, 0.825, 1.0]
    };
    let mut rows = Vec::new();
    let mut snapshot = BenchReport::new("fig4", args.smoke);
    for &scale in scales {
        let app = generate(&mcad_preset("mcad1", scale));
        let cc = compiler_for(&app);
        let db = train(&cc, &app).expect("train");
        let opts = BuildOptions::new(OptLevel::O4)
            .with_profile_db(db.clone())
            .with_selectivity(20.0)
            .with_naim(NaimConfig::with_budget(BUDGET));
        // Wall-clock at one and at four workers; the sweep asserts the
        // report (and so every memory column) is identical across -j.
        let sweep = measure_at_jobs(&cc, &app, &opts, &[1, 4]).expect("naim build");
        let (ms_j1, ms_j4) = (sweep[0].1.compile_ms, sweep[1].1.compile_ms);
        let (hlo_j1, hlo_j4) = (sweep[0].1.hlo_wall_nanos, sweep[1].1.hlo_wall_nanos);
        let with_naim = &sweep[0].1;
        let off = BuildOptions::new(OptLevel::O4)
            .with_profile_db(db)
            .with_selectivity(20.0)
            .with_naim(NaimConfig::disabled());
        let without = measure(&cc, &app, &off).expect("naim-off build");

        let hlo_peak = with_naim.report.peak_bytes();
        let hlo_off = without.report.peak_bytes();
        let overall = hlo_peak + with_naim.report.llo_peak_bytes;
        let per_line = hlo_peak as f64 / app.total_lines as f64;
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>10.1} {:>12} {:>10.1} {:>10.1}",
            app.total_lines,
            hlo_peak,
            hlo_off,
            overall,
            per_line,
            with_naim.report.loader.offload_writes,
            ms_j1,
            ms_j4,
        );
        rows.push(format!(
            "{},{},{},{},{:.2},{},{:.2},{:.2}",
            app.total_lines,
            hlo_peak,
            hlo_off,
            overall,
            per_line,
            with_naim.report.loader.offload_writes,
            ms_j1,
            ms_j4
        ));
        assert_eq!(
            with_naim.checksum, without.checksum,
            "NAIM must not change code"
        );
        let mut row = BenchRow::new(format!("{}-lines", app.total_lines));
        row.int("hlo_peak_bytes", hlo_peak as u64)
            .int("naim_off_peak_bytes", hlo_off as u64)
            .int("overall_bytes", overall as u64)
            .int("compile_work", with_naim.report.compile_work)
            .int("work_units", with_naim.report.loader.work_units)
            .int("fetch_work_units", with_naim.report.loader.fetch_work_units)
            .int("offload_writes", with_naim.report.loader.offload_writes)
            .float("wall_ms_j1", ms_j1)
            .float("wall_ms_j4", ms_j4)
            .float("hlo_wall_nanos_j1", hlo_j1 as f64)
            .float("hlo_wall_nanos_j4", hlo_j4 as f64);
        snapshot.rows.push(row);
    }
    if let Some(path) = &args.json_out {
        snapshot.write(path);
    }
    write_csv(
        "fig4_memory_scaling.csv",
        "lines,hlo_peak_bytes,naim_off_peak_bytes,overall_bytes,bytes_per_line,offload_writes,build_ms_j1,build_ms_j4",
        &rows,
    );
    println!();
    println!("Paper (Figure 4): HLO memory grows sub-linearly in LoC under NAIM;");
    println!("expect bytes/line to FALL as lines grow, and the naim-off column");
    println!("to grow linearly past the budget.");
}
