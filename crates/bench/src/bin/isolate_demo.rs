//! §6.3 demonstration: automatic isolation of an optimizer-induced
//! failure by binary search over the inliner's operation limit.
//!
//! "We have implemented controllable operation limits on
//! transformations such as inlining so we can employ binary search to
//! identify the inline that makes the difference between a failing and
//! a working program." Here we plant a pretend miscompile — an oracle
//! that declares the program broken once a specific inline operation
//! has been applied — and let the driver find it.
//!
//! Run with `cargo run --release -p cmo-bench --bin isolate_demo`.

use cmo::{isolate_faulty_op, BuildOptions, InlineOptions, OptLevel};
use cmo_bench::compiler_for;
use cmo_synth::{generate, spec_preset};

fn main() {
    let app = generate(&spec_preset("li"));
    let cc = compiler_for(&app);

    // Full CMO build to learn the total operation count.
    let full = cc
        .build(&BuildOptions::new(OptLevel::O4))
        .expect("full build");
    let total = full.report.hlo.inlines;
    println!("program {}: {} inline operations at +O4", app.name, total);

    // Plant the bug: pretend the 2/3rd-way inline miscompiles.
    let planted = (total * 2 / 3).max(1);
    println!("planting a failure at inline operation #{planted}");

    let mut builds_log = Vec::new();
    let report = isolate_faulty_op(total, |limit| {
        let opts = BuildOptions::new(OptLevel::O4).with_inline(InlineOptions {
            op_limit: Some(limit),
            ..InlineOptions::default()
        });
        let out = cc.build(&opts).expect("limited build");
        // The oracle: a real deployment would run the program's test
        // suite here (§6.4); our planted bug trips once the op count
        // reaches the planted operation.
        let applied = out.report.hlo.inlines;
        builds_log.push((limit, applied));
        applied < planted
    });

    println!("binary search performed {} builds:", report.builds);
    for (limit, applied) in &builds_log {
        println!("  limit {limit:>5} -> {applied} inlines applied");
    }
    match report.first_faulty_op {
        Some(op) => println!("isolated faulty operation: #{op} (planted #{planted})"),
        None => println!("no failure found (unexpected)"),
    }
    assert_eq!(report.first_faulty_op, Some(planted));
    let linear_builds = total;
    println!(
        "binary search cost {} builds versus {} for a linear scan",
        report.builds, linear_builds
    );
}
