//! Figure 7 (reproduction extra): cold vs warm build cost with the
//! persistent incremental cache.
//!
//! The paper's §6.1 describes the `make` flow — IL objects persist on
//! disk so the front end runs only for changed sources, and the
//! expensive cross-module optimization re-runs at link time. The
//! persistent content-addressed repository extends that flow: a warm
//! rebuild with no changed sources replays the linked image and
//! report straight from the cache, and an edit to one module re-runs
//! the front end for that module only before the whole-program
//! optimization re-runs.
//!
//! Scenarios measured (all byte-identical outputs, asserted):
//!
//! * `cold`   — empty cache, everything compiles and is stored;
//! * `warm`   — nothing changed, whole build replays from the cache;
//! * `dirty1` — one module edited, front end re-runs for it alone.
//!
//! Run with `cargo run --release -p cmo-bench --bin fig7_incremental`.
//! Flags: `--smoke` (quarter-scale app), `--json-out <path>` (write a
//! `cmo.bench.v1` snapshot for `bench-diff`).

use cmo::{BuildCache, BuildOptions, Compiler, OptLevel, Telemetry};
use cmo_bench::{bench_args, write_csv, BenchReport, BenchRow};
use cmo_synth::{generate, mcad_preset};
use std::time::Instant;

fn main() {
    let args = bench_args();
    let scale = if args.smoke { 0.25 } else { 0.5 };
    let app = generate(&mcad_preset("mcad1", scale));
    let cache_dir = std::env::temp_dir().join(format!("cmo-fig7-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let options = BuildOptions::new(OptLevel::O4);
    let tel = Telemetry::disabled();

    println!(
        "Figure 7: incremental recompilation on {} ({} lines, {} modules)",
        app.name,
        app.total_lines,
        app.modules.len()
    );
    println!(
        "{:>8} {:>10} {:>8} {:>10} {:>12} {:>9}",
        "scenario", "fe_hits", "replay", "build ms", "work units", "speedup"
    );

    let mut rows = Vec::new();
    let mut json_rows: Vec<BenchRow> = Vec::new();
    let mut baseline = None;
    let mut build = |scenario: &str, modules: &[(String, String)]| {
        let t0 = Instant::now();
        let mut cache = BuildCache::open(&cache_dir).expect("open cache");
        let mut cc = Compiler::new();
        let hits = cc
            .add_sources_cached(modules, 1, &mut cache, &tel)
            .expect("front end");
        let out = cc.build_cached(&options, &mut cache).expect("build");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let run = out.run(&app.ref_input).expect("run");
        let replayed = out.report.cache.build_hits > 0;
        // The cache must never change what the program computes.
        let checksum = run.checksum;
        let (base_ms, base_checksum) = *baseline.get_or_insert((ms, checksum));
        assert_eq!(checksum, base_checksum, "{scenario} changed behaviour");
        let speedup = base_ms / ms;
        println!(
            "{:>8} {:>10} {:>8} {:>10.1} {:>12} {:>9.2}",
            scenario,
            hits,
            if replayed { "yes" } else { "no" },
            ms,
            out.report.compile_work,
            speedup
        );
        rows.push(format!(
            "{},{},{},{:.2},{},{:.3}",
            scenario,
            hits,
            u8::from(replayed),
            ms,
            out.report.compile_work,
            speedup
        ));
        let unified = out.compile_report();
        let mut row = BenchRow::new(scenario);
        row.int("frontend_hits", hits as u64)
            .int("build_replayed", u64::from(replayed))
            .int("compile_work", out.report.compile_work)
            .int("work_units", out.report.loader.work_units)
            .int("fetch_work_units", out.report.loader.fetch_work_units)
            .int("peak_bytes", unified.peak_bytes() as u64)
            .float("wall_ms", ms)
            .float("speedup_vs_cold", speedup);
        json_rows.push(row);
    };

    build("cold", &app.modules);
    build("warm", &app.modules);

    // Edit one module: append a routine nothing calls. The program's
    // behaviour is unchanged, but the module's fingerprint — and with
    // it the whole-build key — is not.
    let mut dirty = app.modules.clone();
    dirty[0]
        .1
        .push_str("\nfn fig7_touched(x: int) -> int { return x; }\n");
    build("dirty1", &dirty);

    // Crash recovery: tear the repository's tail, as a kill -9 during
    // an append would. open() truncates back to the last well-framed
    // record, invalidates dangling manifest entries, and the rebuild
    // must reproduce the same program — the cost shown is the price of
    // recovering instead of starting cold.
    {
        let repo = cache_dir.join("repo.naim");
        let mut bytes = std::fs::read(&repo).expect("read repo");
        let keep = bytes.len().saturating_sub(bytes.len() / 4);
        bytes.truncate(keep);
        std::fs::write(&repo, &bytes).expect("tear repo");
    }
    build("recover", &dirty);

    write_csv(
        "fig7_incremental.csv",
        "scenario,frontend_hits,build_replayed,build_ms,work_units,speedup_vs_cold",
        &rows,
    );
    if let Some(path) = &args.json_out {
        let mut snapshot = BenchReport::new("fig7", args.smoke);
        snapshot.rows = json_rows;
        snapshot.write(path);
    }
    let _ = std::fs::remove_dir_all(&cache_dir);
    println!();
    println!("A warm rebuild replays the image and report from the cache (§6.1's");
    println!("make flow, extended to the whole optimizing link); editing one");
    println!("module re-runs the front end for that module only. A torn");
    println!("repository is rolled back on open and rebuilt, never trusted.");
}
