//! Figure 7 (reproduction extra): cold vs warm build cost with the
//! persistent incremental cache.
//!
//! The paper's §6.1 describes the `make` flow — IL objects persist on
//! disk so the front end runs only for changed sources, and the
//! expensive cross-module optimization re-runs at link time. The
//! persistent content-addressed repository extends that flow: a warm
//! rebuild with no changed sources replays the linked image and
//! report straight from the cache, and an edit to one module re-runs
//! the front end for that module only before the whole-program
//! optimization re-runs.
//!
//! Scenarios measured (all byte-identical outputs, asserted):
//!
//! * `cold`    — empty cache, everything compiles and is stored;
//! * `warm`    — nothing changed, whole build replays from the cache;
//! * `dirty1`  — one module edited, front end re-runs for it alone;
//! * `recover` — torn repository rolled back on open, then rebuilt;
//! * `retrain` — sources unchanged, profile database retrained: with
//!   module-granular profile slices only the modules whose observable
//!   slice moved recompile, the rest are retained hits.
//!
//! Run with `cargo run --release -p cmo-bench --bin fig7_incremental`.
//! Flags: `--smoke` (quarter-scale app), `--json-out <path>` (write a
//! `cmo.bench.v1` snapshot for `bench-diff`).

use cmo::{BuildCache, BuildOptions, Compiler, OptLevel, ProfileDb, SliceGranularity, Telemetry};
use cmo_bench::{bench_args, write_csv, BenchReport, BenchRow};
use cmo_profile::ProbeKey;
use cmo_synth::{generate, mcad_preset};
use std::time::Instant;

fn main() {
    let args = bench_args();
    let scale = if args.smoke { 0.25 } else { 0.5 };
    let app = generate(&mcad_preset("mcad1", scale));
    let cache_dir = std::env::temp_dir().join(format!("cmo-fig7-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let options = BuildOptions::new(OptLevel::O4);
    let tel = Telemetry::disabled();

    println!(
        "Figure 7: incremental recompilation on {} ({} lines, {} modules)",
        app.name,
        app.total_lines,
        app.modules.len()
    );
    println!(
        "{:>8} {:>10} {:>8} {:>10} {:>12} {:>9}",
        "scenario", "fe_hits", "replay", "build ms", "work units", "speedup"
    );

    let mut rows = Vec::new();
    let mut json_rows: Vec<BenchRow> = Vec::new();
    let mut baseline = None;
    let mut build = |scenario: &str, modules: &[(String, String)]| {
        let t0 = Instant::now();
        let mut cache = BuildCache::open(&cache_dir).expect("open cache");
        let mut cc = Compiler::new();
        let hits = cc
            .add_sources_cached(modules, 1, &mut cache, &tel)
            .expect("front end");
        let out = cc.build_cached(&options, &mut cache).expect("build");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let run = out.run(&app.ref_input).expect("run");
        let replayed = out.report.cache.build_hits > 0;
        // The cache must never change what the program computes.
        let checksum = run.checksum;
        let (base_ms, base_checksum) = *baseline.get_or_insert((ms, checksum));
        assert_eq!(checksum, base_checksum, "{scenario} changed behaviour");
        let speedup = base_ms / ms;
        println!(
            "{:>8} {:>10} {:>8} {:>10.1} {:>12} {:>9.2}",
            scenario,
            hits,
            if replayed { "yes" } else { "no" },
            ms,
            out.report.compile_work,
            speedup
        );
        rows.push(format!(
            "{},{},{},{:.2},{},{:.3}",
            scenario,
            hits,
            u8::from(replayed),
            ms,
            out.report.compile_work,
            speedup
        ));
        let unified = out.compile_report();
        let mut row = BenchRow::new(scenario);
        row.int("frontend_hits", hits as u64)
            .int("build_replayed", u64::from(replayed))
            .int("compile_work", out.report.compile_work)
            .int("work_units", out.report.loader.work_units)
            .int("fetch_work_units", out.report.loader.fetch_work_units)
            .int("peak_bytes", unified.peak_bytes() as u64)
            .float("wall_ms", ms)
            .float("speedup_vs_cold", speedup);
        json_rows.push(row);
    };

    build("cold", &app.modules);
    build("warm", &app.modules);

    // Edit one module: append a routine nothing calls. The program's
    // behaviour is unchanged, but the module's fingerprint — and with
    // it the whole-build key — is not.
    let mut dirty = app.modules.clone();
    dirty[0]
        .1
        .push_str("\nfn fig7_touched(x: int) -> int { return x; }\n");
    build("dirty1", &dirty);

    // Crash recovery: tear the repository's tail, as a kill -9 during
    // an append would. open() truncates back to the last well-framed
    // record, invalidates dangling manifest entries, and the rebuild
    // must reproduce the same program — the cost shown is the price of
    // recovering instead of starting cold.
    {
        let repo = cache_dir.join("repo.naim");
        let mut bytes = std::fs::read(&repo).expect("read repo");
        let keep = bytes.len().saturating_sub(bytes.len() / 4);
        bytes.truncate(keep);
        std::fs::write(&repo, &bytes).expect("tear repo");
    }
    build("recover", &dirty);

    // Retrain: the sources are untouched but the profile database is
    // not — the situation §6.2's feedback flow hits on every fresh
    // training run. Profile slices key each front-end object on the
    // (source, observable-slice) fingerprint pair, so only the modules
    // whose slice the retrain moved recompile; everything else is a
    // retained hit, and the image still matches a cold build under the
    // new database byte for byte.
    {
        let retrain_dir =
            std::env::temp_dir().join(format!("cmo-fig7-retrain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&retrain_dir);
        let mut cc = Compiler::new();
        for (module, source) in &app.modules {
            cc.add_source(module, source).expect("front end");
        }
        let train = cc
            .build(&BuildOptions::instrumented())
            .expect("train build");
        let db1 = train.run_for_profile(&app.ref_input).expect("training run");
        // The retrained database: one routine's hot block moves, as a
        // shifted workload would move it.
        let (name, shape) = db1
            .iter()
            .next()
            .map(|(name, routine)| (name.to_owned(), routine.shape))
            .expect("training run populated the database");
        let mut db2 = db1.clone();
        db2.record(
            &[(ProbeKey::block(&name, 0), 50_000)],
            &[(name.clone(), shape)],
        );
        // The synthetic app's hot call edges couple every module into
        // one cluster, so cluster-granular slices all observe the
        // perturbed routine; module granularity keeps the blast radius
        // to the modules that can actually see it.
        let profiled = |db: &ProfileDb| {
            BuildOptions::new(OptLevel::O4)
                .with_profile_db(db.clone())
                .with_slice_granularity(SliceGranularity::Module)
        };

        // Cold profiled build: seeds the composed entries and the
        // scope sidecars the warm build plans from.
        let c0 = Instant::now();
        {
            let mut cache = BuildCache::open(&retrain_dir).expect("open cache");
            let mut cold = Compiler::new();
            cold.add_sources_cached_with(&app.modules, &profiled(&db1), &mut cache)
                .expect("cold front end");
            cold.build_cached(&profiled(&db1), &mut cache)
                .expect("cold build");
        }
        let cold_ms = c0.elapsed().as_secs_f64() * 1e3;

        // The measured scenario: same sources, retrained database.
        let t0 = Instant::now();
        let mut cache = BuildCache::open(&retrain_dir).expect("open cache");
        let mut warm = Compiler::new();
        let hits = warm
            .add_sources_cached_with(&app.modules, &profiled(&db2), &mut cache)
            .expect("warm front end");
        let out = warm
            .build_cached(&profiled(&db2), &mut cache)
            .expect("warm build");
        let ms = t0.elapsed().as_secs_f64() * 1e3;

        // The cache must change neither the image nor the behaviour.
        let fresh = cc.build(&profiled(&db2)).expect("fresh build");
        assert_eq!(
            out.image.code, fresh.image.code,
            "retrain-warm image must match a cold build of the same database"
        );
        let run = out.run(&app.ref_input).expect("run");
        let (_, base_checksum) = baseline.expect("cold ran first");
        assert_eq!(run.checksum, base_checksum, "retrain changed behaviour");

        let retained = out.report.cache.profile_retained_hits;
        let replayed = out.report.cache.build_hits > 0;
        let speedup = cold_ms / ms;
        println!(
            "{:>8} {:>10} {:>8} {:>10.1} {:>12} {:>9.2}",
            "retrain",
            hits,
            if replayed { "yes" } else { "no" },
            ms,
            out.report.compile_work,
            speedup
        );
        println!(
            "         profile slices: {} planned, {} stale, {} retained hits",
            out.report.cache.profile_slices, out.report.cache.profile_stale_slices, retained
        );
        rows.push(format!(
            "retrain,{},{},{:.2},{},{:.3}",
            hits,
            u8::from(replayed),
            ms,
            out.report.compile_work,
            speedup
        ));
        let unified = out.compile_report();
        let mut row = BenchRow::new("retrain");
        row.int("frontend_hits", hits as u64)
            .int("build_replayed", u64::from(replayed))
            .int("compile_work", out.report.compile_work)
            .int("work_units", out.report.loader.work_units)
            .int("fetch_work_units", out.report.loader.fetch_work_units)
            .int("peak_bytes", unified.peak_bytes() as u64)
            .int("profile_slices", out.report.cache.profile_slices)
            .int("retained_hits", retained)
            .float("wall_ms", ms)
            .float("speedup_vs_cold", speedup);
        json_rows.push(row);
        let _ = std::fs::remove_dir_all(&retrain_dir);
    }

    write_csv(
        "fig7_incremental.csv",
        "scenario,frontend_hits,build_replayed,build_ms,work_units,speedup_vs_cold",
        &rows,
    );
    if let Some(path) = &args.json_out {
        let mut snapshot = BenchReport::new("fig7", args.smoke);
        snapshot.rows = json_rows;
        snapshot.write(path);
    }
    let _ = std::fs::remove_dir_all(&cache_dir);
    println!();
    println!("A warm rebuild replays the image and report from the cache (§6.1's");
    println!("make flow, extended to the whole optimizing link); editing one");
    println!("module re-runs the front end for that module only. A torn");
    println!("repository is rolled back on open and rebuilt, never trusted.");
}
