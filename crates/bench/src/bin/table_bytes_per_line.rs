//! The §4/§8 memory-history table: bytes of optimizer memory per
//! source line across the framework's three eras.
//!
//! HP-UX 9.0 kept everything expanded (~1.7 KB/line); HP-UX 10.01
//! introduced IR compaction (~0.9 KB/line); HP-UX 10.20's full NAIM
//! made occupancy sub-linear (a *falling* bytes-per-line figure as
//! programs grow). We reproduce the three eras on a gcc-scale program
//! and report our bytes/line alongside the paper's.
//!
//! Run with `cargo run --release -p cmo-bench --bin table_bytes_per_line`.
//! Flags: `--smoke` (fewer modules), `--json-out <path>` (write a
//! `cmo.bench.v1` snapshot for `bench-diff`).

use cmo::{BuildOptions, NaimConfig, NaimLevel, OptLevel};
use cmo_bench::{bench_args, compiler_for, measure, train, write_csv, BenchReport, BenchRow};
use cmo_synth::{generate, spec_preset};

fn main() {
    let args = bench_args();
    let mut spec = spec_preset("gcc");
    spec.modules = if args.smoke { 8 } else { 20 };
    let app = generate(&spec);
    let cc = compiler_for(&app);
    let db = train(&cc, &app).expect("train");
    let budget = 500 << 10;

    let eras: [(&str, &str, f64, NaimConfig); 3] = [
        ("HP-UX 9.0", "all expanded", 1700.0, NaimConfig::disabled()),
        (
            "HP-UX 10.01",
            "IR compaction",
            900.0,
            NaimConfig::with_budget(budget).max_level(NaimLevel::CompactIr),
        ),
        (
            "HP-UX 10.20",
            "full NAIM",
            f64::NAN, // sub-linear: no single figure in the paper
            NaimConfig::with_budget(budget).max_level(NaimLevel::Offload),
        ),
    ];

    println!(
        "Memory-per-line history on a gcc-scale program ({} lines)",
        app.total_lines
    );
    println!(
        "{:<12} {:<14} {:>12} {:>11} {:>14}",
        "era", "technique", "peak bytes", "B/line", "paper B/line"
    );
    let mut rows = Vec::new();
    let mut snapshot = BenchReport::new("table_bytes_per_line", args.smoke);
    for (era, technique, paper, naim) in eras {
        let opts = BuildOptions::new(OptLevel::O4)
            .with_profile_db(db.clone())
            .with_selectivity(100.0)
            .with_naim(naim);
        let m = measure(&cc, &app, &opts).expect("build");
        let peak = m.report.peak_bytes();
        let per_line = peak as f64 / app.total_lines as f64;
        let paper_str = if paper.is_nan() {
            "sub-linear".to_owned()
        } else {
            format!("{paper:.0}")
        };
        println!(
            "{:<12} {:<14} {:>12} {:>11.1} {:>14}",
            era, technique, peak, per_line, paper_str
        );
        rows.push(format!(
            "{era},{technique},{peak},{per_line:.2},{paper_str}"
        ));
        let mut row = BenchRow::new(technique.replace(' ', "-"));
        row.int("peak_bytes", peak as u64)
            .int("compile_work", m.report.compile_work)
            .int("offload_writes", m.report.loader.offload_writes)
            .float("bytes_per_line", per_line);
        snapshot.rows.push(row);
    }
    if let Some(path) = &args.json_out {
        snapshot.write(path);
    }
    write_csv(
        "table_bytes_per_line.csv",
        "era,technique,peak_bytes,bytes_per_line,paper_bytes_per_line",
        &rows,
    );
    println!();
    println!("Expect each era to need a fraction of the previous one's memory;");
    println!("absolute B/line differs from the paper (different IR, different");
    println!("language) — the ratios are the reproduction target.");
}
