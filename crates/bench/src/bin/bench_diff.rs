//! Compares two `cmo.bench.v1` snapshots and fails on regression.
//!
//! ```text
//! bench-diff <baseline.json> <candidate.json> [--threshold <percent>]
//! ```
//!
//! Only **deterministic counters** are gated: integer metrics such as
//! the work-unit clock, loader work, and peak accounted bytes, which
//! are identical run-to-run on any machine. Keys starting with
//! `wall_` (wall-clock milliseconds) or `speedup` (wall-clock ratios)
//! are machine-dependent and reported for information only.
//!
//! A metric regresses when `candidate > baseline * (1 + threshold)`;
//! the default threshold is 15 %. Exit codes: `0` clean, `1` at least
//! one regression, `2` usage or parse error.

use cmo_bench::{parse_json, Json};
use std::process::ExitCode;

/// Metrics that are machine-dependent (wall-clock, ratios of it) or
/// higher-is-better percentages — reported but never gated. The
/// `_nanos` keys are the per-phase wall-clock readings (for example
/// `hlo_wall_nanos_j4` from the parallel HLO fan-out).
fn informational(key: &str) -> bool {
    key.starts_with("wall_")
        || key.starts_with("speedup")
        || key.ends_with("_pct")
        || key.contains("_nanos")
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parse_json(&text).map_err(|e| format!("{path}: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(cmo_bench::json::BENCH_SCHEMA) => Ok(doc),
        Some(other) => Err(format!("{path}: unsupported schema {other:?}")),
        None => Err(format!("{path}: missing schema field")),
    }
}

fn rows(doc: &Json) -> Vec<(&str, &Json)> {
    doc.get("rows")
        .and_then(Json::as_arr)
        .map(|rows| {
            rows.iter()
                .filter_map(|row| {
                    let name = row.get("name")?.as_str()?;
                    let metrics = row.get("metrics")?;
                    Some((name, metrics))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold_pct = 15.0;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                let Some(value) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--threshold requires a numeric percent");
                    return ExitCode::from(2);
                };
                threshold_pct = value;
                i += 2;
            }
            other => {
                paths.push(other.to_owned());
                i += 1;
            }
        }
    }
    let [base_path, cand_path] = paths.as_slice() else {
        eprintln!("usage: bench-diff <baseline.json> <candidate.json> [--threshold <percent>]");
        return ExitCode::from(2);
    };

    let (base, cand) = match (load(base_path), load(cand_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-diff: {e}");
            return ExitCode::from(2);
        }
    };
    let (bfig, cfig) = (
        base.get("figure").and_then(Json::as_str).unwrap_or("?"),
        cand.get("figure").and_then(Json::as_str).unwrap_or("?"),
    );
    if bfig != cfig {
        eprintln!("bench-diff: figure mismatch ({bfig} vs {cfig})");
        return ExitCode::from(2);
    }

    let base_rows = rows(&base);
    let mut regressions = 0u32;
    let mut compared = 0u32;
    println!("bench-diff {bfig}: threshold {threshold_pct}% (deterministic counters only)");
    for (name, cand_metrics) in rows(&cand) {
        let Some((_, base_metrics)) = base_rows.iter().find(|(n, _)| *n == name) else {
            println!("  {name}: new row (no baseline), skipped");
            continue;
        };
        let Json::Obj(fields) = cand_metrics else {
            continue;
        };
        for (key, value) in fields {
            if informational(key) {
                continue;
            }
            let (Some(new), Some(old)) =
                (value.as_num(), base_metrics.get(key).and_then(Json::as_num))
            else {
                continue;
            };
            compared += 1;
            let limit = old * (1.0 + threshold_pct / 100.0);
            let delta_pct = if old > 0.0 {
                (new - old) / old * 100.0
            } else if new > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            if new > limit || (old == 0.0 && new > 0.0) {
                regressions += 1;
                println!("  REGRESSION {name}.{key}: {old} -> {new} ({delta_pct:+.1}%)");
            } else if delta_pct.abs() >= 0.05 {
                println!("  {name}.{key}: {old} -> {new} ({delta_pct:+.1}%)");
            }
        }
    }
    println!("compared {compared} deterministic metrics, {regressions} regression(s)");
    if regressions > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
