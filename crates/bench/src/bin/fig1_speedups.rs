//! Figure 1 (and the §2 narrative): relative speedup of aggressively
//! optimized programs with respect to the `+O2` default.
//!
//! The paper reports, for the eight SPECint95 benchmarks plus Mcad1-3,
//! the speedups at `+O2 +P` (PBO), `+O4` (CMO), and `+O4 +P`
//! (CMO+PBO), all relative to `+O2` — except Mcad3, whose baseline is
//! `+O1` because it never compiled at `+O2` scale. We reproduce the
//! same eleven-program table on the synthetic suite.
//!
//! Run with `cargo run --release -p cmo-bench --bin fig1_speedups`.

use cmo_bench::{measure_standard_levels, write_csv};
use cmo_synth::{generate, mcad_preset, spec_suite};

fn main() {
    println!("Figure 1: speedups relative to +O2 (Mcad3 relative to +O1)");
    println!(
        "{:<10} {:>9} {:>8} {:>8} {:>9} {:>10}",
        "program", "lines", "PBO", "CMO", "CMO+PBO", "baseline"
    );
    let mut rows = Vec::new();

    let mut suite: Vec<(cmo_synth::SynthSpec, f64, bool)> = spec_suite()
        .into_iter()
        .map(|s| (s, 100.0, false))
        .collect();
    // MCAD apps: selective CMO at the paper's operating point (~20 %
    // of call sites); Mcad3's baseline is +O1.
    suite.push((mcad_preset("mcad1", 0.5), 20.0, false));
    suite.push((mcad_preset("mcad2", 0.5), 20.0, false));
    suite.push((mcad_preset("mcad3", 0.5), 20.0, true));

    for (spec, sel, baseline_o1) in suite {
        let app = generate(&spec);
        let [o1, o2, o2p, o4, o4p] = measure_standard_levels(&app, sel).expect("build and run");
        let base = if baseline_o1 { o1.cycles } else { o2.cycles };
        let s = |m: &cmo_bench::Measured| base as f64 / m.cycles as f64;
        println!(
            "{:<10} {:>9} {:>8.3} {:>8.3} {:>9.3} {:>10}",
            app.name,
            app.total_lines,
            s(&o2p),
            s(&o4),
            s(&o4p),
            if baseline_o1 { "+O1" } else { "+O2" },
        );
        rows.push(format!(
            "{},{},{:.4},{:.4},{:.4},{}",
            app.name,
            app.total_lines,
            s(&o2p),
            s(&o4),
            s(&o4p),
            if baseline_o1 { "O1" } else { "O2" }
        ));
    }
    write_csv(
        "fig1_speedups.csv",
        "program,lines,pbo,cmo,cmo_pbo,baseline",
        &rows,
    );
    println!();
    println!("Paper (PLDI 1998, Figure 1): CMO+PBO up to 1.71x on Mcad1;");
    println!("every program gains; the combination beats either alone.");
}
