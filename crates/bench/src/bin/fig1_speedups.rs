//! Figure 1 (and the §2 narrative): relative speedup of aggressively
//! optimized programs with respect to the `+O2` default.
//!
//! The paper reports, for the eight SPECint95 benchmarks plus Mcad1-3,
//! the speedups at `+O2 +P` (PBO), `+O4` (CMO), and `+O4 +P`
//! (CMO+PBO), all relative to `+O2` — except Mcad3, whose baseline is
//! `+O1` because it never compiled at `+O2` scale. We reproduce the
//! same eleven-program table on the synthetic suite.
//!
//! Run with `cargo run --release -p cmo-bench --bin fig1_speedups`.
//! Flags: `--smoke` (two SPEC programs plus a small Mcad1),
//! `--json-out <path>` (write a `cmo.bench.v1` snapshot for
//! `bench-diff`).

use cmo_bench::{
    bench_args, measure_cache_tiers, measure_standard_levels, write_csv, BenchReport, BenchRow,
};
use cmo_synth::{generate, mcad_preset, spec_suite};

fn main() {
    let args = bench_args();
    println!("Figure 1: speedups relative to +O2 (Mcad3 relative to +O1)");
    println!(
        "{:<10} {:>9} {:>8} {:>8} {:>9} {:>10}",
        "program", "lines", "PBO", "CMO", "CMO+PBO", "baseline"
    );
    let mut rows = Vec::new();
    let mut snapshot = BenchReport::new("fig1", args.smoke);

    let mut suite: Vec<(cmo_synth::SynthSpec, f64, bool)> = if args.smoke {
        spec_suite()
            .into_iter()
            .take(2)
            .map(|s| (s, 100.0, false))
            .collect()
    } else {
        spec_suite()
            .into_iter()
            .map(|s| (s, 100.0, false))
            .collect()
    };
    // MCAD apps: selective CMO at the paper's operating point (~20 %
    // of call sites); Mcad3's baseline is +O1.
    let mcad_scale = if args.smoke { 0.25 } else { 0.5 };
    suite.push((mcad_preset("mcad1", mcad_scale), 20.0, false));
    if !args.smoke {
        suite.push((mcad_preset("mcad2", 0.5), 20.0, false));
        suite.push((mcad_preset("mcad3", 0.5), 20.0, true));
    }

    for (spec, sel, baseline_o1) in suite {
        let app = generate(&spec);
        let [o1, o2, o2p, o4, o4p] = measure_standard_levels(&app, sel).expect("build and run");
        let base = if baseline_o1 { o1.cycles } else { o2.cycles };
        let s = |m: &cmo_bench::Measured| base as f64 / m.cycles as f64;
        println!(
            "{:<10} {:>9} {:>8.3} {:>8.3} {:>9.3} {:>10}",
            app.name,
            app.total_lines,
            s(&o2p),
            s(&o4),
            s(&o4p),
            if baseline_o1 { "+O1" } else { "+O2" },
        );
        rows.push(format!(
            "{},{},{:.4},{:.4},{:.4},{}",
            app.name,
            app.total_lines,
            s(&o2p),
            s(&o4),
            s(&o4p),
            if baseline_o1 { "O1" } else { "O2" }
        ));
        // The simulated cycle counts are deterministic: gate on them
        // directly, and keep the derived speedups informational.
        let mut row = BenchRow::new(app.name.clone());
        row.int("lines", app.total_lines as u64)
            .int("baseline_cycles", base)
            .int("pbo_cycles", o2p.cycles)
            .int("cmo_cycles", o4.cycles)
            .int("cmo_pbo_cycles", o4p.cycles)
            .int("cmo_pbo_compile_work", o4p.report.compile_work)
            .float("speedup_pbo", s(&o2p))
            .float("speedup_cmo", s(&o4))
            .float("speedup_cmo_pbo", s(&o4p));
        snapshot.rows.push(row);
    }
    // Cache-tier scenario on the first SPEC program: cold vs
    // local-warm vs remote-warm work units, gated deterministically.
    let tiers_app = generate(&spec_suite().into_iter().next().expect("non-empty suite"));
    let tiers = measure_cache_tiers(&tiers_app);
    println!(
        "cache tiers on {}: cold {} work, local-warm {} work, remote-warm {} work ({} bytes fetched)",
        tiers_app.name,
        tiers.cold_work,
        tiers.local_warm_work,
        tiers.remote_warm_work,
        tiers.remote_fetched_bytes
    );
    let mut row = BenchRow::new(format!("{}-cache-tiers", tiers_app.name));
    row.int("cold_work", tiers.cold_work)
        .int("local_warm_work", tiers.local_warm_work)
        .int("remote_warm_work", tiers.remote_warm_work)
        .int("remote_fetched_bytes", tiers.remote_fetched_bytes);
    snapshot.rows.push(row);

    if let Some(path) = &args.json_out {
        snapshot.write(path);
    }
    write_csv(
        "fig1_speedups.csv",
        "program,lines,pbo,cmo,cmo_pbo,baseline",
        &rows,
    );
    println!();
    println!("Paper (PLDI 1998, Figure 1): CMO+PBO up to 1.71x on Mcad1;");
    println!("every program gains; the combination beats either alone.");
}
