#![warn(missing_docs)]
//! Shared measurement plumbing for the figure-regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure from
//! the paper's evaluation and prints the same rows/series the paper
//! reports, plus a CSV copy under `results/` for plotting. Absolute
//! numbers differ from the paper (our substrate is a simulated
//! machine, not a 180 MHz PA-8000); the *shapes* — who wins, rough
//! factors, crossovers — are the reproduction target. See
//! EXPERIMENTS.md for the paper-vs-measured record.

use cmo::{
    BuildCache, BuildError, BuildOptions, BuildOutput, CompileReport, Compiler, LoopbackTransport,
    MemStorage, OptLevel, ProfileDb, RemoteStorage, RetryPolicy, Storage, Telemetry, TieredStorage,
};
use cmo_synth::SynthApp;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

pub mod json;

pub use json::{bench_args, parse_json, BenchArgs, BenchReport, BenchRow, BenchValue, Json};

/// One build + one reference run, with wall-clock compile time.
#[derive(Debug)]
pub struct Measured {
    /// The build (image + report).
    pub output: BuildOutput,
    /// The unified `cmo.report.v1` view of the build — the single
    /// stats surface every figure binary reads.
    pub report: CompileReport,
    /// Simulated run cycles on the reference input.
    pub cycles: u64,
    /// Output checksum (for cross-configuration equality checks).
    pub checksum: u64,
    /// Wall-clock build time in milliseconds.
    pub compile_ms: f64,
    /// Wall-clock nanoseconds spent inside the `hlo` phase, read from
    /// the build's telemetry phase records. Zero when the build ran
    /// with telemetry disabled (phase timing needs an enabled sink).
    pub hlo_wall_nanos: u64,
}

/// Loads every module of `app` into a fresh driver.
///
/// # Panics
///
/// Panics on generator-produced source that fails to compile (a bug).
#[must_use]
pub fn compiler_for(app: &SynthApp) -> Compiler {
    let mut cc = Compiler::new();
    for (name, source) in &app.modules {
        cc.add_source(name, source)
            .unwrap_or_else(|e| panic!("generated module {name} failed: {e}"));
    }
    cc
}

/// Trains a profile database on the app's training input.
///
/// # Errors
///
/// Propagates build or run failures.
pub fn train(cc: &Compiler, app: &SynthApp) -> Result<ProfileDb, BuildError> {
    let instrumented = cc.build(&BuildOptions::instrumented())?;
    instrumented.run_for_profile(&app.train_input)
}

/// Builds with `options` and runs on the reference input.
///
/// # Errors
///
/// Propagates build or run failures.
pub fn measure(
    cc: &Compiler,
    app: &SynthApp,
    options: &BuildOptions,
) -> Result<Measured, BuildError> {
    let t0 = Instant::now();
    let output = cc.build(options)?;
    let compile_ms = t0.elapsed().as_secs_f64() * 1e3;
    let hlo_wall_nanos = options
        .telemetry
        .phases()
        .iter()
        .find(|p| p.name == "hlo")
        .map_or(0, |p| p.wall_nanos);
    let r = output.run(&app.ref_input)?;
    let report = output.compile_report();
    Ok(Measured {
        output,
        report,
        cycles: r.cycles,
        checksum: r.checksum,
        compile_ms,
        hlo_wall_nanos,
    })
}

/// Builds the same configuration at several `-j` worker counts and
/// returns `(jobs, Measured)` rows for wall-clock comparison.
///
/// Every parallel build must reproduce the single-worker build
/// exactly — same output checksum, same unified report — so the only
/// thing allowed to vary down the rows is wall-clock time. (On a
/// single-core runner the times will simply be similar; no speedup is
/// asserted.)
///
/// # Errors
///
/// Propagates build or run failures.
///
/// # Panics
///
/// Panics if a worker count changes the checksum or the report.
pub fn measure_at_jobs(
    cc: &Compiler,
    app: &SynthApp,
    options: &BuildOptions,
    jobs: &[usize],
) -> Result<Vec<(usize, Measured)>, BuildError> {
    let mut rows: Vec<(usize, Measured)> = Vec::with_capacity(jobs.len());
    for &j in jobs {
        // Fresh telemetry per build: phase records must cover exactly
        // this build (a shared sink would accumulate phases across the
        // sweep), and `hlo_wall_nanos` needs an enabled sink.
        let mut o = options.clone().with_jobs(j);
        o.telemetry = Telemetry::enabled();
        let m = measure(cc, app, &o)?;
        if let Some((j0, first)) = rows.first() {
            assert_eq!(
                first.checksum, m.checksum,
                "-j{j} changed the output vs -j{j0}"
            );
            assert_eq!(
                first.report.to_json(),
                m.report.to_json(),
                "-j{j} changed the report vs -j{j0}"
            );
        }
        rows.push((j, m));
    }
    Ok(rows)
}

/// The five standard configurations of Figure 1.
///
/// # Errors
///
/// Propagates build or run failures.
///
/// # Panics
///
/// Panics if any configuration changes the output checksum
/// (miscompile).
pub fn measure_standard_levels(
    app: &SynthApp,
    sel_percent: f64,
) -> Result<[Measured; 5], BuildError> {
    let cc = compiler_for(app);
    let db = train(&cc, app)?;
    let o1 = measure(&cc, app, &BuildOptions::new(OptLevel::O1))?;
    let o2 = measure(&cc, app, &BuildOptions::o2())?;
    let o2p = measure(&cc, app, &BuildOptions::o2().with_profile_db(db.clone()))?;
    let o4 = measure(&cc, app, &BuildOptions::new(OptLevel::O4))?;
    let o4p = measure(
        &cc,
        app,
        &BuildOptions::new(OptLevel::O4)
            .with_profile_db(db)
            .with_selectivity(sel_percent),
    )?;
    for m in [&o2, &o2p, &o4, &o4p] {
        assert_eq!(o1.checksum, m.checksum, "miscompile in {}", app.name);
    }
    Ok([o1, o2, o2p, o4, o4p])
}

/// Deterministic work-unit cost of one `+O4` cached build in the
/// three cache scenarios the remote tier adds: cold (empty cache),
/// local-warm (second build on the same local store), and remote-warm
/// (fresh machine, empty local tier, warm `cmocached` daemon reached
/// through the in-process loopback transport).
#[derive(Debug)]
pub struct CacheTierWork {
    /// Work units of the cold build.
    pub cold_work: u64,
    /// Work units of the local-warm replay.
    pub local_warm_work: u64,
    /// Work units of the remote-warm replay (includes the wire
    /// fetches that populate the local tier).
    pub remote_warm_work: u64,
    /// Payload bytes the remote-warm replay fetched from the daemon.
    pub remote_fetched_bytes: u64,
}

/// Measures [`CacheTierWork`] for `app`. All three counts come off the
/// deterministic work-unit clock (the loopback transport never sleeps
/// and a healthy wire schedules no backoff), so bench-diff can gate
/// them.
///
/// # Panics
///
/// Panics if any build fails — the storage here is in-memory and the
/// wire is loopback, so a failure is a bug.
#[must_use]
pub fn measure_cache_tiers(app: &SynthApp) -> CacheTierWork {
    let cc = compiler_for(app);
    let build = |storage: Arc<dyn Storage>| -> u64 {
        let tel = Telemetry::enabled();
        let mut bcache = BuildCache::open_on(Arc::clone(&storage), &tel).expect("open bench cache");
        let mut opts = BuildOptions::new(OptLevel::O4);
        opts.telemetry = tel.clone();
        cc.build_cached(&opts, &mut bcache).expect("cached build");
        tel.current_work()
    };
    let tier_over = |daemon: &Arc<MemStorage>| -> Arc<dyn Storage> {
        let transport = Arc::new(LoopbackTransport::over(
            Arc::clone(daemon) as Arc<dyn Storage>
        ));
        let remote = RemoteStorage::new(transport, RetryPolicy::default());
        Arc::new(TieredStorage::new(
            Arc::new(MemStorage::new()) as Arc<dyn Storage>,
            Arc::new(remote),
        ))
    };

    let local = Arc::new(MemStorage::new());
    let cold_work = build(Arc::clone(&local) as Arc<dyn Storage>);
    let local_warm_work = build(local as Arc<dyn Storage>);

    let daemon = Arc::new(MemStorage::new());
    build(tier_over(&daemon)); // one machine's cold build warms the daemon
    let fresh_machine = tier_over(&daemon);
    let remote_warm_work = build(Arc::clone(&fresh_machine));
    let remote_fetched_bytes = fresh_machine.remote_stats().map_or(0, |s| s.fetched_bytes);
    CacheTierWork {
        cold_work,
        local_warm_work,
        remote_warm_work,
        remote_fetched_bytes,
    }
}

/// Writes a CSV file under `results/`, creating the directory.
///
/// # Panics
///
/// Panics on I/O failure (benches run in a writable checkout).
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for row in rows {
        writeln!(f, "{row}").expect("write row");
    }
    eprintln!("wrote {}", path.display());
}
