//! Versioned benchmark snapshots (`cmo.bench.v1`) and the minimal
//! JSON plumbing `bench-diff` needs to compare two of them.
//!
//! The figure binaries emit one [`BenchReport`] per run via
//! `--json-out`. A report carries three kinds of numbers:
//!
//! * **deterministic counters** (work-unit clock, loader work,
//!   peak accounted bytes) — integer metrics, identical run-to-run
//!   and machine-to-machine, the only thing `bench-diff` gates on;
//! * **wall-clock** milliseconds — informational, machine-dependent,
//!   never gated (keys start with `wall_`);
//! * **derived ratios** (speedups, reduction percentages) — also
//!   informational floats.
//!
//! The parser below handles exactly the JSON subset the writer emits
//! (objects, arrays, strings, numbers, booleans, null) so the harness
//! stays dependency-free.

use std::fmt::Write as _;
use std::path::Path;

/// Schema tag stamped into every benchmark snapshot.
pub const BENCH_SCHEMA: &str = "cmo.bench.v1";

/// One metric value: deterministic counter or informational float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BenchValue {
    /// Deterministic counter — gated by `bench-diff`.
    Int(u64),
    /// Informational measurement (wall-clock, ratio) — never gated.
    Float(f64),
}

/// One labelled row of a figure (a configuration, scale, or scenario).
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Stable row label (`"offload"`, `"8100-lines"`, `"warm"`, ...).
    pub name: String,
    /// Ordered metric key/value pairs.
    pub metrics: Vec<(String, BenchValue)>,
}

impl BenchRow {
    /// A row with no metrics yet.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        BenchRow {
            name: name.into(),
            metrics: Vec::new(),
        }
    }

    /// Appends a deterministic counter metric.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.metrics.push((key.to_owned(), BenchValue::Int(value)));
        self
    }

    /// Appends an informational float metric (wall-clock, ratio).
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        self.metrics
            .push((key.to_owned(), BenchValue::Float(value)));
        self
    }
}

/// A complete `cmo.bench.v1` snapshot of one figure run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Which figure produced this (`"fig4"`, `"fig5"`, `"fig7"`).
    pub figure: &'static str,
    /// `"smoke"` (CI sizes) or `"full"` (paper-scale sizes).
    pub mode: &'static str,
    /// One row per configuration/scale/scenario.
    pub rows: Vec<BenchRow>,
}

impl BenchReport {
    /// An empty report for `figure` in the given mode.
    #[must_use]
    pub fn new(figure: &'static str, smoke: bool) -> Self {
        BenchReport {
            figure,
            mode: if smoke { "smoke" } else { "full" },
            rows: Vec::new(),
        }
    }

    /// Renders the snapshot as pretty-printed JSON.
    ///
    /// Integer metrics print as integers, floats with three decimals —
    /// enough for wall-clock milliseconds, and regular enough for the
    /// hand-rolled parser on the other end.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{BENCH_SCHEMA}\",");
        let _ = writeln!(out, "  \"figure\": \"{}\",", self.figure);
        let _ = writeln!(out, "  \"mode\": \"{}\",", self.mode);
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": \"{}\",", row.name);
            out.push_str("      \"metrics\": {\n");
            for (j, (key, value)) in row.metrics.iter().enumerate() {
                let comma = if j + 1 == row.metrics.len() { "" } else { "," };
                match value {
                    BenchValue::Int(v) => {
                        let _ = writeln!(out, "        \"{key}\": {v}{comma}");
                    }
                    BenchValue::Float(v) => {
                        let _ = writeln!(out, "        \"{key}\": {v:.3}{comma}");
                    }
                }
            }
            out.push_str("      }\n");
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            let _ = writeln!(out, "    }}{comma}");
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the snapshot to `path`, creating parent directories.
    ///
    /// # Panics
    ///
    /// Panics on I/O failure (benches run in a writable checkout).
    pub fn write(&self, path: &Path) {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("create json-out dir");
            }
        }
        std::fs::write(path, self.to_json()).expect("write bench json");
        eprintln!("wrote {}", path.display());
    }
}

/// Flags shared by the figure binaries.
#[derive(Debug, Default, Clone)]
pub struct BenchArgs {
    /// `--smoke`: CI-sized inputs instead of paper-scale ones.
    pub smoke: bool,
    /// `--json-out <path>`: where to write the `cmo.bench.v1` snapshot.
    pub json_out: Option<std::path::PathBuf>,
}

/// Parses `--smoke` and `--json-out <path>` from the process args.
///
/// # Panics
///
/// Panics on unknown flags or a missing `--json-out` operand, printing
/// usage — these binaries are run by hand or by CI, not as a library.
#[must_use]
pub fn bench_args() -> BenchArgs {
    let mut parsed = BenchArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => parsed.smoke = true,
            "--json-out" => {
                let path = args.next().unwrap_or_else(|| {
                    panic!("--json-out requires a path operand");
                });
                parsed.json_out = Some(path.into());
            }
            other => panic!("unknown flag {other:?}; supported: --smoke, --json-out <path>"),
        }
    }
    parsed
}

/// A parsed JSON value — just enough structure for `bench-diff`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53, ample for counters).
    Num(f64),
    /// A string (no escape handling beyond `\"` and `\\` — the writer
    /// never emits anything else).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable message with a byte offset on malformed
/// input or trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", ch as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_owned());
            }
            b'\\' => match bytes.get(*pos) {
                Some(&e @ (b'"' | b'\\' | b'/')) => {
                    out.push(e);
                    *pos += 1;
                }
                Some(b'n') => {
                    out.push(b'\n');
                    *pos += 1;
                }
                Some(b't') => {
                    out.push(b'\t');
                    *pos += 1;
                }
                _ => return Err(format!("unsupported escape at byte {}", *pos)),
            },
            _ => out.push(b),
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_parser() {
        let mut report = BenchReport::new("fig5", true);
        let mut row = BenchRow::new("offload");
        row.int("work_units", 123_456)
            .int("peak_bytes", 9_000)
            .float("wall_ms_j1", 12.5);
        report.rows.push(row);
        let json = report.to_json();
        let parsed = parse_json(&json).expect("parse");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some(BENCH_SCHEMA)
        );
        assert_eq!(parsed.get("figure").and_then(Json::as_str), Some("fig5"));
        let rows = parsed.get("rows").and_then(Json::as_arr).expect("rows");
        assert_eq!(rows.len(), 1);
        let metrics = rows[0].get("metrics").expect("metrics");
        assert_eq!(
            metrics.get("work_units").and_then(Json::as_num),
            Some(123_456.0)
        );
        assert_eq!(metrics.get("wall_ms_j1").and_then(Json::as_num), Some(12.5));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
    }

    #[test]
    fn parser_handles_nesting_and_literals() {
        let v = parse_json(r#"{"a": [1, -2.5, true, null], "b": {"c": "x"}}"#).expect("parse");
        let a = v.get("a").and_then(Json::as_arr).expect("a");
        assert_eq!(a[0].as_num(), Some(1.0));
        assert_eq!(a[1].as_num(), Some(-2.5));
        assert_eq!(a[2], Json::Bool(true));
        assert_eq!(a[3], Json::Null);
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x")
        );
    }
}
