//! Criterion bench: the cross-module inliner in isolation — call-graph
//! construction plus a full inline pass over a linked program.

use cmo_bench::{compiler_for, train};
use cmo_hlo::{inline_pass, HloSession, InlineOptions};
use cmo_ir::link_objects;
use cmo_naim::NaimConfig;
use cmo_synth::{generate, spec_preset};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_inliner(c: &mut Criterion) {
    let app = generate(&spec_preset("vortex"));
    let cc = compiler_for(&app);
    let db = train(&cc, &app).expect("train");
    let objects: Vec<cmo_ir::IlObject> = app
        .modules
        .iter()
        .map(|(n, s)| cmo::compile_module(n, s).unwrap())
        .collect();

    let mut group = c.benchmark_group("inliner");
    group.sample_size(10);
    group.bench_function("inline_pass", |b| {
        b.iter_batched(
            || {
                let unit = link_objects(objects.clone()).unwrap();
                HloSession::new(unit, NaimConfig::default(), Some(&db)).unwrap()
            },
            |mut session| black_box(inline_pass(&mut session, &InlineOptions::default()).unwrap()),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_inliner);
criterion_main!(benches);
