//! Criterion bench: NAIM loader overhead at each capability level
//! (the host-time companion to `fig5_time_space`). Measures a full
//! HLO-phase workload — read-in, analysis, inlining — under each
//! loader configuration.

use cmo::{BuildOptions, NaimConfig, NaimLevel, OptLevel};
use cmo_bench::{compiler_for, train};
use cmo_synth::{generate, spec_preset};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_naim_levels(c: &mut Criterion) {
    let mut spec = spec_preset("gcc");
    spec.modules = 12;
    let app = generate(&spec);
    let cc = compiler_for(&app);
    let db = train(&cc, &app).expect("train");
    let budget = 400 << 10;

    let mut group = c.benchmark_group("naim");
    group.sample_size(10);
    for (name, naim) in [
        ("off", NaimConfig::disabled()),
        (
            "compact_ir",
            NaimConfig::with_budget(budget).max_level(NaimLevel::CompactIr),
        ),
        (
            "compact_all",
            NaimConfig::with_budget(budget).max_level(NaimLevel::CompactAll),
        ),
        (
            "offload",
            NaimConfig::with_budget(budget).max_level(NaimLevel::Offload),
        ),
    ] {
        let opts = BuildOptions::new(OptLevel::O4)
            .with_profile_db(db.clone())
            .with_selectivity(100.0)
            .with_naim(naim);
        group.bench_function(name, |b| b.iter(|| black_box(cc.build(&opts).unwrap())));
    }
    group.finish();
}

criterion_group!(benches, bench_naim_levels);
criterion_main!(benches);
