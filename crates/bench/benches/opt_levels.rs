//! Criterion bench: wall-clock build cost at each optimization level,
//! plus execution throughput of the resulting images. Complements
//! `fig1_speedups` (which reports simulated cycles) with host-time
//! measurements.

use cmo::{BuildOptions, OptLevel};
use cmo_bench::{compiler_for, train};
use cmo_synth::{generate, spec_preset};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_builds(c: &mut Criterion) {
    let app = generate(&spec_preset("compress"));
    let cc = compiler_for(&app);
    let db = train(&cc, &app).expect("train");

    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    group.bench_function("o2", |b| {
        b.iter(|| black_box(cc.build(&BuildOptions::o2()).unwrap()))
    });
    group.bench_function("o2_pbo", |b| {
        let opts = BuildOptions::o2().with_profile_db(db.clone());
        b.iter(|| black_box(cc.build(&opts).unwrap()))
    });
    group.bench_function("o4", |b| {
        let opts = BuildOptions::new(OptLevel::O4);
        b.iter(|| black_box(cc.build(&opts).unwrap()))
    });
    group.bench_function("o4_pbo", |b| {
        let opts = BuildOptions::new(OptLevel::O4)
            .with_profile_db(db.clone())
            .with_selectivity(100.0);
        b.iter(|| black_box(cc.build(&opts).unwrap()))
    });
    group.finish();
}

fn bench_execution(c: &mut Criterion) {
    let app = generate(&spec_preset("compress"));
    let cc = compiler_for(&app);
    let db = train(&cc, &app).expect("train");
    let o2 = cc.build(&BuildOptions::o2()).unwrap();
    let o4p = cc
        .build(
            &BuildOptions::new(OptLevel::O4)
                .with_profile_db(db)
                .with_selectivity(100.0),
        )
        .unwrap();

    let mut group = c.benchmark_group("execute");
    group.sample_size(10);
    group.bench_function("o2_image", |b| {
        b.iter(|| black_box(o2.run(&app.ref_input).unwrap()))
    });
    group.bench_function("o4_pbo_image", |b| {
        b.iter(|| black_box(o4p.run(&app.ref_input).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_builds, bench_execution);
criterion_main!(benches);
