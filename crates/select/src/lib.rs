#![warn(missing_docs)]
//! Selectivity: focusing optimization effort with profile data (§5).
//!
//! Compiling more code costs more time and memory, so the compiler
//! uses profile data to decide *where* to spend effort:
//!
//! * **Coarse-grained** ([`coarse_select`]): the user specifies a
//!   selection percentage; the compiler ranks every call site in the
//!   program by call frequency, retains the selected percentage, and
//!   marks the modules containing the callers and callees of those
//!   sites for CMO+PBO compilation. All other modules bypass HLO
//!   entirely and are compiled at the default level (with PBO).
//! * **Fine-grained**: within CMO modules, only the routines involved
//!   in selected sites are candidates for inlining and aggressive
//!   optimization; the rest are scanned once for global data-access
//!   facts and left unloaded.
//! * **Multi-layered** ([`layered_levels`]): the §8 extension — rather
//!   than a binary optimized/not-optimized split, routines are binned
//!   into aggressive / standard / minimal levels by execution
//!   frequency.
//!
//! All rankings are deterministic: ties break by routine name and site
//! index (§6.2).

use cmo_ir::{CallSiteId, Instr, ModuleId, Program, RoutineBody, RoutineId};
use cmo_profile::ProfileDb;
use cmo_telemetry::{Telemetry, TraceEvent};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A selectivity request the compiler cannot honor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectError {
    /// The selection percentage was NaN or infinite. A NaN percentage
    /// silently propagating through the ranking math would select zero
    /// sites with no diagnostic, so it is rejected up front.
    NonFinitePercent(f64),
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectError::NonFinitePercent(p) => {
                write!(f, "selectivity percentage must be finite, got {p}")
            }
        }
    }
}

impl std::error::Error for SelectError {}

/// One ranked call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedSite {
    /// The routine containing the call.
    pub caller: RoutineId,
    /// The call site within the caller.
    pub site: CallSiteId,
    /// The resolved callee.
    pub callee: RoutineId,
    /// Profile count (0 when untrained — §6.2's caveat that untrained
    /// code may go under-optimized applies here too).
    pub count: u64,
}

/// The outcome of coarse- plus fine-grained selection.
#[derive(Debug, Clone, Default)]
pub struct SelectionPlan {
    /// Modules to compile with CMO+PBO.
    pub cmo_modules: BTreeSet<ModuleId>,
    /// The selected (hot) call sites.
    pub selected_sites: Vec<RankedSite>,
    /// Routines eligible for aggressive interprocedural optimization
    /// (fine-grained selection): callers and callees of selected
    /// sites.
    pub hot_routines: BTreeSet<RoutineId>,
    /// Fraction of program source lines inside CMO modules, the
    /// Figure 6 x-axis.
    pub loc_fraction: f64,
}

impl SelectionPlan {
    /// Returns `true` if `m` was selected for CMO.
    #[must_use]
    pub fn is_cmo_module(&self, m: ModuleId) -> bool {
        self.cmo_modules.contains(&m)
    }

    /// Returns `true` if `r` is eligible for aggressive optimization.
    #[must_use]
    pub fn is_hot(&self, r: RoutineId) -> bool {
        self.hot_routines.contains(&r)
    }
}

/// Enumerates every call site in the program with its profile count,
/// ranked by descending count (ties by caller name, then site id).
#[must_use]
pub fn rank_sites(program: &Program, bodies: &[RoutineBody], db: &ProfileDb) -> Vec<RankedSite> {
    let mut sites = Vec::new();
    for (i, body) in bodies.iter().enumerate() {
        let caller = RoutineId::from_index(i);
        let caller_name = program.name(program.routine(caller).name);
        for block in &body.blocks {
            for instr in &block.instrs {
                if let Instr::Call { callee, site, .. } = instr {
                    sites.push(RankedSite {
                        caller,
                        site: *site,
                        callee: callee.id(),
                        count: db.site_count(caller_name, site.0).unwrap_or(0),
                    });
                }
            }
        }
    }
    sites.sort_by(|a, b| {
        b.count
            .cmp(&a.count)
            .then_with(|| {
                let an = program.name(program.routine(a.caller).name);
                let bn = program.name(program.routine(b.caller).name);
                an.cmp(bn)
            })
            .then(a.site.cmp(&b.site))
    });
    sites
}

/// Coarse-grained selection: retain the top `percent`% of call sites
/// and mark the modules of their callers and callees for CMO (§5).
///
/// Finite `percent` values are clamped to `[0, 100]`. With 0 no module
/// is selected; with 100 every module containing or targeted by any
/// call is.
///
/// # Errors
///
/// Returns [`SelectError::NonFinitePercent`] for NaN or infinite
/// `percent` — `NaN.clamp(0.0, 100.0)` stays NaN, and
/// `(len as f64 * NaN / 100.0).ceil() as usize` collapses to 0, which
/// used to silently deselect every site.
pub fn coarse_select(
    program: &Program,
    bodies: &[RoutineBody],
    db: &ProfileDb,
    percent: f64,
) -> Result<SelectionPlan, SelectError> {
    coarse_select_traced(program, bodies, db, percent, &Telemetry::disabled())
}

/// Like [`coarse_select`], but emits a [`TraceEvent::SelectSite`] for
/// every ranked site (kept or cut, with its rank and count) and a
/// [`TraceEvent::SelectModule`] for every module, into `telemetry`.
///
/// # Errors
///
/// Returns [`SelectError::NonFinitePercent`] for NaN or infinite
/// `percent`.
pub fn coarse_select_traced(
    program: &Program,
    bodies: &[RoutineBody],
    db: &ProfileDb,
    percent: f64,
    telemetry: &Telemetry,
) -> Result<SelectionPlan, SelectError> {
    if !percent.is_finite() {
        return Err(SelectError::NonFinitePercent(percent));
    }
    let percent = percent.clamp(0.0, 100.0);
    let ranked = rank_sites(program, bodies, db);
    let keep = ((ranked.len() as f64) * percent / 100.0).ceil() as usize;
    let keep = if percent == 0.0 {
        0
    } else {
        keep.max(1).min(ranked.len())
    };
    if telemetry.is_enabled() {
        for (rank, s) in ranked.iter().enumerate() {
            telemetry.emit(TraceEvent::SelectSite {
                caller: program.name(program.routine(s.caller).name).to_owned(),
                site: s.site.0,
                rank: rank as u32,
                count: s.count,
                selected: rank < keep,
            });
        }
    }
    let selected: Vec<RankedSite> = ranked.into_iter().take(keep).collect();

    let mut plan = SelectionPlan::default();
    let mut module_sites: BTreeMap<ModuleId, u32> = BTreeMap::new();
    for s in &selected {
        for m in [
            program.routine(s.caller).module,
            program.routine(s.callee).module,
        ] {
            plan.cmo_modules.insert(m);
            *module_sites.entry(m).or_insert(0) += 1;
        }
        plan.hot_routines.insert(s.caller);
        plan.hot_routines.insert(s.callee);
    }
    if telemetry.is_enabled() {
        for m in 0..program.modules().len() {
            let mid = ModuleId::from_index(m);
            telemetry.emit(TraceEvent::SelectModule {
                module: program.name(program.module(mid).name).to_owned(),
                sites: module_sites.get(&mid).copied().unwrap_or(0),
                selected: plan.cmo_modules.contains(&mid),
            });
        }
    }
    plan.selected_sites = selected;
    let total: u64 = program.total_source_lines();
    let in_cmo: u64 = plan
        .cmo_modules
        .iter()
        .map(|&m| u64::from(program.module(m).source_lines))
        .sum();
    plan.loc_fraction = if total == 0 {
        0.0
    } else {
        in_cmo as f64 / total as f64
    };
    Ok(plan)
}

/// Optimization layer assigned to a routine by the multi-layered
/// strategy (§8): hot code gets CMO, warm code standard optimization,
/// and code that "is executed little or not at all may not be
/// optimized at all".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptLayer {
    /// Barely or never executed: minimal optimization (+O1).
    Minimal,
    /// Moderately executed: standard optimization (+O2).
    Standard,
    /// Hot: full CMO+PBO treatment (+O4 +P).
    Aggressive,
}

/// Assigns an [`OptLayer`] to every routine by entry-count bands:
/// routines covering the top `hot_fraction` of total entries are
/// `Aggressive`; routines with zero entries are `Minimal`; the rest
/// `Standard`.
#[must_use]
pub fn layered_levels(
    program: &Program,
    db: &ProfileDb,
    hot_fraction: f64,
) -> BTreeMap<RoutineId, OptLayer> {
    let mut counts: Vec<(RoutineId, u64)> = (0..program.routines().len())
        .map(|i| {
            let rid = RoutineId::from_index(i);
            let name = program.name(program.routine(rid).name);
            (rid, db.entry_count(name))
        })
        .collect();
    let total: u64 = counts.iter().map(|&(_, c)| c).sum();
    counts.sort_by(|a, b| {
        b.1.cmp(&a.1).then_with(|| {
            program
                .name(program.routine(a.0).name)
                .cmp(program.name(program.routine(b.0).name))
        })
    });
    let mut layers = BTreeMap::new();
    let budget = (total as f64 * hot_fraction.clamp(0.0, 1.0)) as u64;
    let mut covered = 0u64;
    for (rid, c) in counts {
        let layer = if c == 0 {
            OptLayer::Minimal
        } else if covered < budget {
            covered += c;
            OptLayer::Aggressive
        } else {
            OptLayer::Standard
        };
        layers.insert(rid, layer);
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmo_frontend::compile_module;
    use cmo_ir::link_objects;
    use cmo_profile::{ProbeKey, RoutineShape};

    /// Three modules: hot calls helper_hot often, cold calls
    /// helper_cold rarely.
    fn fixture() -> (Program, Vec<RoutineBody>, ProfileDb) {
        let main_src = r#"
            extern fn helper_hot(x: int) -> int;
            extern fn helper_cold(x: int) -> int;
            fn main() -> int {
                var a: int = helper_hot(1);
                var b: int = helper_cold(2);
                return a + b;
            }
        "#;
        let hot_src = "fn helper_hot(x: int) -> int { return x + 1; }";
        let cold_src = "fn helper_cold(x: int) -> int { return x + 2; }";
        let unit = link_objects(vec![
            compile_module("main_mod", main_src).unwrap(),
            compile_module("hot_mod", hot_src).unwrap(),
            compile_module("cold_mod", cold_src).unwrap(),
        ])
        .unwrap();
        let mut db = ProfileDb::new();
        db.record(
            &[
                (ProbeKey::site("main", 0), 10_000),
                (ProbeKey::site("main", 1), 1),
                (ProbeKey::block("main", 0), 1),
                (ProbeKey::block("helper_hot", 0), 10_000),
                (ProbeKey::block("helper_cold", 0), 1),
            ],
            &[
                (
                    "main".to_owned(),
                    RoutineShape {
                        n_blocks: 1,
                        n_sites: 2,
                        fingerprint: 1,
                    },
                ),
                (
                    "helper_hot".to_owned(),
                    RoutineShape {
                        n_blocks: 1,
                        n_sites: 0,
                        fingerprint: 2,
                    },
                ),
                (
                    "helper_cold".to_owned(),
                    RoutineShape {
                        n_blocks: 1,
                        n_sites: 0,
                        fingerprint: 3,
                    },
                ),
            ],
        );
        (unit.program, unit.bodies, db)
    }

    #[test]
    fn ranking_orders_by_count() {
        let (program, bodies, db) = fixture();
        let ranked = rank_sites(&program, &bodies, &db);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].count, 10_000);
        assert_eq!(ranked[1].count, 1);
    }

    #[test]
    fn half_selection_takes_the_hot_module_only() {
        let (program, bodies, db) = fixture();
        let plan = coarse_select(&program, &bodies, &db, 50.0).unwrap();
        assert_eq!(plan.selected_sites.len(), 1);
        // main_mod (caller) + hot_mod (callee), but not cold_mod.
        assert_eq!(plan.cmo_modules.len(), 2);
        let names: Vec<&str> = plan
            .cmo_modules
            .iter()
            .map(|&m| program.name(program.module(m).name))
            .collect();
        assert!(names.contains(&"main_mod"));
        assert!(names.contains(&"hot_mod"));
        assert!(!names.contains(&"cold_mod"));
        assert!(plan.loc_fraction > 0.0 && plan.loc_fraction < 1.0);
    }

    #[test]
    fn full_selection_takes_everything_zero_takes_nothing() {
        let (program, bodies, db) = fixture();
        let all = coarse_select(&program, &bodies, &db, 100.0).unwrap();
        assert_eq!(all.cmo_modules.len(), 3);
        let none = coarse_select(&program, &bodies, &db, 0.0).unwrap();
        assert!(none.cmo_modules.is_empty());
        assert!(none.selected_sites.is_empty());
        assert_eq!(none.loc_fraction, 0.0);
    }

    #[test]
    fn fine_grained_marks_callers_and_callees() {
        let (program, bodies, db) = fixture();
        let plan = coarse_select(&program, &bodies, &db, 50.0).unwrap();
        let main = program.find_routine("main").unwrap();
        let hot = program.find_routine("helper_hot").unwrap();
        let cold = program.find_routine("helper_cold").unwrap();
        assert!(plan.is_hot(main));
        assert!(plan.is_hot(hot));
        assert!(!plan.is_hot(cold));
    }

    #[test]
    fn selection_without_profile_still_works() {
        let (program, bodies, _) = fixture();
        let empty = ProfileDb::new();
        // All counts are zero; 100% still selects every module, with
        // deterministic tie-breaking.
        let plan = coarse_select(&program, &bodies, &empty, 100.0).unwrap();
        assert_eq!(plan.cmo_modules.len(), 3);
        let plan2 = coarse_select(&program, &bodies, &empty, 100.0).unwrap();
        assert_eq!(plan.selected_sites, plan2.selected_sites);
    }

    #[test]
    fn layers_follow_frequency_bands() {
        let (program, _, db) = fixture();
        let layers = layered_levels(&program, &db, 0.9);
        let main = program.find_routine("main").unwrap();
        let hot = program.find_routine("helper_hot").unwrap();
        let cold = program.find_routine("helper_cold").unwrap();
        assert_eq!(layers[&hot], OptLayer::Aggressive);
        assert_eq!(layers[&cold], OptLayer::Standard);
        // main ran once: it is warm, not hot.
        assert!(layers[&main] >= OptLayer::Standard);
    }

    #[test]
    fn non_finite_percent_is_rejected() {
        // Regression: NaN used to flow through clamp() and the
        // keep-count math, silently selecting zero sites.
        let (program, bodies, db) = fixture();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                matches!(
                    coarse_select(&program, &bodies, &db, bad),
                    Err(SelectError::NonFinitePercent(_))
                ),
                "percent {bad} must be rejected"
            );
        }
    }

    #[test]
    fn untrained_routine_gets_minimal_layer() {
        let (program, _, _) = fixture();
        let empty = ProfileDb::new();
        let layers = layered_levels(&program, &empty, 0.9);
        assert!(layers.values().all(|&l| l == OptLayer::Minimal));
    }
}
