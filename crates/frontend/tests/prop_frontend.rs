//! Property tests on the frontend: the lexer and parser are total
//! (they return diagnostics, never panic, on arbitrary input), and
//! everything that compiles also links and validates.

use cmo_frontend::{compile_module, Lexer};
use proptest::prelude::*;

proptest! {
    #[test]
    fn lexer_is_total(input in "\\PC{0,200}") {
        let _ = Lexer::new(&input).tokenize();
    }

    #[test]
    fn parser_is_total_on_ascii_soup(input in "[ -~\\n]{0,300}") {
        let _ = cmo_frontend::parse_module(&input);
    }

    /// Token-soup made of real MLC tokens exercises deeper parser
    /// paths than raw bytes do.
    #[test]
    fn parser_is_total_on_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("fn"), Just("var"), Just("if"), Just("else"), Just("while"),
                Just("return"), Just("global"), Just("static"), Just("extern"),
                Just("int"), Just("float"), Just("output"), Just("input"),
                Just("x"), Just("y"), Just("f"), Just("0"), Just("1"), Just("2.5"),
                Just("("), Just(")"), Just("{"), Just("}"), Just("["), Just("]"),
                Just(";"), Just(":"), Just(","), Just("+"), Just("-"), Just("*"),
                Just("/"), Just("%"), Just("=="), Just("="), Just("<"), Just("->"),
            ],
            0..80,
        )
    ) {
        let src = toks.join(" ");
        let _ = compile_module("soup", &src);
    }

    /// Structured generation: random expressions inside a valid
    /// function skeleton either compile cleanly or report a positioned
    /// diagnostic; on success the IL links and validates.
    #[test]
    fn compiled_modules_always_validate(
        a in 0i64..100,
        b in 1i64..50,
        op in prop_oneof![Just("+"), Just("-"), Just("*"), Just("/"), Just("%")],
        cmp in prop_oneof![Just("<"), Just("<="), Just(">"), Just(">="), Just("=="), Just("!=")],
        loops in 1usize..4,
    ) {
        let mut body = String::new();
        for i in 0..loops {
            body.push_str(&format!(
                "var v{i}: int = {a} {op} {b};\nwhile (v{i} {cmp} {b}) {{ v{i} = v{i} + 1; output(v{i}); }}\n"
            ));
        }
        let src = format!("fn main() -> int {{ {body} return {a}; }}");
        let obj = compile_module("gen", &src).expect("structured source compiles");
        let unit = cmo_ir::link_objects(vec![obj]).expect("links");
        cmo_ir::validate::validate_unit(&unit.program, &unit.bodies).expect("validates");
    }

    #[test]
    fn error_positions_are_in_range(junk in "[a-z{}();=]{1,80}") {
        if let Err(e) = compile_module("m", &junk) {
            let lines = junk.lines().count().max(1) as u32;
            prop_assert!(e.pos.line >= 1 && e.pos.line <= lines + 1, "{e}");
        }
    }
}
