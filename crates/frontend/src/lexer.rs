//! The MLC lexer.

use crate::{FrontendError, Pos};

/// Kinds of MLC tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword (keywords are distinguished by the
    /// parser so identifiers like `intensity` lex cleanly).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A punctuation or operator token, e.g. `"+"`, `"<="`, `"&&"`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// Position of the first character.
    pub pos: Pos,
}

/// Streaming lexer over MLC source text.
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

const PUNCTS2: [&str; 9] = ["==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->"];
const PUNCTS1: [&str; 18] = [
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "(", ")", "{", "}", "[", "]",
];
const PUNCT_MISC: [&str; 4] = [";", ":", ",", "."];

impl<'a> Lexer<'a> {
    /// Creates a lexer over `source`.
    #[must_use]
    pub fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn here(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<(), FrontendError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'*') => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.src.get(self.pos + 1)) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(FrontendError::new(start, "unterminated block comment"))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Produces the next token.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed literals, unterminated comments,
    /// or unknown characters.
    pub fn next_token(&mut self) -> Result<Token, FrontendError> {
        self.skip_trivia()?;
        let pos = self.here();
        let Some(b) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                pos,
            });
        };
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[start..self.pos])
                .expect("identifier bytes are ASCII")
                .to_owned();
            return Ok(Token {
                kind: TokenKind::Ident(text),
                pos,
            });
        }
        if b.is_ascii_digit() {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
            let mut is_float = false;
            if self.peek() == Some(b'.')
                && matches!(self.src.get(self.pos + 1), Some(c) if c.is_ascii_digit())
            {
                is_float = true;
                self.bump();
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            }
            let text =
                std::str::from_utf8(&self.src[start..self.pos]).expect("number bytes are ASCII");
            return if is_float {
                text.parse::<f64>()
                    .map(|v| Token {
                        kind: TokenKind::Float(v),
                        pos,
                    })
                    .map_err(|_| FrontendError::new(pos, format!("bad float literal `{text}`")))
            } else {
                text.parse::<i64>()
                    .map(|v| Token {
                        kind: TokenKind::Int(v),
                        pos,
                    })
                    .map_err(|_| {
                        FrontendError::new(pos, format!("integer literal `{text}` out of range"))
                    })
            };
        }
        // Two-character operators first.
        if self.pos + 1 < self.src.len() {
            let two = &self.src[self.pos..self.pos + 2];
            for p in PUNCTS2 {
                if p.as_bytes() == two {
                    self.bump();
                    self.bump();
                    return Ok(Token {
                        kind: TokenKind::Punct(p),
                        pos,
                    });
                }
            }
        }
        let one = &self.src[self.pos..self.pos + 1];
        for p in PUNCTS1.iter().chain(PUNCT_MISC.iter()) {
            if p.as_bytes() == one {
                self.bump();
                return Ok(Token {
                    kind: TokenKind::Punct(p),
                    pos,
                });
            }
        }
        Err(FrontendError::new(
            pos,
            format!("unexpected character `{}`", b as char),
        ))
    }

    /// Lexes the entire input.
    ///
    /// # Errors
    ///
    /// Propagates the first lexical error.
    pub fn tokenize(mut self) -> Result<Vec<Token>, FrontendError> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let eof = t.kind == TokenKind::Eof;
            out.push(t);
            if eof {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_identifiers_and_keywords_alike() {
        assert_eq!(
            kinds("fn intensity"),
            vec![
                TokenKind::Ident("fn".into()),
                TokenKind::Ident("intensity".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("42 3.5"),
            vec![TokenKind::Int(42), TokenKind::Float(3.5), TokenKind::Eof]
        );
    }

    #[test]
    fn two_char_operators_win() {
        assert_eq!(
            kinds("<= < =="),
            vec![
                TokenKind::Punct("<="),
                TokenKind::Punct("<"),
                TokenKind::Punct("=="),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 // line\n/* block\n*/ 2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = Lexer::new("a\n  b").tokenize().unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(Lexer::new("/* nope").tokenize().is_err());
    }

    #[test]
    fn unknown_character_errors() {
        let e = Lexer::new("@").tokenize().unwrap_err();
        assert!(e.message.contains("unexpected character"));
    }

    #[test]
    fn huge_integer_errors() {
        assert!(Lexer::new("99999999999999999999999").tokenize().is_err());
    }
}
