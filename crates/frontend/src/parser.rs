//! Recursive-descent parser for MLC.

use crate::ast::*;
use crate::lexer::{Lexer, Token, TokenKind};
use crate::{FrontendError, Pos};

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> Pos {
        self.peek().pos
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Punct(q) if *q == p)
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), FrontendError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(FrontendError::new(
                self.here(),
                format!("expected `{p}`, found {}", describe(&self.peek().kind)),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Pos), FrontendError> {
        let pos = self.here();
        match self.bump().kind {
            TokenKind::Ident(s) if !is_keyword(&s) => Ok((s, pos)),
            k => Err(FrontendError::new(
                pos,
                format!("expected identifier, found {}", describe(&k)),
            )),
        }
    }

    fn parse_type(&mut self) -> Result<TypeName, FrontendError> {
        let pos = self.here();
        let base = if self.eat_kw("int") {
            TypeName::Int
        } else if self.eat_kw("float") {
            TypeName::Float
        } else {
            return Err(FrontendError::new(
                pos,
                format!("expected type, found {}", describe(&self.peek().kind)),
            ));
        };
        if self.eat_punct("[") {
            let n_pos = self.here();
            let n = match self.bump().kind {
                TokenKind::Int(n) if n > 0 && n <= i64::from(u32::MAX) => n as u32,
                _ => {
                    return Err(FrontendError::new(
                        n_pos,
                        "array length must be a positive integer literal",
                    ))
                }
            };
            self.expect_punct("]")?;
            Ok(match base {
                TypeName::Int => TypeName::IntArray(n),
                TypeName::Float => TypeName::FloatArray(n),
                _ => unreachable!(),
            })
        } else {
            Ok(base)
        }
    }

    fn parse_scalar_type(&mut self) -> Result<TypeName, FrontendError> {
        let pos = self.here();
        let ty = self.parse_type()?;
        if ty.is_array() {
            return Err(FrontendError::new(pos, "array type not allowed here"));
        }
        Ok(ty)
    }

    fn parse_module(&mut self) -> Result<Module, FrontendError> {
        let mut items = Vec::new();
        while !matches!(self.peek().kind, TokenKind::Eof) {
            items.push(self.parse_item()?);
        }
        Ok(Module { items })
    }

    fn parse_item(&mut self) -> Result<Item, FrontendError> {
        let pos = self.here();
        if self.eat_kw("extern") {
            if self.eat_kw("fn") {
                let (name, _) = self.expect_ident()?;
                self.expect_punct("(")?;
                let mut params = Vec::new();
                if !self.at_punct(")") {
                    loop {
                        // Allow `name: type` or bare `type`.
                        let save = self.pos;
                        if let Ok((_, _)) = self.expect_ident() {
                            if !self.eat_punct(":") {
                                self.pos = save;
                            }
                        } else {
                            self.pos = save;
                        }
                        params.push(self.parse_scalar_type()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                }
                self.expect_punct(")")?;
                let ret = if self.eat_punct("->") {
                    Some(self.parse_scalar_type()?)
                } else {
                    None
                };
                self.expect_punct(";")?;
                return Ok(Item::ExternFn {
                    name,
                    params,
                    ret,
                    pos,
                });
            }
            if self.eat_kw("global") {
                let (name, _) = self.expect_ident()?;
                self.expect_punct(":")?;
                let ty = self.parse_type()?;
                self.expect_punct(";")?;
                return Ok(Item::ExternGlobal { name, ty, pos });
            }
            return Err(FrontendError::new(
                pos,
                "expected `fn` or `global` after `extern`",
            ));
        }
        let internal = self.eat_kw("static");
        if self.eat_kw("fn") {
            return self.parse_function(internal, pos);
        }
        if internal || self.at_kw("global") {
            if !internal {
                self.bump(); // `global`
            }
            let (name, _) = self.expect_ident()?;
            self.expect_punct(":")?;
            let ty = self.parse_type()?;
            let mut scalar_init = None;
            let mut array_init = None;
            if self.eat_punct("=") {
                if self.eat_punct("[") {
                    let mut elems = Vec::new();
                    if !self.at_punct("]") {
                        loop {
                            elems.push(self.parse_expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                    }
                    self.expect_punct("]")?;
                    array_init = Some(elems);
                } else {
                    scalar_init = Some(self.parse_expr()?);
                }
            }
            self.expect_punct(";")?;
            return Ok(Item::Global {
                name,
                ty,
                internal,
                scalar_init,
                array_init,
                pos,
            });
        }
        Err(FrontendError::new(
            pos,
            format!(
                "expected `fn`, `global`, `static`, or `extern`, found {}",
                describe(&self.peek().kind)
            ),
        ))
    }

    fn parse_function(&mut self, internal: bool, pos: Pos) -> Result<Item, FrontendError> {
        let (name, _) = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.at_punct(")") {
            loop {
                let (pname, ppos) = self.expect_ident()?;
                self.expect_punct(":")?;
                let ty = self.parse_scalar_type()?;
                params.push(Param {
                    name: pname,
                    ty,
                    pos: ppos,
                });
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_punct(")")?;
        let ret = if self.eat_punct("->") {
            Some(self.parse_scalar_type()?)
        } else {
            None
        };
        let body = self.parse_block()?;
        let end_line = self.toks[self.pos.saturating_sub(1)].pos.line;
        Ok(Item::Function {
            name,
            params,
            ret,
            body,
            internal,
            pos,
            lines: end_line.saturating_sub(pos.line) + 1,
        })
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, FrontendError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek().kind, TokenKind::Eof) {
                return Err(FrontendError::new(self.here(), "unterminated block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    /// A `var` declaration or assignment, consuming the trailing `;`
    /// (the `init` slot of a `for` header).
    fn parse_simple_stmt(&mut self) -> Result<Stmt, FrontendError> {
        let pos = self.here();
        if self.at_kw("var") {
            return self.parse_stmt();
        }
        let (name, _) = self.expect_ident()?;
        self.expect_punct("=")?;
        let value = self.parse_expr()?;
        self.expect_punct(";")?;
        Ok(Stmt {
            kind: StmtKind::Assign { name, value },
            pos,
        })
    }

    /// An assignment *without* a trailing `;` (the `step` slot of a
    /// `for` header).
    fn parse_step_stmt(&mut self) -> Result<Stmt, FrontendError> {
        let pos = self.here();
        let (name, _) = self.expect_ident()?;
        self.expect_punct("=")?;
        let value = self.parse_expr()?;
        Ok(Stmt {
            kind: StmtKind::Assign { name, value },
            pos,
        })
    }

    fn parse_stmt(&mut self) -> Result<Stmt, FrontendError> {
        let pos = self.here();
        if self.eat_kw("var") {
            let (name, _) = self.expect_ident()?;
            self.expect_punct(":")?;
            let ty = self.parse_type()?;
            let init = if self.eat_punct("=") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            return Ok(Stmt {
                kind: StmtKind::Var { name, ty, init },
                pos,
            });
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let then_body = self.parse_block()?;
            let else_body = if self.eat_kw("else") {
                if self.at_kw("if") {
                    // `else if` sugar.
                    vec![self.parse_stmt()?]
                } else {
                    self.parse_block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt {
                kind: StmtKind::If {
                    cond,
                    then_body,
                    else_body,
                },
                pos,
            });
        }
        if self.eat_kw("break") {
            self.expect_punct(";")?;
            return Ok(Stmt {
                kind: StmtKind::Break,
                pos,
            });
        }
        if self.eat_kw("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt {
                kind: StmtKind::Continue,
                pos,
            });
        }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            let init = Box::new(self.parse_simple_stmt()?);
            let cond = self.parse_expr()?;
            self.expect_punct(";")?;
            let step = Box::new(self.parse_step_stmt()?);
            self.expect_punct(")")?;
            let body = self.parse_block()?;
            return Ok(Stmt {
                kind: StmtKind::For {
                    init,
                    cond,
                    step,
                    body,
                },
                pos,
            });
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let body = self.parse_block()?;
            return Ok(Stmt {
                kind: StmtKind::While { cond, body },
                pos,
            });
        }
        if self.eat_kw("return") {
            let value = if self.at_punct(";") {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_punct(";")?;
            return Ok(Stmt {
                kind: StmtKind::Return(value),
                pos,
            });
        }
        if self.at_kw("output") {
            self.bump();
            self.expect_punct("(")?;
            let value = self.parse_expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt {
                kind: StmtKind::Output(value),
                pos,
            });
        }
        // Assignment or expression statement: disambiguate by lookahead.
        if let TokenKind::Ident(name) = &self.peek().kind {
            if !is_keyword(name) {
                let name = name.clone();
                let next = self.toks.get(self.pos + 1).map(|t| &t.kind);
                if matches!(next, Some(TokenKind::Punct("="))) {
                    self.bump();
                    self.bump();
                    let value = self.parse_expr()?;
                    self.expect_punct(";")?;
                    return Ok(Stmt {
                        kind: StmtKind::Assign { name, value },
                        pos,
                    });
                }
                if matches!(next, Some(TokenKind::Punct("["))) {
                    // Could be `a[i] = v;` — parse index then check.
                    let save = self.pos;
                    self.bump();
                    self.bump();
                    let index = self.parse_expr()?;
                    self.expect_punct("]")?;
                    if self.eat_punct("=") {
                        let value = self.parse_expr()?;
                        self.expect_punct(";")?;
                        return Ok(Stmt {
                            kind: StmtKind::AssignElem { name, index, value },
                            pos,
                        });
                    }
                    self.pos = save;
                }
            }
        }
        let e = self.parse_expr()?;
        self.expect_punct(";")?;
        Ok(Stmt {
            kind: StmtKind::Expr(e),
            pos,
        })
    }

    fn parse_expr(&mut self) -> Result<Expr, FrontendError> {
        self.parse_bin(0)
    }

    fn parse_bin(&mut self, min_prec: u8) -> Result<Expr, FrontendError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let Some((op, prec)) = self.peek_bin_op() else {
                return Ok(lhs);
            };
            if prec < min_prec {
                return Ok(lhs);
            }
            let pos = self.here();
            self.bump();
            let rhs = self.parse_bin(prec + 1)?;
            lhs = Expr {
                kind: ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)),
                pos,
            };
        }
    }

    fn peek_bin_op(&self) -> Option<(BinExprOp, u8)> {
        let TokenKind::Punct(p) = &self.peek().kind else {
            return None;
        };
        Some(match *p {
            "||" => (BinExprOp::Or, 1),
            "&&" => (BinExprOp::And, 2),
            "|" => (BinExprOp::BitOr, 3),
            "^" => (BinExprOp::BitXor, 4),
            "&" => (BinExprOp::BitAnd, 5),
            "==" => (BinExprOp::Eq, 6),
            "!=" => (BinExprOp::Ne, 6),
            "<" => (BinExprOp::Lt, 7),
            "<=" => (BinExprOp::Le, 7),
            ">" => (BinExprOp::Gt, 7),
            ">=" => (BinExprOp::Ge, 7),
            "<<" => (BinExprOp::Shl, 8),
            ">>" => (BinExprOp::Shr, 8),
            "+" => (BinExprOp::Add, 9),
            "-" => (BinExprOp::Sub, 9),
            "*" => (BinExprOp::Mul, 10),
            "/" => (BinExprOp::Div, 10),
            "%" => (BinExprOp::Rem, 10),
            _ => return None,
        })
    }

    fn parse_unary(&mut self) -> Result<Expr, FrontendError> {
        let pos = self.here();
        if self.eat_punct("-") {
            let e = self.parse_unary()?;
            return Ok(Expr {
                kind: ExprKind::Un(UnExprOp::Neg, Box::new(e)),
                pos,
            });
        }
        if self.eat_punct("!") {
            let e = self.parse_unary()?;
            return Ok(Expr {
                kind: ExprKind::Un(UnExprOp::Not, Box::new(e)),
                pos,
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, FrontendError> {
        let pos = self.here();
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::IntLit(v),
                    pos,
                })
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::FloatLit(v),
                    pos,
                })
            }
            TokenKind::Punct("(") => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if name == "input" && self.at_punct("(") {
                    self.bump();
                    self.expect_punct(")")?;
                    return Ok(Expr {
                        kind: ExprKind::Input,
                        pos,
                    });
                }
                if (name == "float" || name == "int") && self.at_punct("(") {
                    self.bump();
                    let e = self.parse_expr()?;
                    self.expect_punct(")")?;
                    let kind = if name == "float" {
                        ExprKind::ToFloat(Box::new(e))
                    } else {
                        ExprKind::ToInt(Box::new(e))
                    };
                    return Ok(Expr { kind, pos });
                }
                if is_keyword(&name) {
                    return Err(FrontendError::new(
                        pos,
                        format!("keyword `{name}` cannot start an expression"),
                    ));
                }
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.at_punct(")") {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                    }
                    self.expect_punct(")")?;
                    return Ok(Expr {
                        kind: ExprKind::Call(name, args),
                        pos,
                    });
                }
                if self.eat_punct("[") {
                    let index = self.parse_expr()?;
                    self.expect_punct("]")?;
                    return Ok(Expr {
                        kind: ExprKind::Index(name, Box::new(index)),
                        pos,
                    });
                }
                Ok(Expr {
                    kind: ExprKind::Name(name),
                    pos,
                })
            }
            k => Err(FrontendError::new(
                pos,
                format!("expected expression, found {}", describe(&k)),
            )),
        }
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "fn" | "var"
            | "if"
            | "else"
            | "while"
            | "for"
            | "break"
            | "continue"
            | "return"
            | "global"
            | "static"
            | "extern"
            | "int"
            | "float"
            | "output"
    )
}

fn describe(k: &TokenKind) -> String {
    match k {
        TokenKind::Ident(s) => format!("`{s}`"),
        TokenKind::Int(v) => format!("`{v}`"),
        TokenKind::Float(v) => format!("`{v}`"),
        TokenKind::Punct(p) => format!("`{p}`"),
        TokenKind::Eof => "end of input".to_owned(),
    }
}

/// Parses an MLC module.
///
/// # Errors
///
/// Returns the first lexical or syntactic error.
pub fn parse_module(source: &str) -> Result<Module, FrontendError> {
    let toks = Lexer::new(source).tokenize()?;
    let mut p = Parser { toks, pos: 0 };
    p.parse_module()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_with_control_flow() {
        let m = parse_module(
            r#"
            fn collatz(n: int) -> int {
                var steps: int = 0;
                while (n != 1) {
                    if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
                    steps = steps + 1;
                }
                return steps;
            }
            "#,
        )
        .unwrap();
        assert_eq!(m.items.len(), 1);
        let Item::Function {
            name, body, lines, ..
        } = &m.items[0]
        else {
            panic!("expected function");
        };
        assert_eq!(name, "collatz");
        assert_eq!(body.len(), 3);
        assert!(*lines >= 8);
    }

    #[test]
    fn precedence_binds_mul_over_add() {
        let m = parse_module("fn f() -> int { return 1 + 2 * 3; }").unwrap();
        let Item::Function { body, .. } = &m.items[0] else {
            panic!()
        };
        let StmtKind::Return(Some(e)) = &body[0].kind else {
            panic!()
        };
        let ExprKind::Bin(BinExprOp::Add, _, rhs) = &e.kind else {
            panic!("expected + at top, got {e:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Bin(BinExprOp::Mul, _, _)));
    }

    #[test]
    fn parses_globals_and_externs() {
        let m = parse_module(
            r#"
            global hits: int = 0;
            static table: int[16] = [1, 2, 3];
            extern fn helper(x: int) -> int;
            extern global remote: float;
            "#,
        )
        .unwrap();
        assert_eq!(m.items.len(), 4);
        assert!(matches!(
            m.items[0],
            Item::Global {
                internal: false,
                ..
            }
        ));
        assert!(matches!(
            m.items[1],
            Item::Global {
                internal: true,
                ty: TypeName::IntArray(16),
                ..
            }
        ));
        assert!(matches!(m.items[2], Item::ExternFn { .. }));
        assert!(matches!(m.items[3], Item::ExternGlobal { .. }));
    }

    #[test]
    fn else_if_chains() {
        let m = parse_module(
            "fn f(x: int) -> int { if (x < 0) { return 0; } else if (x < 10) { return 1; } else { return 2; } }",
        )
        .unwrap();
        let Item::Function { body, .. } = &m.items[0] else {
            panic!()
        };
        let StmtKind::If { else_body, .. } = &body[0].kind else {
            panic!()
        };
        assert!(matches!(else_body[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn array_read_in_expression_position() {
        let m = parse_module("fn f() -> int { var a: int[4]; a[0] = 3; return a[0] + 1; }");
        assert!(m.is_ok());
    }

    #[test]
    fn missing_semicolon_is_reported_with_position() {
        let e = parse_module("fn f() { return }").unwrap_err();
        assert!(e.message.contains("expected"));
        assert_eq!(e.pos.line, 1);
    }

    #[test]
    fn unterminated_block_is_reported() {
        let e = parse_module("fn f() { var x: int = 1;").unwrap_err();
        assert!(e.message.contains("unterminated block") || e.message.contains("expected"));
    }

    #[test]
    fn builtins_parse() {
        let m = parse_module(
            "fn f() -> int { var x: float = float(input()); output(int(x)); return int(x); }",
        );
        assert!(m.is_ok(), "{m:?}");
    }
}
