#![warn(missing_docs)]
//! The MLC frontend.
//!
//! The paper's infrastructure feeds every source language through
//! frontends that emit a common IL into object files (§3, Figure 2).
//! This crate is the reproduction's frontend: **MLC** ("Massachusetts
//! Language-lab C") is a small, C-like language with integers, floats,
//! fixed-size arrays, module-static linkage, and cross-module `extern`
//! declarations — enough surface to generate multi-module,
//! multi-million-IL-instruction applications whose optimization
//! behaviour mirrors the paper's C/C++/Fortran workloads.
//!
//! # Example
//!
//! ```
//! use cmo_frontend::compile_module;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let obj = compile_module(
//!     "demo",
//!     r#"
//!     global counter: int = 0;
//!
//!     fn main() -> int {
//!         var i: int = 0;
//!         while (i < 10) {
//!             counter = counter + i;
//!             i = i + 1;
//!         }
//!         return counter;
//!     }
//!     "#,
//! )?;
//! assert_eq!(obj.module_name, "demo");
//! # Ok(())
//! # }
//! ```
//!
//! # Language summary
//!
//! ```text
//! module item := "global" NAME ":" type ["=" init] ";"        (exported)
//!              | "static" NAME ":" type ["=" init] ";"        (internal)
//!              | ["static"] "fn" NAME "(" params ")" ["->" scalar] block
//!              | "extern" "fn" NAME "(" params ")" ["->" scalar] ";"
//!              | "extern" "global" NAME ":" type ";"
//! type        := "int" | "float" | "int" "[" N "]" | "float" "[" N "]"
//! stmt        := "var" NAME ":" type ["=" expr] ";"
//!              | NAME "=" expr ";" | NAME "[" expr "]" "=" expr ";"
//!              | "if" "(" expr ")" block ["else" block]
//!              | "while" "(" expr ")" block
//!              | "return" [expr] ";" | "output" "(" expr ")" ";"
//!              | expr ";"
//! ```
//!
//! `&&` and `||` evaluate both operands (no short circuit); `input()`
//! reads the next workload value; `float(e)`/`int(e)` convert.

mod ast;
mod lexer;
mod lower;
mod parser;

pub use ast::{
    BinExprOp, Expr, ExprKind, Item, Module as AstModule, Param, Stmt, StmtKind, TypeName, UnExprOp,
};
pub use lexer::{Lexer, Token, TokenKind};
pub use lower::lower_module;
pub use parser::parse_module;

use cmo_ir::IlObject;
use std::error::Error;
use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A frontend diagnostic: lexical, syntactic, or semantic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    /// Where the problem was detected.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl FrontendError {
    pub(crate) fn new(pos: Pos, message: impl Into<String>) -> Self {
        FrontendError {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl Error for FrontendError {}

/// Compiles one MLC source module to an IL object.
///
/// This is the frontend pipeline of Figure 2: lex, parse, check, and
/// dump IL into an object ready for the (IL) linker.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error.
pub fn compile_module(name: &str, source: &str) -> Result<IlObject, FrontendError> {
    let module = parse_module(source)?;
    lower_module(name, &module, source.lines().count() as u32)
}
