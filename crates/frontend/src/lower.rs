//! Semantic checking and lowering of the MLC AST to IL.
//!
//! A single pass resolves names, checks types, and emits IL through the
//! [`cmo_ir`] builders. Cross-module references (declared with
//! `extern`) are emitted as name-based references and resolved later by
//! IL linking, matching the paper's object-file-centric flow (§6.1).

use crate::ast::*;
use crate::{FrontendError, Pos};
use cmo_ir::{
    BinOp, GlobalInit, IlObject, IlObjectBuilder, Linkage, Local, RoutineBuilder, Signature, Ty,
    UnOp, VReg, VarTy,
};
use std::collections::HashMap;

fn scalar_ty(t: TypeName, pos: Pos) -> Result<Ty, FrontendError> {
    match t {
        TypeName::Int => Ok(Ty::I64),
        TypeName::Float => Ok(Ty::F64),
        _ => Err(FrontendError::new(pos, "array type not allowed here")),
    }
}

fn var_ty(t: TypeName) -> VarTy {
    match t {
        TypeName::Int => VarTy::scalar(Ty::I64),
        TypeName::Float => VarTy::scalar(Ty::F64),
        TypeName::IntArray(n) => VarTy::array(Ty::I64, n),
        TypeName::FloatArray(n) => VarTy::array(Ty::F64, n),
    }
}

#[derive(Clone)]
struct FnSig {
    params: Vec<Ty>,
    ret: Option<Ty>,
}

#[derive(Default)]
struct ModuleEnv {
    /// Module-visible globals (defined here or extern): name → type.
    globals: HashMap<String, VarTy>,
    /// Module-visible functions (defined here or extern).
    functions: HashMap<String, FnSig>,
}

/// Lowers a parsed module to an IL object.
///
/// # Errors
///
/// Returns the first semantic error: duplicate or unknown names, type
/// mismatches, bad initializers, or misused arrays.
pub fn lower_module(
    name: &str,
    module: &Module,
    source_lines: u32,
) -> Result<IlObject, FrontendError> {
    let mut env = ModuleEnv::default();

    // Collect module-level declarations first so definitions can call
    // forward and across modules.
    for item in &module.items {
        match item {
            Item::Global { name, ty, pos, .. } | Item::ExternGlobal { name, ty, pos } => {
                if env.globals.insert(name.clone(), var_ty(*ty)).is_some() {
                    return Err(FrontendError::new(
                        *pos,
                        format!("duplicate global `{name}`"),
                    ));
                }
            }
            Item::Function {
                name,
                params,
                ret,
                pos,
                ..
            } => {
                let sig = FnSig {
                    params: params
                        .iter()
                        .map(|p| scalar_ty(p.ty, p.pos))
                        .collect::<Result<_, _>>()?,
                    ret: ret.map(|r| scalar_ty(r, *pos)).transpose()?,
                };
                if env.functions.insert(name.clone(), sig).is_some() {
                    return Err(FrontendError::new(
                        *pos,
                        format!("duplicate function `{name}`"),
                    ));
                }
            }
            Item::ExternFn {
                name,
                params,
                ret,
                pos,
            } => {
                let sig = FnSig {
                    params: params
                        .iter()
                        .map(|t| scalar_ty(*t, *pos))
                        .collect::<Result<_, _>>()?,
                    ret: ret.map(|r| scalar_ty(r, *pos)).transpose()?,
                };
                if env.functions.insert(name.clone(), sig).is_some() {
                    return Err(FrontendError::new(
                        *pos,
                        format!("duplicate function `{name}`"),
                    ));
                }
            }
        }
    }

    let mut builder = IlObjectBuilder::new(name);
    builder.source_lines(source_lines);

    for item in &module.items {
        match item {
            Item::Global {
                name,
                ty,
                internal,
                scalar_init,
                array_init,
                pos,
            } => {
                let vt = var_ty(*ty);
                let init = lower_init(vt, scalar_init.as_ref(), array_init.as_deref(), *pos)?;
                let linkage = if *internal {
                    Linkage::Internal
                } else {
                    Linkage::Export
                };
                builder.global(name, vt, linkage, init);
            }
            Item::Function {
                name,
                params,
                ret,
                body,
                internal,
                pos,
                lines,
            } => {
                let sig = Signature::new(
                    params
                        .iter()
                        .map(|p| scalar_ty(p.ty, p.pos))
                        .collect::<Result<_, _>>()?,
                    ret.map(|r| scalar_ty(r, *pos)).transpose()?,
                );
                let mut f = if *internal {
                    builder.internal_routine(name, sig.clone())
                } else {
                    builder.routine(name, sig.clone())
                };
                f.source_lines(*lines);
                let mut fl = FnLowerer {
                    env: &env,
                    f,
                    vars: HashMap::new(),
                    ret: sig.ret,
                    loops: Vec::new(),
                };
                for (i, p) in params.iter().enumerate() {
                    let local = fl.f.param(i);
                    if fl
                        .vars
                        .insert(p.name.clone(), (local, var_ty(p.ty)))
                        .is_some()
                    {
                        return Err(FrontendError::new(
                            p.pos,
                            format!("duplicate parameter `{}`", p.name),
                        ));
                    }
                }
                fl.lower_body(body)?;
                fl.f.finish();
            }
            Item::ExternFn { .. } | Item::ExternGlobal { .. } => {}
        }
    }
    Ok(builder.finish())
}

fn const_int(e: &Expr) -> Option<i64> {
    match &e.kind {
        ExprKind::IntLit(v) => Some(*v),
        ExprKind::Un(UnExprOp::Neg, inner) => const_int(inner).map(i64::wrapping_neg),
        _ => None,
    }
}

fn const_float(e: &Expr) -> Option<f64> {
    match &e.kind {
        ExprKind::FloatLit(v) => Some(*v),
        ExprKind::IntLit(v) => Some(*v as f64),
        ExprKind::Un(UnExprOp::Neg, inner) => const_float(inner).map(|v| -v),
        _ => None,
    }
}

fn lower_init(
    vt: VarTy,
    scalar: Option<&Expr>,
    array: Option<&[Expr]>,
    pos: Pos,
) -> Result<GlobalInit, FrontendError> {
    match (vt.is_array(), scalar, array) {
        (_, None, None) => Ok(GlobalInit::Zero),
        (false, Some(e), None) => match vt.scalar {
            Ty::I64 => const_int(e)
                .map(|v| GlobalInit::Scalar(cmo_ir::Const::I(v)))
                .ok_or_else(|| {
                    FrontendError::new(e.pos, "global initializer must be an integer constant")
                }),
            Ty::F64 => const_float(e)
                .map(|v| GlobalInit::Scalar(cmo_ir::Const::F(v)))
                .ok_or_else(|| {
                    FrontendError::new(e.pos, "global initializer must be a float constant")
                }),
        },
        (true, None, Some(elems)) => {
            if elems.len() > vt.slots() as usize {
                return Err(FrontendError::new(
                    pos,
                    format!(
                        "initializer has {} elements for an array of {}",
                        elems.len(),
                        vt.slots()
                    ),
                ));
            }
            match vt.scalar {
                Ty::I64 => {
                    let mut vals = Vec::with_capacity(elems.len());
                    for e in elems {
                        vals.push(const_int(e).ok_or_else(|| {
                            FrontendError::new(e.pos, "array initializer must be integer constants")
                        })?);
                    }
                    Ok(GlobalInit::IntArray(vals))
                }
                Ty::F64 => {
                    let mut vals = Vec::with_capacity(elems.len());
                    for e in elems {
                        vals.push(const_float(e).ok_or_else(|| {
                            FrontendError::new(e.pos, "array initializer must be float constants")
                        })?);
                    }
                    Ok(GlobalInit::FloatArray(vals))
                }
            }
        }
        (false, None, Some(_)) => Err(FrontendError::new(
            pos,
            "scalar global cannot take an array initializer",
        )),
        (true, Some(_), None) => Err(FrontendError::new(
            pos,
            "array global needs a bracketed initializer",
        )),
        _ => unreachable!("parser produces at most one initializer"),
    }
}

struct FnLowerer<'a, 'b> {
    env: &'a ModuleEnv,
    f: RoutineBuilder<'b>,
    vars: HashMap<String, (Local, VarTy)>,
    ret: Option<Ty>,
    /// Innermost-last stack of `(continue target, break target)`.
    loops: Vec<(cmo_ir::Block, cmo_ir::Block)>,
}

impl FnLowerer<'_, '_> {
    fn lower_body(&mut self, body: &[Stmt]) -> Result<(), FrontendError> {
        self.lower_stmts(body)?;
        if !self.f.is_terminated() {
            // Fall off the end: return the type's zero (keeps the
            // machine total; MLC does not require explicit returns).
            match self.ret {
                None => self.f.ret(None),
                Some(Ty::I64) => {
                    let z = self.f.const_i64(0);
                    self.f.ret(Some(z));
                }
                Some(Ty::F64) => {
                    let z = self.f.const_f64(0.0);
                    self.f.ret(Some(z));
                }
            }
        }
        Ok(())
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), FrontendError> {
        for s in stmts {
            if self.f.is_terminated() {
                // Unreachable code after return: skip it (the paper's
                // optimizer would delete it anyway).
                break;
            }
            self.lower_stmt(s)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), FrontendError> {
        match &s.kind {
            StmtKind::Var { name, ty, init } => {
                if self.vars.contains_key(name) {
                    return Err(FrontendError::new(
                        s.pos,
                        format!("duplicate variable `{name}`"),
                    ));
                }
                let vt = var_ty(*ty);
                let local = self.f.local(vt);
                self.vars.insert(name.clone(), (local, vt));
                if let Some(e) = init {
                    if vt.is_array() {
                        return Err(FrontendError::new(
                            s.pos,
                            "array variables cannot take initializers",
                        ));
                    }
                    let (v, t) = self.lower_expr(e)?;
                    self.expect_ty(vt.scalar, t, e.pos)?;
                    self.f.store_local(local, v);
                }
                Ok(())
            }
            StmtKind::Assign { name, value } => {
                let (v, t) = self.lower_expr(value)?;
                if let Some(&(local, vt)) = self.vars.get(name) {
                    if vt.is_array() {
                        return Err(FrontendError::new(
                            s.pos,
                            format!("cannot assign whole array `{name}`"),
                        ));
                    }
                    self.expect_ty(vt.scalar, t, value.pos)?;
                    self.f.store_local(local, v);
                    return Ok(());
                }
                if let Some(&vt) = self.env.globals.get(name) {
                    if vt.is_array() {
                        return Err(FrontendError::new(
                            s.pos,
                            format!("cannot assign whole array `{name}`"),
                        ));
                    }
                    self.expect_ty(vt.scalar, t, value.pos)?;
                    self.f.store_global(name, v);
                    return Ok(());
                }
                Err(FrontendError::new(
                    s.pos,
                    format!("unknown variable `{name}`"),
                ))
            }
            StmtKind::AssignElem { name, index, value } => {
                let (iv, it) = self.lower_expr(index)?;
                self.expect_ty(Ty::I64, it, index.pos)?;
                let (vv, vt_val) = self.lower_expr(value)?;
                if let Some(&(local, vt)) = self.vars.get(name) {
                    if !vt.is_array() {
                        return Err(FrontendError::new(
                            s.pos,
                            format!("`{name}` is not an array"),
                        ));
                    }
                    self.expect_ty(vt.scalar, vt_val, value.pos)?;
                    self.f.store_elem_local(local, iv, vv);
                    return Ok(());
                }
                if let Some(&vt) = self.env.globals.get(name) {
                    if !vt.is_array() {
                        return Err(FrontendError::new(
                            s.pos,
                            format!("`{name}` is not an array"),
                        ));
                    }
                    self.expect_ty(vt.scalar, vt_val, value.pos)?;
                    self.f.store_elem_global(name, iv, vv);
                    return Ok(());
                }
                Err(FrontendError::new(
                    s.pos,
                    format!("unknown variable `{name}`"),
                ))
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let (cv, ct) = self.lower_expr(cond)?;
                self.expect_ty(Ty::I64, ct, cond.pos)?;
                let then_b = self.f.new_block();
                let else_b = self.f.new_block();
                let join = self.f.new_block();
                self.f.branch(cv, then_b, else_b);
                self.f.switch_to(then_b);
                self.lower_stmts(then_body)?;
                if !self.f.is_terminated() {
                    self.f.jump(join);
                }
                self.f.switch_to(else_b);
                self.lower_stmts(else_body)?;
                if !self.f.is_terminated() {
                    self.f.jump(join);
                }
                self.f.switch_to(join);
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let header = self.f.new_block();
                let body_b = self.f.new_block();
                let exit = self.f.new_block();
                self.f.jump(header);
                self.f.switch_to(header);
                let (cv, ct) = self.lower_expr(cond)?;
                self.expect_ty(Ty::I64, ct, cond.pos)?;
                self.f.branch(cv, body_b, exit);
                self.f.switch_to(body_b);
                self.loops.push((header, exit));
                self.lower_stmts(body)?;
                self.loops.pop();
                if !self.f.is_terminated() {
                    self.f.jump(header);
                }
                self.f.switch_to(exit);
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.lower_stmt(init)?;
                let header = self.f.new_block();
                let body_b = self.f.new_block();
                let step_b = self.f.new_block();
                let exit = self.f.new_block();
                self.f.jump(header);
                self.f.switch_to(header);
                let (cv, ct) = self.lower_expr(cond)?;
                self.expect_ty(Ty::I64, ct, cond.pos)?;
                self.f.branch(cv, body_b, exit);
                self.f.switch_to(body_b);
                // `continue` re-enters at the step, not the header.
                self.loops.push((step_b, exit));
                self.lower_stmts(body)?;
                self.loops.pop();
                if !self.f.is_terminated() {
                    self.f.jump(step_b);
                }
                self.f.switch_to(step_b);
                self.lower_stmt(step)?;
                self.f.jump(header);
                self.f.switch_to(exit);
                Ok(())
            }
            StmtKind::Break => match self.loops.last() {
                Some(&(_, exit)) => {
                    self.f.jump(exit);
                    Ok(())
                }
                None => Err(FrontendError::new(s.pos, "`break` outside of a loop")),
            },
            StmtKind::Continue => match self.loops.last() {
                Some(&(next, _)) => {
                    self.f.jump(next);
                    Ok(())
                }
                None => Err(FrontendError::new(s.pos, "`continue` outside of a loop")),
            },
            StmtKind::Return(value) => match (self.ret, value) {
                (None, None) => {
                    self.f.ret(None);
                    Ok(())
                }
                (Some(rt), Some(e)) => {
                    let (v, t) = self.lower_expr(e)?;
                    self.expect_ty(rt, t, e.pos)?;
                    self.f.ret(Some(v));
                    Ok(())
                }
                (None, Some(e)) => {
                    Err(FrontendError::new(e.pos, "procedure cannot return a value"))
                }
                (Some(_), None) => Err(FrontendError::new(s.pos, "function must return a value")),
            },
            StmtKind::Output(e) => {
                let (v, t) = self.lower_expr(e)?;
                // output() accepts both types; floats are emitted as
                // raw bits into the checksum.
                let _ = t;
                self.f.output(v);
                Ok(())
            }
            StmtKind::Expr(e) => {
                if let ExprKind::Call(name, args) = &e.kind {
                    // Call for effect: discard any result.
                    let (arg_regs, _) = self.check_call(name, args, e.pos)?;
                    self.f.call_void(name, arg_regs);
                    Ok(())
                } else {
                    let _ = self.lower_expr(e)?;
                    Ok(())
                }
            }
        }
    }

    fn expect_ty(&self, want: Ty, got: Ty, pos: Pos) -> Result<(), FrontendError> {
        if want == got {
            Ok(())
        } else {
            Err(FrontendError::new(
                pos,
                format!(
                    "type mismatch: expected {want}, found {got} (use int()/float() to convert)"
                ),
            ))
        }
    }

    fn check_call(
        &mut self,
        name: &str,
        args: &[Expr],
        pos: Pos,
    ) -> Result<(Vec<VReg>, Option<Ty>), FrontendError> {
        let sig = self
            .env
            .functions
            .get(name)
            .cloned()
            .ok_or_else(|| FrontendError::new(pos, format!("unknown function `{name}`")))?;
        if sig.params.len() != args.len() {
            return Err(FrontendError::new(
                pos,
                format!(
                    "`{name}` takes {} arguments, {} given",
                    sig.params.len(),
                    args.len()
                ),
            ));
        }
        let mut regs = Vec::with_capacity(args.len());
        for (a, &want) in args.iter().zip(&sig.params) {
            let (v, t) = self.lower_expr(a)?;
            self.expect_ty(want, t, a.pos)?;
            regs.push(v);
        }
        Ok((regs, sig.ret))
    }

    fn lower_expr(&mut self, e: &Expr) -> Result<(VReg, Ty), FrontendError> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok((self.f.const_i64(*v), Ty::I64)),
            ExprKind::FloatLit(v) => Ok((self.f.const_f64(*v), Ty::F64)),
            ExprKind::Name(name) => {
                if let Some(&(local, vt)) = self.vars.get(name) {
                    if vt.is_array() {
                        return Err(FrontendError::new(
                            e.pos,
                            format!("array `{name}` must be indexed"),
                        ));
                    }
                    return Ok((self.f.load_local(local), vt.scalar));
                }
                if let Some(&vt) = self.env.globals.get(name) {
                    if vt.is_array() {
                        return Err(FrontendError::new(
                            e.pos,
                            format!("array `{name}` must be indexed"),
                        ));
                    }
                    return Ok((self.f.load_global(name), vt.scalar));
                }
                Err(FrontendError::new(
                    e.pos,
                    format!("unknown variable `{name}`"),
                ))
            }
            ExprKind::Index(name, index) => {
                let (iv, it) = self.lower_expr(index)?;
                self.expect_ty(Ty::I64, it, index.pos)?;
                if let Some(&(local, vt)) = self.vars.get(name) {
                    if !vt.is_array() {
                        return Err(FrontendError::new(
                            e.pos,
                            format!("`{name}` is not an array"),
                        ));
                    }
                    return Ok((self.f.load_elem_local(local, iv), vt.scalar));
                }
                if let Some(&vt) = self.env.globals.get(name) {
                    if !vt.is_array() {
                        return Err(FrontendError::new(
                            e.pos,
                            format!("`{name}` is not an array"),
                        ));
                    }
                    return Ok((self.f.load_elem_global(name, iv), vt.scalar));
                }
                Err(FrontendError::new(
                    e.pos,
                    format!("unknown variable `{name}`"),
                ))
            }
            ExprKind::Un(op, inner) => {
                let (v, t) = self.lower_expr(inner)?;
                match (op, t) {
                    (UnExprOp::Neg, Ty::I64) => Ok((self.f.un(UnOp::Neg, v), Ty::I64)),
                    (UnExprOp::Neg, Ty::F64) => Ok((self.f.un(UnOp::FNeg, v), Ty::F64)),
                    (UnExprOp::Not, Ty::I64) => Ok((self.f.un(UnOp::Not, v), Ty::I64)),
                    (UnExprOp::Not, Ty::F64) => {
                        Err(FrontendError::new(e.pos, "`!` requires an integer operand"))
                    }
                }
            }
            ExprKind::Bin(op, l, r) => self.lower_bin(*op, l, r, e.pos),
            ExprKind::Call(name, args) => {
                let (regs, ret) = self.check_call(name, args, e.pos)?;
                let ret = ret.ok_or_else(|| {
                    FrontendError::new(e.pos, format!("`{name}` returns no value"))
                })?;
                Ok((self.f.call(name, regs), ret))
            }
            ExprKind::Input => Ok((self.f.input(), Ty::I64)),
            ExprKind::ToFloat(inner) => {
                let (v, t) = self.lower_expr(inner)?;
                match t {
                    Ty::I64 => Ok((self.f.un(UnOp::I2F, v), Ty::F64)),
                    Ty::F64 => Ok((v, Ty::F64)),
                }
            }
            ExprKind::ToInt(inner) => {
                let (v, t) = self.lower_expr(inner)?;
                match t {
                    Ty::F64 => Ok((self.f.un(UnOp::F2I, v), Ty::I64)),
                    Ty::I64 => Ok((v, Ty::I64)),
                }
            }
        }
    }

    fn lower_bin(
        &mut self,
        op: BinExprOp,
        l: &Expr,
        r: &Expr,
        pos: Pos,
    ) -> Result<(VReg, Ty), FrontendError> {
        let (lv, lt) = self.lower_expr(l)?;
        let (rv, rt) = self.lower_expr(r)?;
        if lt != rt {
            return Err(FrontendError::new(
                pos,
                format!("operands have different types ({lt} vs {rt})"),
            ));
        }
        let int_only = |this: &mut Self, irop: BinOp| -> Result<(VReg, Ty), FrontendError> {
            if lt != Ty::I64 {
                return Err(FrontendError::new(
                    pos,
                    "operator requires integer operands",
                ));
            }
            Ok((this.f.bin(irop, lv, rv), Ty::I64))
        };
        match (op, lt) {
            (BinExprOp::Add, Ty::I64) => Ok((self.f.bin(BinOp::Add, lv, rv), Ty::I64)),
            (BinExprOp::Sub, Ty::I64) => Ok((self.f.bin(BinOp::Sub, lv, rv), Ty::I64)),
            (BinExprOp::Mul, Ty::I64) => Ok((self.f.bin(BinOp::Mul, lv, rv), Ty::I64)),
            (BinExprOp::Div, Ty::I64) => Ok((self.f.bin(BinOp::Div, lv, rv), Ty::I64)),
            (BinExprOp::Add, Ty::F64) => Ok((self.f.bin(BinOp::FAdd, lv, rv), Ty::F64)),
            (BinExprOp::Sub, Ty::F64) => Ok((self.f.bin(BinOp::FSub, lv, rv), Ty::F64)),
            (BinExprOp::Mul, Ty::F64) => Ok((self.f.bin(BinOp::FMul, lv, rv), Ty::F64)),
            (BinExprOp::Div, Ty::F64) => Ok((self.f.bin(BinOp::FDiv, lv, rv), Ty::F64)),
            (BinExprOp::Rem, _) => int_only(self, BinOp::Rem),
            (BinExprOp::BitAnd, _) => int_only(self, BinOp::And),
            (BinExprOp::BitOr, _) => int_only(self, BinOp::Or),
            (BinExprOp::BitXor, _) => int_only(self, BinOp::Xor),
            (BinExprOp::Shl, _) => int_only(self, BinOp::Shl),
            (BinExprOp::Shr, _) => int_only(self, BinOp::Shr),
            (BinExprOp::Eq, Ty::I64) => Ok((self.f.bin(BinOp::Eq, lv, rv), Ty::I64)),
            (BinExprOp::Ne, Ty::I64) => Ok((self.f.bin(BinOp::Ne, lv, rv), Ty::I64)),
            (BinExprOp::Lt, Ty::I64) => Ok((self.f.bin(BinOp::Lt, lv, rv), Ty::I64)),
            (BinExprOp::Le, Ty::I64) => Ok((self.f.bin(BinOp::Le, lv, rv), Ty::I64)),
            (BinExprOp::Gt, Ty::I64) => Ok((self.f.bin(BinOp::Lt, rv, lv), Ty::I64)),
            (BinExprOp::Ge, Ty::I64) => Ok((self.f.bin(BinOp::Le, rv, lv), Ty::I64)),
            (BinExprOp::Eq, Ty::F64) => Ok((self.f.bin(BinOp::FEq, lv, rv), Ty::I64)),
            (BinExprOp::Ne, Ty::F64) => {
                let eq = self.f.bin(BinOp::FEq, lv, rv);
                Ok((self.f.un(UnOp::Not, eq), Ty::I64))
            }
            (BinExprOp::Lt, Ty::F64) => Ok((self.f.bin(BinOp::FLt, lv, rv), Ty::I64)),
            (BinExprOp::Gt, Ty::F64) => Ok((self.f.bin(BinOp::FLt, rv, lv), Ty::I64)),
            (BinExprOp::Le, Ty::F64) => {
                let gt = self.f.bin(BinOp::FLt, rv, lv);
                Ok((self.f.un(UnOp::Not, gt), Ty::I64))
            }
            (BinExprOp::Ge, Ty::F64) => {
                let lt = self.f.bin(BinOp::FLt, lv, rv);
                Ok((self.f.un(UnOp::Not, lt), Ty::I64))
            }
            (BinExprOp::And | BinExprOp::Or, Ty::I64) => {
                let zero = self.f.const_i64(0);
                let ln = self.f.bin(BinOp::Ne, lv, zero);
                let rn = self.f.bin(BinOp::Ne, rv, zero);
                let irop = if op == BinExprOp::And {
                    BinOp::And
                } else {
                    BinOp::Or
                };
                Ok((self.f.bin(irop, ln, rn), Ty::I64))
            }
            (BinExprOp::And | BinExprOp::Or, Ty::F64) => Err(FrontendError::new(
                pos,
                "logical operators require integer operands",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_module;

    fn compile(src: &str) -> Result<IlObject, FrontendError> {
        compile_module("test", src)
    }

    #[test]
    fn compiles_and_links_standalone_module() {
        let obj = compile(
            r#"
            global total: int = 0;
            static weights: int[8] = [1, 2, 4, 8];

            static fn weigh(i: int) -> int {
                return weights[i % 8];
            }

            fn main() -> int {
                var i: int = 0;
                while (i < 20) {
                    total = total + weigh(i);
                    i = i + 1;
                }
                output(total);
                return total;
            }
            "#,
        )
        .unwrap();
        assert_eq!(obj.routines.len(), 2);
        let unit = cmo_ir::link_objects(vec![obj]).unwrap();
        cmo_ir::validate::validate_unit(&unit.program, &unit.bodies).unwrap();
    }

    #[test]
    fn unknown_variable_is_reported() {
        let e = compile("fn f() -> int { return nope; }").unwrap_err();
        assert!(e.message.contains("unknown variable"));
    }

    #[test]
    fn unknown_function_is_reported() {
        let e = compile("fn f() { ghost(); }").unwrap_err();
        assert!(e.message.contains("unknown function"));
    }

    #[test]
    fn type_mismatch_is_reported() {
        let e = compile("fn f() -> int { return 1 + 2.5; }").unwrap_err();
        assert!(e.message.contains("different types"));
        let e2 = compile("fn f() -> float { return 1; }").unwrap_err();
        assert!(e2.message.contains("type mismatch"));
    }

    #[test]
    fn conversions_fix_mismatches() {
        assert!(compile("fn f() -> float { return float(1) + 2.5; }").is_ok());
        assert!(compile("fn f() -> int { return int(2.5) + 1; }").is_ok());
    }

    #[test]
    fn arity_checked_against_extern() {
        let e = compile("extern fn helper(x: int) -> int;\nfn f() -> int { return helper(1, 2); }")
            .unwrap_err();
        assert!(e.message.contains("takes 1 arguments"));
    }

    #[test]
    fn whole_array_assignment_rejected() {
        let e = compile("fn f() { var a: int[4]; a = 3; }").unwrap_err();
        assert!(e.message.contains("array"));
    }

    #[test]
    fn scalar_indexing_rejected() {
        let e = compile("fn f() -> int { var x: int; return x[0]; }").unwrap_err();
        assert!(e.message.contains("not an array"));
    }

    #[test]
    fn duplicate_definitions_rejected() {
        assert!(compile("global x: int;\nglobal x: int;").is_err());
        assert!(compile("fn f() {}\nfn f() {}").is_err());
        assert!(compile("fn f() { var a: int; var a: int; }").is_err());
    }

    #[test]
    fn missing_return_value_rejected() {
        let e = compile("fn f() -> int { return; }").unwrap_err();
        assert!(e.message.contains("must return a value"));
        let e2 = compile("fn f() { return 3; }").unwrap_err();
        assert!(e2.message.contains("cannot return"));
    }

    #[test]
    fn fall_off_end_returns_zero() {
        let obj = compile("fn f() -> int { var x: int = 3; }").unwrap();
        let unit = cmo_ir::link_objects(vec![obj]).unwrap();
        cmo_ir::validate::validate_unit(&unit.program, &unit.bodies).unwrap();
    }

    #[test]
    fn comparisons_lower_with_swaps() {
        // `>` and `>=` have no direct IR ops; ensure they compile and
        // validate for both int and float.
        let obj = compile(
            r#"
            fn f(a: int, b: float) -> int {
                var r: int = 0;
                if (a > 3) { r = r + 1; }
                if (a >= 3) { r = r + 1; }
                if (b > 1.0) { r = r + 1; }
                if (b >= 1.0) { r = r + 1; }
                if (b <= 1.0) { r = r + 1; }
                if (b != 1.0) { r = r + 1; }
                if (a != 0 && b == 0.0 || !(a == 2)) { r = r + 1; }
                return r;
            }
            "#,
        )
        .unwrap();
        let unit = cmo_ir::link_objects(vec![obj]).unwrap();
        cmo_ir::validate::validate_unit(&unit.program, &unit.bodies).unwrap();
    }

    #[test]
    fn unreachable_code_after_return_is_dropped() {
        let obj = compile("fn f() -> int { return 1; output(2); }").unwrap();
        assert_eq!(obj.routines[0].body.instr_count(), 1);
    }

    #[test]
    fn global_initializer_must_be_constant() {
        let e = compile("global x: int = input();").unwrap_err();
        assert!(e.message.contains("constant"));
    }
}
