//! The MLC abstract syntax tree.

use crate::Pos;

/// A type annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeName {
    /// `int`
    Int,
    /// `float`
    Float,
    /// `int[N]`
    IntArray(u32),
    /// `float[N]`
    FloatArray(u32),
}

impl TypeName {
    /// Returns `true` for array types.
    #[must_use]
    pub fn is_array(self) -> bool {
        matches!(self, TypeName::IntArray(_) | TypeName::FloatArray(_))
    }
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Scalar type (`int` or `float`; arrays cannot be passed).
    pub ty: TypeName,
    /// Source position.
    pub pos: Pos,
}

/// Binary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinExprOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (evaluates both operands)
    And,
    /// `||` (evaluates both operands)
    Or,
}

/// Unary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnExprOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression's kind and children.
    pub kind: ExprKind,
    /// Source position.
    pub pos: Pos,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Scalar variable reference.
    Name(String),
    /// Array element: `name[index]`.
    Index(String, Box<Expr>),
    /// Binary operation.
    Bin(BinExprOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnExprOp, Box<Expr>),
    /// Call: `name(args)`.
    Call(String, Vec<Expr>),
    /// `input()` builtin.
    Input,
    /// `float(e)` builtin conversion.
    ToFloat(Box<Expr>),
    /// `int(e)` builtin conversion.
    ToInt(Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The statement's kind and children.
    pub kind: StmtKind,
    /// Source position.
    pub pos: Pos,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `var name: ty = init;`
    Var {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: TypeName,
        /// Optional scalar initializer.
        init: Option<Expr>,
    },
    /// `name = expr;`
    Assign {
        /// Target variable.
        name: String,
        /// Value.
        value: Expr,
    },
    /// `name[index] = expr;`
    AssignElem {
        /// Target array.
        name: String,
        /// Element index.
        index: Expr,
        /// Value.
        value: Expr,
    },
    /// `if (cond) { then } else { els }`
    If {
        /// Condition (integer).
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { body }`
    While {
        /// Condition (integer).
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) { body }` — sugar the parser keeps as a
    /// distinct node so `continue` can jump to the step.
    For {
        /// Loop variable initialization (a `var` or assignment).
        init: Box<Stmt>,
        /// Condition (integer).
        cond: Expr,
        /// Step statement (an assignment).
        step: Box<Stmt>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `break;` out of the innermost loop.
    Break,
    /// `continue;` to the innermost loop's next iteration.
    Continue,
    /// `return expr?;`
    Return(Option<Expr>),
    /// `output(expr);`
    Output(Expr),
    /// An expression evaluated for effect (a call).
    Expr(Expr),
}

/// A module-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `global`/`static` variable definition.
    Global {
        /// Variable name.
        name: String,
        /// Type.
        ty: TypeName,
        /// `true` for `static` (module-internal).
        internal: bool,
        /// Scalar initializer, if given.
        scalar_init: Option<Expr>,
        /// Array initializer, if given.
        array_init: Option<Vec<Expr>>,
        /// Source position.
        pos: Pos,
    },
    /// Function definition.
    Function {
        /// Function name.
        name: String,
        /// Parameters.
        params: Vec<Param>,
        /// Return type (`None` for procedures).
        ret: Option<TypeName>,
        /// Body statements.
        body: Vec<Stmt>,
        /// `true` for `static fn` (module-internal).
        internal: bool,
        /// Source position.
        pos: Pos,
        /// Lines spanned by the definition.
        lines: u32,
    },
    /// `extern fn` declaration.
    ExternFn {
        /// Function name.
        name: String,
        /// Parameter types.
        params: Vec<TypeName>,
        /// Return type.
        ret: Option<TypeName>,
        /// Source position.
        pos: Pos,
    },
    /// `extern global` declaration.
    ExternGlobal {
        /// Variable name.
        name: String,
        /// Type.
        ty: TypeName,
        /// Source position.
        pos: Pos,
    },
}

/// A parsed module.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Items in source order.
    pub items: Vec<Item>,
}
