//! Machine instructions.

use cmo_ir::{BinOp, UnOp};
use std::fmt;

/// Number of physical registers per frame (the PA-8000 exposes 32
/// general registers; we reserve none, the code generator manages
/// argument and return conventions).
pub const NUM_REGS: usize = 32;

/// A physical register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(pub u8);

impl Reg {
    /// Index into the register file.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One machine instruction. Code addresses are indices into the linked
/// image's instruction vector; every instruction occupies 4 "bytes" for
/// i-cache purposes.
#[derive(Debug, Clone, PartialEq)]
pub enum MInstr {
    /// `dst = value` (integer immediate).
    LdImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: i64,
    },
    /// `dst = value` (float immediate).
    LdImmF {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: f64,
    },
    /// `dst = op(lhs, rhs)`.
    Bin {
        /// Operator (shared with the IL).
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst = op(src)`.
    Un {
        /// Operator.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Operand.
        src: Reg,
    },
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = frame[slot]` (local scalar or spill slot).
    LdSlot {
        /// Destination register.
        dst: Reg,
        /// Frame slot.
        slot: u32,
    },
    /// `frame[slot] = src`.
    StSlot {
        /// Frame slot.
        slot: u32,
        /// Source register.
        src: Reg,
    },
    /// `dst = globals[addr]`.
    LdGlobal {
        /// Destination register.
        dst: Reg,
        /// Flat global-memory cell address.
        addr: u32,
    },
    /// `globals[addr] = src`.
    StGlobal {
        /// Flat global-memory cell address.
        addr: u32,
        /// Source register.
        src: Reg,
    },
    /// `dst = globals[base + (index mod len)]`.
    LdGlobalElem {
        /// Destination register.
        dst: Reg,
        /// Array base cell.
        base: u32,
        /// Array length in cells.
        len: u32,
        /// Index register.
        index: Reg,
    },
    /// `globals[base + (index mod len)] = src`.
    StGlobalElem {
        /// Array base cell.
        base: u32,
        /// Array length in cells.
        len: u32,
        /// Index register.
        index: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = frame[base_slot + (index mod len)]`.
    LdSlotElem {
        /// Destination register.
        dst: Reg,
        /// First frame slot of the array.
        base_slot: u32,
        /// Array length in slots.
        len: u32,
        /// Index register.
        index: Reg,
    },
    /// `frame[base_slot + (index mod len)] = src`.
    StSlotElem {
        /// First frame slot of the array.
        base_slot: u32,
        /// Array length in slots.
        len: u32,
        /// Index register.
        index: Reg,
        /// Source register.
        src: Reg,
    },
    /// Calls routine `routine` (an image routine index). Arguments are
    /// copied from the listed caller registers into callee registers
    /// `r0..rn`; on return, the callee's return value lands in `dst`.
    Call {
        /// Image routine index.
        routine: u32,
        /// Caller registers holding arguments.
        args: Vec<Reg>,
        /// Caller register receiving the return value.
        dst: Option<Reg>,
    },
    /// Returns from the current routine.
    Ret {
        /// Register holding the return value, if any.
        value: Option<Reg>,
    },
    /// Unconditional jump to an absolute code address.
    Jmp {
        /// Target address.
        target: u32,
    },
    /// Branch to `target` if `cond` is non-zero; falls through
    /// otherwise.
    Br {
        /// Condition register.
        cond: Reg,
        /// Taken target address.
        target: u32,
    },
    /// Increments profile counter `id` (present only in instrumented
    /// images; models instrumentation overhead).
    Probe {
        /// Probe counter index.
        id: u32,
    },
    /// `dst = next workload input value` (0 when exhausted).
    Input {
        /// Destination register.
        dst: Reg,
    },
    /// Mixes `src` into the output checksum.
    Output {
        /// Source register.
        src: Reg,
    },
    /// Stops the machine (emitted after the top-level `main` frame).
    Halt,
}

impl MInstr {
    /// Returns `true` for control-transfer instructions (ends of basic
    /// blocks in machine code).
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            MInstr::Call { .. }
                | MInstr::Ret { .. }
                | MInstr::Jmp { .. }
                | MInstr::Br { .. }
                | MInstr::Halt
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_classification() {
        assert!(MInstr::Halt.is_control());
        assert!(MInstr::Jmp { target: 0 }.is_control());
        assert!(!MInstr::Mov {
            dst: Reg(0),
            src: Reg(1)
        }
        .is_control());
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg(7).to_string(), "r7");
        assert_eq!(Reg(7).index(), 7);
    }
}
