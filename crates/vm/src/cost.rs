//! The cycle cost model.

use crate::minstr::MInstr;
use cmo_ir::BinOp;

/// Direct-mapped instruction-cache geometry.
///
/// The default models a PA-8000-class workstation i-cache scaled to
/// our ~100×-scaled programs: 16 Ki instructions (64 KiB at 4
/// bytes/instruction) in 8-instruction (32-byte) lines — large enough
/// that a well-clustered hot working set fits, small enough that
/// layout and code growth matter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ICacheConfig {
    /// Total capacity in instructions.
    pub size_instrs: u32,
    /// Line size in instructions.
    pub line_instrs: u32,
    /// Extra cycles charged per miss.
    pub miss_penalty: u64,
}

impl Default for ICacheConfig {
    fn default() -> Self {
        ICacheConfig {
            size_instrs: 32_768,
            line_instrs: 8,
            miss_penalty: 20,
        }
    }
}

impl ICacheConfig {
    /// Number of cache lines.
    #[must_use]
    pub fn lines(&self) -> u32 {
        (self.size_instrs / self.line_instrs).max(1)
    }
}

/// Per-instruction cycle costs.
///
/// The constants are not calibrated to any real machine; what matters
/// for reproducing the paper's result *shapes* is the relative order:
/// call overhead ≫ simple ALU, memory ≳ ALU, taken branch > fall
/// through, i-cache miss ≫ everything per-instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Simple ALU operation (add, logical, compare, move, immediate).
    pub alu: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide / remainder.
    pub div: u64,
    /// Float add/sub/mul/compare.
    pub fp: u64,
    /// Float divide.
    pub fdiv: u64,
    /// Frame-slot access (hits the stack, near-register speed).
    pub slot: u64,
    /// Global memory access.
    pub global: u64,
    /// Indexed array element access.
    pub elem: u64,
    /// Fixed call overhead (frame setup, save/restore).
    pub call_overhead: u64,
    /// Additional cost per call argument.
    pub call_per_arg: u64,
    /// Return cost.
    pub ret: u64,
    /// Extra cycles for a taken branch or jump.
    pub branch_taken: u64,
    /// Profile probe cost (instrumented builds only).
    pub probe: u64,
    /// Input/output intrinsic cost.
    pub io: u64,
    /// Instruction-cache geometry.
    pub icache: ICacheConfig,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu: 1,
            mul: 3,
            div: 20,
            fp: 2,
            fdiv: 12,
            slot: 1,
            global: 2,
            elem: 3,
            call_overhead: 24,
            call_per_arg: 2,
            ret: 10,
            branch_taken: 3,
            probe: 2,
            io: 4,
            icache: ICacheConfig::default(),
        }
    }
}

impl CostModel {
    /// Base cycles for `instr`, excluding branch-taken and i-cache
    /// effects (charged by the executor).
    #[must_use]
    pub fn instr_cost(&self, instr: &MInstr) -> u64 {
        match instr {
            MInstr::LdImm { .. } | MInstr::LdImmF { .. } | MInstr::Mov { .. } => self.alu,
            MInstr::Bin { op, .. } => match op {
                BinOp::Mul => self.mul,
                BinOp::Div | BinOp::Rem => self.div,
                BinOp::FDiv => self.fdiv,
                BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FLt | BinOp::FEq => self.fp,
                _ => self.alu,
            },
            MInstr::Un { .. } => self.alu,
            MInstr::LdSlot { .. } | MInstr::StSlot { .. } => self.slot,
            MInstr::LdGlobal { .. } | MInstr::StGlobal { .. } => self.global,
            MInstr::LdGlobalElem { .. }
            | MInstr::StGlobalElem { .. }
            | MInstr::LdSlotElem { .. }
            | MInstr::StSlotElem { .. } => self.elem,
            MInstr::Call { args, .. } => self.call_overhead + self.call_per_arg * args.len() as u64,
            MInstr::Ret { .. } => self.ret,
            MInstr::Jmp { .. } | MInstr::Br { .. } => self.alu,
            MInstr::Probe { .. } => self.probe,
            MInstr::Input { .. } | MInstr::Output { .. } => self.io,
            MInstr::Halt => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minstr::Reg;

    #[test]
    fn relative_order_holds() {
        let c = CostModel::default();
        let call = MInstr::Call {
            routine: 0,
            args: vec![Reg(0), Reg(1)],
            dst: None,
        };
        let add = MInstr::Bin {
            op: BinOp::Add,
            dst: Reg(0),
            lhs: Reg(0),
            rhs: Reg(1),
        };
        let div = MInstr::Bin {
            op: BinOp::Div,
            dst: Reg(0),
            lhs: Reg(0),
            rhs: Reg(1),
        };
        // A call+return round trip dwarfs simple ALU work.
        assert!(c.instr_cost(&call) + c.ret > 10 * c.instr_cost(&add));
        assert!(c.instr_cost(&div) > c.instr_cost(&add));
        assert!(c.icache.miss_penalty > c.alu);
    }

    #[test]
    fn call_cost_scales_with_arity() {
        let c = CostModel::default();
        let mk = |n: usize| MInstr::Call {
            routine: 0,
            args: vec![Reg(0); n],
            dst: None,
        };
        assert_eq!(
            c.instr_cost(&mk(4)) - c.instr_cost(&mk(0)),
            4 * c.call_per_arg
        );
    }

    #[test]
    fn icache_line_count() {
        assert_eq!(ICacheConfig::default().lines(), 4096);
    }
}
