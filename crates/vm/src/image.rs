//! Linked executable images.

use crate::minstr::MInstr;
use cmo_profile::{ProbeKey, ProfileDb, RoutineShape};

/// Per-routine information in a linked image.
#[derive(Debug, Clone, PartialEq)]
pub struct MRoutineInfo {
    /// Routine name (for diagnostics and profile keys).
    pub name: String,
    /// Entry address (index into [`MachineImage::code`]).
    pub entry: u32,
    /// Frame slots (locals, arrays, spills) to allocate per activation.
    pub frame_slots: u32,
    /// Code length in instructions.
    pub code_len: u32,
}

/// A fully linked executable image.
///
/// Code addresses are indices into `code`; the order in which the
/// linker concatenated routines *is* the program layout, which the
/// i-cache simulation observes — this is where profile-guided
/// procedure clustering (§3, [13, 15]) becomes measurable.
#[derive(Debug, Clone, Default)]
pub struct MachineImage {
    /// All instructions, concatenated in layout order.
    pub code: Vec<MInstr>,
    /// Routine table; `Call { routine }` operands index this.
    pub routines: Vec<MRoutineInfo>,
    /// Initial global memory (flat cells).
    pub globals: Vec<u64>,
    /// Probe table (empty unless instrumented).
    pub probes: Vec<ProbeKey>,
    /// Instrumentation-time routine shapes (parallel to probe data).
    pub shapes: Vec<(String, RoutineShape)>,
    /// Index of the entry routine (`main`) in `routines`.
    pub entry_routine: u32,
}

impl MachineImage {
    /// Total code size in instructions.
    #[must_use]
    pub fn code_size(&self) -> usize {
        self.code.len()
    }

    /// Returns `true` if the image carries probes.
    #[must_use]
    pub fn is_instrumented(&self) -> bool {
        !self.probes.is_empty()
    }

    /// Finds a routine by name.
    #[must_use]
    pub fn find_routine(&self, name: &str) -> Option<u32> {
        self.routines
            .iter()
            .position(|r| r.name == name)
            .map(|i| i as u32)
    }
}

/// Builds a profile database from the probe counters of one run of an
/// instrumented image.
///
/// # Panics
///
/// Panics if `counts` does not match the image's probe table length.
#[must_use]
pub fn profile_from_run(image: &MachineImage, counts: &[u64]) -> ProfileDb {
    assert_eq!(
        counts.len(),
        image.probes.len(),
        "probe counter vector must match the image probe table"
    );
    let mut db = ProfileDb::new();
    let pairs: Vec<(ProbeKey, u64)> = image
        .probes
        .iter()
        .cloned()
        .zip(counts.iter().copied())
        .collect();
    db.record(&pairs, &image.shapes);
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_from_run_maps_counts() {
        let image = MachineImage {
            probes: vec![ProbeKey::block("f", 0), ProbeKey::site("f", 0)],
            shapes: vec![(
                "f".to_owned(),
                RoutineShape {
                    n_blocks: 1,
                    n_sites: 1,
                    fingerprint: 9,
                },
            )],
            ..MachineImage::default()
        };
        let db = profile_from_run(&image, &[42, 17]);
        assert_eq!(db.block_count("f", 0), Some(42));
        assert_eq!(db.site_count("f", 0), Some(17));
    }

    #[test]
    #[should_panic(expected = "probe counter vector")]
    fn mismatched_counts_panic() {
        let image = MachineImage::default();
        let _ = profile_from_run(&image, &[1]);
    }

    #[test]
    fn find_routine_by_name() {
        let image = MachineImage {
            routines: vec![MRoutineInfo {
                name: "main".to_owned(),
                entry: 0,
                frame_slots: 0,
                code_len: 1,
            }],
            ..MachineImage::default()
        };
        assert_eq!(image.find_routine("main"), Some(0));
        assert_eq!(image.find_routine("other"), None);
        assert!(!image.is_instrumented());
    }
}
