//! The machine executor.

use crate::cost::CostModel;
use crate::image::MachineImage;
use crate::minstr::{MInstr, Reg, NUM_REGS};
use cmo_ir::{BinOp, UnOp};
use std::error::Error;
use std::fmt;

/// Execution limits and options.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Maximum instructions to execute before aborting.
    pub fuel: u64,
    /// Maximum call depth.
    pub max_depth: usize,
    /// The cycle cost model.
    pub cost: CostModel,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            fuel: 500_000_000,
            max_depth: 4096,
            cost: CostModel::default(),
        }
    }
}

/// Why a run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The image has no routines (or a bad entry index).
    NoEntry,
    /// The instruction budget was exhausted (likely an optimizer bug
    /// producing an infinite loop — exactly what §6.3 isolation hunts).
    OutOfFuel,
    /// Call depth exceeded the limit.
    StackOverflow,
    /// Control fell off the end of the code.
    PcOutOfRange {
        /// The offending address.
        pc: u32,
    },
    /// A `Call` named a routine index outside the routine table.
    BadRoutine {
        /// The offending index.
        routine: u32,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NoEntry => f.write_str("image has no entry routine"),
            ExecError::OutOfFuel => f.write_str("instruction budget exhausted"),
            ExecError::StackOverflow => f.write_str("call depth limit exceeded"),
            ExecError::PcOutOfRange { pc } => write!(f, "program counter {pc} out of range"),
            ExecError::BadRoutine { routine } => write!(f, "bad routine index {routine}"),
        }
    }
}

impl Error for ExecError {}

/// The observable outcome of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecResult {
    /// Simulated cycles — the paper's "run time".
    pub cycles: u64,
    /// Instructions executed.
    pub instrs: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Taken branches and jumps.
    pub branches_taken: u64,
    /// Calls executed.
    pub calls: u64,
    /// Output checksum (all `Output` values plus `main`'s return,
    /// order-sensitively mixed). Two compilations of the same program
    /// must produce images with equal checksums on equal inputs.
    pub checksum: u64,
    /// `main`'s return value.
    pub returned: i64,
    /// Probe counters (parallel to the image probe table; empty when
    /// not instrumented).
    pub probe_counts: Vec<u64>,
    /// Deepest call depth reached.
    pub max_depth: usize,
}

struct Frame {
    regs: [u64; NUM_REGS],
    slots: Vec<u64>,
    ret_pc: u32,
    ret_dst: Option<Reg>,
}

/// Direct-mapped instruction cache (the common mid-1990s design; its
/// conflict sensitivity is exactly what makes profile-guided layout
/// and procedure clustering pay, and what punishes careless inlining
/// growth).
struct ICache {
    tags: Vec<u64>,
    line_instrs: u32,
    lines: u32,
}

impl ICache {
    fn new(cfg: crate::cost::ICacheConfig) -> Self {
        ICache {
            tags: vec![u64::MAX; cfg.lines() as usize],
            line_instrs: cfg.line_instrs.max(1),
            lines: cfg.lines(),
        }
    }

    /// Returns `true` on a miss.
    fn fetch(&mut self, addr: u32) -> bool {
        let line_addr = u64::from(addr) / u64::from(self.line_instrs);
        let set = (line_addr % u64::from(self.lines)) as usize;
        let tag = line_addr / u64::from(self.lines);
        if self.tags[set] == tag {
            false
        } else {
            self.tags[set] = tag;
            true
        }
    }
}

#[inline]
fn as_i(v: u64) -> i64 {
    v as i64
}

#[inline]
fn as_f(v: u64) -> f64 {
    f64::from_bits(v)
}

#[inline]
fn from_i(v: i64) -> u64 {
    v as u64
}

#[inline]
fn from_f(v: f64) -> u64 {
    v.to_bits()
}

fn eval_bin(op: BinOp, a: u64, b: u64) -> u64 {
    match op {
        BinOp::Add => from_i(as_i(a).wrapping_add(as_i(b))),
        BinOp::Sub => from_i(as_i(a).wrapping_sub(as_i(b))),
        BinOp::Mul => from_i(as_i(a).wrapping_mul(as_i(b))),
        BinOp::Div => from_i(if as_i(b) == 0 {
            0
        } else {
            as_i(a).wrapping_div(as_i(b))
        }),
        BinOp::Rem => from_i(if as_i(b) == 0 {
            0
        } else {
            as_i(a).wrapping_rem(as_i(b))
        }),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => from_i(as_i(a).wrapping_shl(b as u32 & 63)),
        BinOp::Shr => from_i(as_i(a).wrapping_shr(b as u32 & 63)),
        BinOp::Eq => u64::from(as_i(a) == as_i(b)),
        BinOp::Ne => u64::from(as_i(a) != as_i(b)),
        BinOp::Lt => u64::from(as_i(a) < as_i(b)),
        BinOp::Le => u64::from(as_i(a) <= as_i(b)),
        BinOp::FAdd => from_f(as_f(a) + as_f(b)),
        BinOp::FSub => from_f(as_f(a) - as_f(b)),
        BinOp::FMul => from_f(as_f(a) * as_f(b)),
        BinOp::FDiv => from_f(as_f(a) / as_f(b)),
        BinOp::FLt => u64::from(as_f(a) < as_f(b)),
        BinOp::FEq => u64::from(as_f(a) == as_f(b)),
    }
}

fn eval_un(op: UnOp, v: u64) -> u64 {
    match op {
        UnOp::Neg => from_i(as_i(v).wrapping_neg()),
        UnOp::Not => u64::from(as_i(v) == 0),
        UnOp::FNeg => from_f(-as_f(v)),
        UnOp::I2F => from_f(as_i(v) as f64),
        UnOp::F2I => from_i(as_f(v) as i64),
    }
}

#[inline]
fn wrap_index(index: u64, len: u32) -> u64 {
    if len == 0 {
        0
    } else {
        (as_i(index).rem_euclid(i64::from(len))) as u64
    }
}

/// Runs a linked image on `input`.
///
/// # Errors
///
/// Returns an [`ExecError`] for resource exhaustion or malformed
/// images; a *correct* compilation never produces the latter.
pub fn run(
    image: &MachineImage,
    input: &[i64],
    config: &RunConfig,
) -> Result<ExecResult, ExecError> {
    let entry = image
        .routines
        .get(image.entry_routine as usize)
        .ok_or(ExecError::NoEntry)?;
    let mut globals = image.globals.clone();
    let mut icache = ICache::new(config.cost.icache);
    let mut probe_counts = vec![0u64; image.probes.len()];
    let mut frames = vec![Frame {
        regs: [0; NUM_REGS],
        slots: vec![0; entry.frame_slots as usize],
        ret_pc: u32::MAX,
        ret_dst: None,
    }];
    let mut pc = entry.entry;
    let mut result = ExecResult {
        cycles: 0,
        instrs: 0,
        icache_misses: 0,
        branches_taken: 0,
        calls: 0,
        checksum: 0xcbf2_9ce4_8422_2325,
        returned: 0,
        probe_counts: Vec::new(),
        max_depth: 1,
    };
    let mut input_pos = 0usize;
    let cost = &config.cost;

    macro_rules! mix {
        ($v:expr) => {
            result.checksum = result
                .checksum
                .rotate_left(5)
                .wrapping_mul(0x0000_0100_0000_01b3)
                ^ $v
        };
    }

    loop {
        if result.instrs >= config.fuel {
            return Err(ExecError::OutOfFuel);
        }
        let instr = image
            .code
            .get(pc as usize)
            .ok_or(ExecError::PcOutOfRange { pc })?;
        if icache.fetch(pc) {
            result.icache_misses += 1;
            result.cycles += cost.icache.miss_penalty;
        }
        result.instrs += 1;
        result.cycles += cost.instr_cost(instr);
        let frame = frames.last_mut().expect("at least one frame");
        let mut next_pc = pc + 1;

        match instr {
            MInstr::LdImm { dst, value } => frame.regs[dst.index()] = from_i(*value),
            MInstr::LdImmF { dst, value } => frame.regs[dst.index()] = from_f(*value),
            MInstr::Bin { op, dst, lhs, rhs } => {
                frame.regs[dst.index()] =
                    eval_bin(*op, frame.regs[lhs.index()], frame.regs[rhs.index()]);
            }
            MInstr::Un { op, dst, src } => {
                frame.regs[dst.index()] = eval_un(*op, frame.regs[src.index()]);
            }
            MInstr::Mov { dst, src } => frame.regs[dst.index()] = frame.regs[src.index()],
            MInstr::LdSlot { dst, slot } => {
                frame.regs[dst.index()] = frame.slots.get(*slot as usize).copied().unwrap_or(0);
            }
            MInstr::StSlot { slot, src } => {
                let v = frame.regs[src.index()];
                if let Some(cell) = frame.slots.get_mut(*slot as usize) {
                    *cell = v;
                }
            }
            MInstr::LdGlobal { dst, addr } => {
                frame.regs[dst.index()] = globals.get(*addr as usize).copied().unwrap_or(0);
            }
            MInstr::StGlobal { addr, src } => {
                let v = frame.regs[src.index()];
                if let Some(cell) = globals.get_mut(*addr as usize) {
                    *cell = v;
                }
            }
            MInstr::LdGlobalElem {
                dst,
                base,
                len,
                index,
            } => {
                let i = wrap_index(frame.regs[index.index()], *len);
                frame.regs[dst.index()] = globals
                    .get(*base as usize + i as usize)
                    .copied()
                    .unwrap_or(0);
            }
            MInstr::StGlobalElem {
                base,
                len,
                index,
                src,
            } => {
                let i = wrap_index(frame.regs[index.index()], *len);
                let v = frame.regs[src.index()];
                if let Some(cell) = globals.get_mut(*base as usize + i as usize) {
                    *cell = v;
                }
            }
            MInstr::LdSlotElem {
                dst,
                base_slot,
                len,
                index,
            } => {
                let i = wrap_index(frame.regs[index.index()], *len);
                frame.regs[dst.index()] = frame
                    .slots
                    .get(*base_slot as usize + i as usize)
                    .copied()
                    .unwrap_or(0);
            }
            MInstr::StSlotElem {
                base_slot,
                len,
                index,
                src,
            } => {
                let i = wrap_index(frame.regs[index.index()], *len);
                let v = frame.regs[src.index()];
                if let Some(cell) = frame.slots.get_mut(*base_slot as usize + i as usize) {
                    *cell = v;
                }
            }
            MInstr::Call { routine, args, dst } => {
                let callee = image
                    .routines
                    .get(*routine as usize)
                    .ok_or(ExecError::BadRoutine { routine: *routine })?;
                if frames.len() >= config.max_depth {
                    return Err(ExecError::StackOverflow);
                }
                let mut regs = [0u64; NUM_REGS];
                for (i, a) in args.iter().enumerate().take(NUM_REGS) {
                    regs[i] = frames.last().expect("frame").regs[a.index()];
                }
                frames.push(Frame {
                    regs,
                    slots: vec![0; callee.frame_slots as usize],
                    ret_pc: next_pc,
                    ret_dst: *dst,
                });
                result.calls += 1;
                result.max_depth = result.max_depth.max(frames.len());
                next_pc = callee.entry;
            }
            MInstr::Ret { value } => {
                let v = value.map(|r| frames.last().expect("frame").regs[r.index()]);
                let done = frames.pop().expect("frame to pop");
                match frames.last_mut() {
                    None => {
                        let rv = v.unwrap_or(0);
                        result.returned = as_i(rv);
                        mix!(rv);
                        result.probe_counts = probe_counts;
                        return Ok(result);
                    }
                    Some(caller) => {
                        if let (Some(dst), Some(v)) = (done.ret_dst, v) {
                            caller.regs[dst.index()] = v;
                        }
                        next_pc = done.ret_pc;
                    }
                }
            }
            MInstr::Jmp { target } => {
                result.branches_taken += 1;
                result.cycles += cost.branch_taken;
                next_pc = *target;
            }
            MInstr::Br { cond, target } => {
                if frame.regs[cond.index()] != 0 {
                    result.branches_taken += 1;
                    result.cycles += cost.branch_taken;
                    next_pc = *target;
                }
            }
            MInstr::Probe { id } => {
                if let Some(c) = probe_counts.get_mut(*id as usize) {
                    *c += 1;
                }
            }
            MInstr::Input { dst } => {
                let v = input.get(input_pos).copied().unwrap_or(0);
                input_pos += 1;
                frame.regs[dst.index()] = from_i(v);
            }
            MInstr::Output { src } => {
                mix!(frame.regs[src.index()]);
            }
            MInstr::Halt => {
                result.probe_counts = probe_counts;
                return Ok(result);
            }
        }
        pc = next_pc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::MRoutineInfo;

    fn image_of(code: Vec<MInstr>, routines: Vec<MRoutineInfo>) -> MachineImage {
        MachineImage {
            code,
            routines,
            ..MachineImage::default()
        }
    }

    fn single(code: Vec<MInstr>, frame_slots: u32) -> MachineImage {
        let len = code.len() as u32;
        image_of(
            code,
            vec![MRoutineInfo {
                name: "main".to_owned(),
                entry: 0,
                frame_slots,
                code_len: len,
            }],
        )
    }

    #[test]
    fn arithmetic_and_return() {
        let image = single(
            vec![
                MInstr::LdImm {
                    dst: Reg(0),
                    value: 20,
                },
                MInstr::LdImm {
                    dst: Reg(1),
                    value: 22,
                },
                MInstr::Bin {
                    op: BinOp::Add,
                    dst: Reg(2),
                    lhs: Reg(0),
                    rhs: Reg(1),
                },
                MInstr::Ret {
                    value: Some(Reg(2)),
                },
            ],
            0,
        );
        let r = run(&image, &[], &RunConfig::default()).unwrap();
        assert_eq!(r.returned, 42);
        assert_eq!(r.instrs, 4);
        assert!(r.cycles >= 4);
    }

    #[test]
    fn division_by_zero_is_total() {
        let image = single(
            vec![
                MInstr::LdImm {
                    dst: Reg(0),
                    value: 5,
                },
                MInstr::LdImm {
                    dst: Reg(1),
                    value: 0,
                },
                MInstr::Bin {
                    op: BinOp::Div,
                    dst: Reg(2),
                    lhs: Reg(0),
                    rhs: Reg(1),
                },
                MInstr::Ret {
                    value: Some(Reg(2)),
                },
            ],
            0,
        );
        let r = run(&image, &[], &RunConfig::default()).unwrap();
        assert_eq!(r.returned, 0);
    }

    #[test]
    fn calls_pass_args_and_return_values() {
        // main: r0=7; call double(r0)->r1; ret r1
        // double: r0=r0*2 ; ret r0
        let code = vec![
            MInstr::LdImm {
                dst: Reg(0),
                value: 7,
            },
            MInstr::Call {
                routine: 1,
                args: vec![Reg(0)],
                dst: Some(Reg(1)),
            },
            MInstr::Ret {
                value: Some(Reg(1)),
            },
            // double at addr 3
            MInstr::LdImm {
                dst: Reg(1),
                value: 2,
            },
            MInstr::Bin {
                op: BinOp::Mul,
                dst: Reg(0),
                lhs: Reg(0),
                rhs: Reg(1),
            },
            MInstr::Ret {
                value: Some(Reg(0)),
            },
        ];
        let image = image_of(
            code,
            vec![
                MRoutineInfo {
                    name: "main".to_owned(),
                    entry: 0,
                    frame_slots: 0,
                    code_len: 3,
                },
                MRoutineInfo {
                    name: "double".to_owned(),
                    entry: 3,
                    frame_slots: 0,
                    code_len: 3,
                },
            ],
        );
        let r = run(&image, &[], &RunConfig::default()).unwrap();
        assert_eq!(r.returned, 14);
        assert_eq!(r.calls, 1);
        assert_eq!(r.max_depth, 2);
    }

    #[test]
    fn loop_branches_and_fuel() {
        // r0 = input; loop: r0 -= 1; br r0 -> loop; ret r0
        let code = vec![
            MInstr::Input { dst: Reg(0) },
            MInstr::LdImm {
                dst: Reg(1),
                value: 1,
            },
            MInstr::Bin {
                op: BinOp::Sub,
                dst: Reg(0),
                lhs: Reg(0),
                rhs: Reg(1),
            },
            MInstr::Br {
                cond: Reg(0),
                target: 2,
            },
            MInstr::Ret {
                value: Some(Reg(0)),
            },
        ];
        let image = single(code, 0);
        let r = run(&image, &[10], &RunConfig::default()).unwrap();
        assert_eq!(r.returned, 0);
        assert_eq!(r.branches_taken, 9);

        let starved = RunConfig {
            fuel: 5,
            ..RunConfig::default()
        };
        assert_eq!(run(&image, &[10], &starved), Err(ExecError::OutOfFuel));
    }

    #[test]
    fn globals_and_arrays() {
        // globals: [100, 0, 0, 0]; g[1+(5 mod 3)] = g[0]; ret g[3]
        let code = vec![
            MInstr::LdGlobal {
                dst: Reg(0),
                addr: 0,
            },
            MInstr::LdImm {
                dst: Reg(1),
                value: 5,
            },
            MInstr::StGlobalElem {
                base: 1,
                len: 3,
                index: Reg(1),
                src: Reg(0),
            },
            MInstr::LdGlobal {
                dst: Reg(2),
                addr: 3,
            },
            MInstr::Ret {
                value: Some(Reg(2)),
            },
        ];
        let mut image = single(code, 0);
        image.globals = vec![100, 0, 0, 0];
        let r = run(&image, &[], &RunConfig::default()).unwrap();
        assert_eq!(r.returned, 100);
    }

    #[test]
    fn negative_indices_wrap_like_rem_euclid() {
        let code = vec![
            MInstr::LdImm {
                dst: Reg(0),
                value: -1,
            },
            MInstr::LdGlobalElem {
                dst: Reg(1),
                base: 0,
                len: 4,
                index: Reg(0),
            },
            MInstr::Ret {
                value: Some(Reg(1)),
            },
        ];
        let mut image = single(code, 0);
        image.globals = vec![10, 20, 30, 40];
        let r = run(&image, &[], &RunConfig::default()).unwrap();
        assert_eq!(r.returned, 40);
    }

    #[test]
    fn probes_count_and_cost() {
        let code = vec![MInstr::Probe { id: 0 }, MInstr::Ret { value: None }];
        let mut image = single(code, 0);
        image.probes = vec![cmo_profile::ProbeKey::block("main", 0)];
        image.shapes = vec![(
            "main".to_owned(),
            cmo_profile::RoutineShape {
                n_blocks: 1,
                n_sites: 0,
                fingerprint: 1,
            },
        )];
        let r = run(&image, &[], &RunConfig::default()).unwrap();
        assert_eq!(r.probe_counts, vec![1]);
        let db = crate::image::profile_from_run(&image, &r.probe_counts);
        assert_eq!(db.block_count("main", 0), Some(1));
    }

    #[test]
    fn recursion_hits_depth_limit() {
        let code = vec![
            MInstr::Call {
                routine: 0,
                args: vec![],
                dst: None,
            },
            MInstr::Ret { value: None },
        ];
        let image = single(code, 0);
        let cfg = RunConfig {
            max_depth: 16,
            ..RunConfig::default()
        };
        assert_eq!(run(&image, &[], &cfg), Err(ExecError::StackOverflow));
    }

    #[test]
    fn checksum_is_deterministic_and_order_sensitive() {
        let prog = |a: i64, b: i64| {
            single(
                vec![
                    MInstr::LdImm {
                        dst: Reg(0),
                        value: a,
                    },
                    MInstr::Output { src: Reg(0) },
                    MInstr::LdImm {
                        dst: Reg(0),
                        value: b,
                    },
                    MInstr::Output { src: Reg(0) },
                    MInstr::Ret { value: None },
                ],
                0,
            )
        };
        let cfg = RunConfig::default();
        let r1 = run(&prog(1, 2), &[], &cfg).unwrap();
        let r2 = run(&prog(1, 2), &[], &cfg).unwrap();
        let r3 = run(&prog(2, 1), &[], &cfg).unwrap();
        assert_eq!(r1.checksum, r2.checksum);
        assert_ne!(r1.checksum, r3.checksum);
    }

    #[test]
    fn icache_misses_depend_on_layout_distance() {
        // Two routines far apart that ping-pong: conflict misses if
        // they map to the same lines.
        let cfg = RunConfig::default();
        let lines_span = (cfg.cost.icache.size_instrs) as usize; // one full cache apart
        let mut code = vec![
            MInstr::LdImm {
                dst: Reg(0),
                value: 200,
            },
            // loop: call far routine, decrement, branch back
            MInstr::Call {
                routine: 1,
                args: vec![],
                dst: None,
            },
            MInstr::LdImm {
                dst: Reg(1),
                value: 1,
            },
            MInstr::Bin {
                op: BinOp::Sub,
                dst: Reg(0),
                lhs: Reg(0),
                rhs: Reg(1),
            },
            MInstr::Br {
                cond: Reg(0),
                target: 1,
            },
            MInstr::Ret { value: None },
        ];
        // Pad so the callee lands exactly one cache-size away from main:
        // same index bits -> direct-mapped conflict on every call.
        while code.len() < lines_span {
            code.push(MInstr::Halt);
        }
        let callee_entry = code.len() as u32;
        code.push(MInstr::Ret { value: None });
        let far = MachineImage {
            routines: vec![
                MRoutineInfo {
                    name: "main".to_owned(),
                    entry: 0,
                    frame_slots: 0,
                    code_len: 6,
                },
                MRoutineInfo {
                    name: "callee".to_owned(),
                    entry: callee_entry,
                    frame_slots: 0,
                    code_len: 1,
                },
            ],
            code,
            ..MachineImage::default()
        };
        // Near layout: callee immediately after main.
        let mut near_code = vec![
            MInstr::LdImm {
                dst: Reg(0),
                value: 200,
            },
            MInstr::Call {
                routine: 1,
                args: vec![],
                dst: None,
            },
            MInstr::LdImm {
                dst: Reg(1),
                value: 1,
            },
            MInstr::Bin {
                op: BinOp::Sub,
                dst: Reg(0),
                lhs: Reg(0),
                rhs: Reg(1),
            },
            MInstr::Br {
                cond: Reg(0),
                target: 1,
            },
            MInstr::Ret { value: None },
        ];
        near_code.push(MInstr::Ret { value: None });
        let near = MachineImage {
            routines: vec![
                MRoutineInfo {
                    name: "main".to_owned(),
                    entry: 0,
                    frame_slots: 0,
                    code_len: 6,
                },
                MRoutineInfo {
                    name: "callee".to_owned(),
                    entry: 6,
                    frame_slots: 0,
                    code_len: 1,
                },
            ],
            code: near_code,
            ..MachineImage::default()
        };
        let far_r = run(&far, &[], &cfg).unwrap();
        let near_r = run(&near, &[], &cfg).unwrap();
        assert!(
            far_r.icache_misses > near_r.icache_misses * 4,
            "far={} near={}",
            far_r.icache_misses,
            near_r.icache_misses
        );
        assert!(far_r.cycles > near_r.cycles);
    }
}
