//! Deterministic binary codec for linked machine images.
//!
//! The incremental-build cache stores whole [`MachineImage`]s in the
//! persistent NAIM repository, so images need a relocatable byte form
//! with the same guarantees as pool images: address-independent, varint
//! packed, and bit-exact on round trip (floats travel as raw bit
//! patterns). The encoding reuses the `cmo-naim` [`Encoder`]/[`Decoder`]
//! primitives rather than inventing another format.

use cmo_ir::{BinOp, UnOp};
use cmo_naim::{DecodeError, Decoder, Encoder};
use cmo_profile::{ProbeKey, ProbeKind, RoutineShape};

use crate::image::{MRoutineInfo, MachineImage};
use crate::minstr::{MInstr, Reg};

/// Magic prefix of a standalone encoded machine image.
pub const IMAGE_MAGIC: [u8; 8] = *b"CMOIMG01";

/// Decode table for binary operators; the encoded form is the index.
const BIN_OPS: [BinOp; 20] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::FAdd,
    BinOp::FSub,
    BinOp::FMul,
    BinOp::FDiv,
    BinOp::FLt,
    BinOp::FEq,
];

/// Decode table for unary operators; the encoded form is the index.
const UN_OPS: [UnOp; 5] = [UnOp::Neg, UnOp::Not, UnOp::FNeg, UnOp::I2F, UnOp::F2I];

fn op_code<T: PartialEq>(table: &[T], op: &T) -> u8 {
    table
        .iter()
        .position(|t| t == op)
        .expect("operator missing from codec table") as u8
}

fn op_decode<T: Copy>(table: &[T], code: u8, at: usize) -> Result<T, DecodeError> {
    table
        .get(code as usize)
        .copied()
        .ok_or(DecodeError::BadTag {
            tag: code,
            offset: at,
        })
}

fn write_reg(enc: &mut Encoder, r: Reg) {
    enc.write_u8(r.0);
}

fn read_reg(dec: &mut Decoder<'_>) -> Result<Reg, DecodeError> {
    Ok(Reg(dec.read_u8()?))
}

fn write_opt_reg(enc: &mut Encoder, r: Option<Reg>) {
    match r {
        Some(r) => {
            enc.write_bool(true);
            write_reg(enc, r);
        }
        None => enc.write_bool(false),
    }
}

fn read_opt_reg(dec: &mut Decoder<'_>) -> Result<Option<Reg>, DecodeError> {
    Ok(if dec.read_bool()? {
        Some(read_reg(dec)?)
    } else {
        None
    })
}

fn encode_instr(enc: &mut Encoder, instr: &MInstr) {
    match instr {
        MInstr::LdImm { dst, value } => {
            enc.write_u8(0);
            write_reg(enc, *dst);
            enc.write_i64(*value);
        }
        MInstr::LdImmF { dst, value } => {
            enc.write_u8(1);
            write_reg(enc, *dst);
            enc.write_f64(*value);
        }
        MInstr::Bin { op, dst, lhs, rhs } => {
            enc.write_u8(2);
            enc.write_u8(op_code(&BIN_OPS, op));
            write_reg(enc, *dst);
            write_reg(enc, *lhs);
            write_reg(enc, *rhs);
        }
        MInstr::Un { op, dst, src } => {
            enc.write_u8(3);
            enc.write_u8(op_code(&UN_OPS, op));
            write_reg(enc, *dst);
            write_reg(enc, *src);
        }
        MInstr::Mov { dst, src } => {
            enc.write_u8(4);
            write_reg(enc, *dst);
            write_reg(enc, *src);
        }
        MInstr::LdSlot { dst, slot } => {
            enc.write_u8(5);
            write_reg(enc, *dst);
            enc.write_u32(*slot);
        }
        MInstr::StSlot { slot, src } => {
            enc.write_u8(6);
            enc.write_u32(*slot);
            write_reg(enc, *src);
        }
        MInstr::LdGlobal { dst, addr } => {
            enc.write_u8(7);
            write_reg(enc, *dst);
            enc.write_u32(*addr);
        }
        MInstr::StGlobal { addr, src } => {
            enc.write_u8(8);
            enc.write_u32(*addr);
            write_reg(enc, *src);
        }
        MInstr::LdGlobalElem {
            dst,
            base,
            len,
            index,
        } => {
            enc.write_u8(9);
            write_reg(enc, *dst);
            enc.write_u32(*base);
            enc.write_u32(*len);
            write_reg(enc, *index);
        }
        MInstr::StGlobalElem {
            base,
            len,
            index,
            src,
        } => {
            enc.write_u8(10);
            enc.write_u32(*base);
            enc.write_u32(*len);
            write_reg(enc, *index);
            write_reg(enc, *src);
        }
        MInstr::LdSlotElem {
            dst,
            base_slot,
            len,
            index,
        } => {
            enc.write_u8(11);
            write_reg(enc, *dst);
            enc.write_u32(*base_slot);
            enc.write_u32(*len);
            write_reg(enc, *index);
        }
        MInstr::StSlotElem {
            base_slot,
            len,
            index,
            src,
        } => {
            enc.write_u8(12);
            enc.write_u32(*base_slot);
            enc.write_u32(*len);
            write_reg(enc, *index);
            write_reg(enc, *src);
        }
        MInstr::Call { routine, args, dst } => {
            enc.write_u8(13);
            enc.write_u32(*routine);
            enc.write_usize(args.len());
            for &a in args {
                write_reg(enc, a);
            }
            write_opt_reg(enc, *dst);
        }
        MInstr::Ret { value } => {
            enc.write_u8(14);
            write_opt_reg(enc, *value);
        }
        MInstr::Jmp { target } => {
            enc.write_u8(15);
            enc.write_u32(*target);
        }
        MInstr::Br { cond, target } => {
            enc.write_u8(16);
            write_reg(enc, *cond);
            enc.write_u32(*target);
        }
        MInstr::Probe { id } => {
            enc.write_u8(17);
            enc.write_u32(*id);
        }
        MInstr::Input { dst } => {
            enc.write_u8(18);
            write_reg(enc, *dst);
        }
        MInstr::Output { src } => {
            enc.write_u8(19);
            write_reg(enc, *src);
        }
        MInstr::Halt => enc.write_u8(20),
    }
}

fn decode_instr(dec: &mut Decoder<'_>) -> Result<MInstr, DecodeError> {
    let at = dec.position();
    let tag = dec.read_u8()?;
    Ok(match tag {
        0 => MInstr::LdImm {
            dst: read_reg(dec)?,
            value: dec.read_i64()?,
        },
        1 => MInstr::LdImmF {
            dst: read_reg(dec)?,
            value: dec.read_f64()?,
        },
        2 => {
            let op_at = dec.position();
            let op = op_decode(&BIN_OPS, dec.read_u8()?, op_at)?;
            MInstr::Bin {
                op,
                dst: read_reg(dec)?,
                lhs: read_reg(dec)?,
                rhs: read_reg(dec)?,
            }
        }
        3 => {
            let op_at = dec.position();
            let op = op_decode(&UN_OPS, dec.read_u8()?, op_at)?;
            MInstr::Un {
                op,
                dst: read_reg(dec)?,
                src: read_reg(dec)?,
            }
        }
        4 => MInstr::Mov {
            dst: read_reg(dec)?,
            src: read_reg(dec)?,
        },
        5 => MInstr::LdSlot {
            dst: read_reg(dec)?,
            slot: dec.read_u32()?,
        },
        6 => MInstr::StSlot {
            slot: dec.read_u32()?,
            src: read_reg(dec)?,
        },
        7 => MInstr::LdGlobal {
            dst: read_reg(dec)?,
            addr: dec.read_u32()?,
        },
        8 => MInstr::StGlobal {
            addr: dec.read_u32()?,
            src: read_reg(dec)?,
        },
        9 => MInstr::LdGlobalElem {
            dst: read_reg(dec)?,
            base: dec.read_u32()?,
            len: dec.read_u32()?,
            index: read_reg(dec)?,
        },
        10 => MInstr::StGlobalElem {
            base: dec.read_u32()?,
            len: dec.read_u32()?,
            index: read_reg(dec)?,
            src: read_reg(dec)?,
        },
        11 => MInstr::LdSlotElem {
            dst: read_reg(dec)?,
            base_slot: dec.read_u32()?,
            len: dec.read_u32()?,
            index: read_reg(dec)?,
        },
        12 => MInstr::StSlotElem {
            base_slot: dec.read_u32()?,
            len: dec.read_u32()?,
            index: read_reg(dec)?,
            src: read_reg(dec)?,
        },
        13 => {
            let routine = dec.read_u32()?;
            let n = dec.read_usize()?;
            let mut args = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                args.push(read_reg(dec)?);
            }
            MInstr::Call {
                routine,
                args,
                dst: read_opt_reg(dec)?,
            }
        }
        14 => MInstr::Ret {
            value: read_opt_reg(dec)?,
        },
        15 => MInstr::Jmp {
            target: dec.read_u32()?,
        },
        16 => MInstr::Br {
            cond: read_reg(dec)?,
            target: dec.read_u32()?,
        },
        17 => MInstr::Probe {
            id: dec.read_u32()?,
        },
        18 => MInstr::Input {
            dst: read_reg(dec)?,
        },
        19 => MInstr::Output {
            src: read_reg(dec)?,
        },
        20 => MInstr::Halt,
        tag => return Err(DecodeError::BadTag { tag, offset: at }),
    })
}

impl MachineImage {
    /// Appends the image's relocatable encoding to `enc`.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.write_usize(self.code.len());
        for instr in &self.code {
            encode_instr(enc, instr);
        }
        enc.write_usize(self.routines.len());
        for r in &self.routines {
            enc.write_str(&r.name);
            enc.write_u32(r.entry);
            enc.write_u32(r.frame_slots);
            enc.write_u32(r.code_len);
        }
        enc.write_usize(self.globals.len());
        for &g in &self.globals {
            enc.write_u64(g);
        }
        enc.write_usize(self.probes.len());
        for p in &self.probes {
            enc.write_str(&p.routine);
            match p.kind {
                ProbeKind::Block(n) => {
                    enc.write_u8(0);
                    enc.write_u32(n);
                }
                ProbeKind::Site(n) => {
                    enc.write_u8(1);
                    enc.write_u32(n);
                }
            }
        }
        enc.write_usize(self.shapes.len());
        for (name, shape) in &self.shapes {
            enc.write_str(name);
            enc.write_u32(shape.n_blocks);
            enc.write_u32(shape.n_sites);
            enc.write_u64(shape.fingerprint);
        }
        enc.write_u32(self.entry_routine);
    }

    /// Decodes an image previously written by [`MachineImage::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncation, unknown tags, or
    /// malformed fields.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n_code = dec.read_usize()?;
        let mut code = Vec::with_capacity(n_code.min(1 << 20));
        for _ in 0..n_code {
            code.push(decode_instr(dec)?);
        }
        let n_routines = dec.read_usize()?;
        let mut routines = Vec::with_capacity(n_routines.min(1 << 16));
        for _ in 0..n_routines {
            routines.push(MRoutineInfo {
                name: dec.read_str()?.to_owned(),
                entry: dec.read_u32()?,
                frame_slots: dec.read_u32()?,
                code_len: dec.read_u32()?,
            });
        }
        let n_globals = dec.read_usize()?;
        let mut globals = Vec::with_capacity(n_globals.min(1 << 20));
        for _ in 0..n_globals {
            globals.push(dec.read_u64()?);
        }
        let n_probes = dec.read_usize()?;
        let mut probes = Vec::with_capacity(n_probes.min(1 << 20));
        for _ in 0..n_probes {
            let routine = dec.read_str()?.to_owned();
            let at = dec.position();
            let kind = match dec.read_u8()? {
                0 => ProbeKind::Block(dec.read_u32()?),
                1 => ProbeKind::Site(dec.read_u32()?),
                tag => return Err(DecodeError::BadTag { tag, offset: at }),
            };
            probes.push(ProbeKey { routine, kind });
        }
        let n_shapes = dec.read_usize()?;
        let mut shapes = Vec::with_capacity(n_shapes.min(1 << 16));
        for _ in 0..n_shapes {
            let name = dec.read_str()?.to_owned();
            let shape = RoutineShape {
                n_blocks: dec.read_u32()?,
                n_sites: dec.read_u32()?,
                fingerprint: dec.read_u64()?,
            };
            shapes.push((name, shape));
        }
        let entry_routine = dec.read_u32()?;
        Ok(MachineImage {
            code,
            routines,
            globals,
            probes,
            shapes,
            entry_routine,
        })
    }

    /// Serializes the image as a standalone byte string with the
    /// [`IMAGE_MAGIC`] prefix.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(self.code.len() * 4 + 64);
        for &b in &IMAGE_MAGIC {
            enc.write_u8(b);
        }
        self.encode(&mut enc);
        enc.into_bytes()
    }

    /// Parses a byte string produced by [`MachineImage::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on a missing magic prefix, truncation,
    /// or trailing garbage.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        if bytes.len() < IMAGE_MAGIC.len() || bytes[..IMAGE_MAGIC.len()] != IMAGE_MAGIC {
            return Err(DecodeError::Corrupt {
                what: "missing machine-image magic",
            });
        }
        let mut dec = Decoder::new(&bytes[IMAGE_MAGIC.len()..]);
        let image = MachineImage::decode(&mut dec)?;
        if !dec.is_at_end() {
            return Err(DecodeError::Corrupt {
                what: "trailing bytes after machine image",
            });
        }
        Ok(image)
    }

    /// Rough in-memory footprint, for loader accounting of cached
    /// images.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.code.len() * std::mem::size_of::<MInstr>()
            + self.routines.len() * std::mem::size_of::<MRoutineInfo>()
            + self.globals.len() * 8
            + self.probes.len() * 48
            + self.shapes.len() * 48
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exhaustive_image() -> MachineImage {
        let code = vec![
            MInstr::LdImm {
                dst: Reg(0),
                value: -42,
            },
            MInstr::LdImmF {
                dst: Reg(1),
                value: -1.5,
            },
            MInstr::Bin {
                op: BinOp::FMul,
                dst: Reg(2),
                lhs: Reg(0),
                rhs: Reg(1),
            },
            MInstr::Un {
                op: UnOp::F2I,
                dst: Reg(3),
                src: Reg(2),
            },
            MInstr::Mov {
                dst: Reg(4),
                src: Reg(3),
            },
            MInstr::LdSlot {
                dst: Reg(5),
                slot: 9,
            },
            MInstr::StSlot {
                slot: 9,
                src: Reg(5),
            },
            MInstr::LdGlobal {
                dst: Reg(6),
                addr: 100,
            },
            MInstr::StGlobal {
                addr: 100,
                src: Reg(6),
            },
            MInstr::LdGlobalElem {
                dst: Reg(7),
                base: 4,
                len: 16,
                index: Reg(0),
            },
            MInstr::StGlobalElem {
                base: 4,
                len: 16,
                index: Reg(0),
                src: Reg(7),
            },
            MInstr::LdSlotElem {
                dst: Reg(8),
                base_slot: 2,
                len: 8,
                index: Reg(1),
            },
            MInstr::StSlotElem {
                base_slot: 2,
                len: 8,
                index: Reg(1),
                src: Reg(8),
            },
            MInstr::Call {
                routine: 1,
                args: vec![Reg(0), Reg(1)],
                dst: Some(Reg(9)),
            },
            MInstr::Call {
                routine: 0,
                args: vec![],
                dst: None,
            },
            MInstr::Ret {
                value: Some(Reg(9)),
            },
            MInstr::Ret { value: None },
            MInstr::Jmp { target: 3 },
            MInstr::Br {
                cond: Reg(9),
                target: 0,
            },
            MInstr::Probe { id: 2 },
            MInstr::Input { dst: Reg(10) },
            MInstr::Output { src: Reg(10) },
            MInstr::Halt,
        ];
        MachineImage {
            code,
            routines: vec![
                MRoutineInfo {
                    name: "main".into(),
                    entry: 0,
                    frame_slots: 12,
                    code_len: 20,
                },
                MRoutineInfo {
                    name: "helper\"q\"".into(),
                    entry: 20,
                    frame_slots: 3,
                    code_len: 3,
                },
            ],
            globals: vec![0, u64::MAX, 7],
            probes: vec![ProbeKey::block("main", 0), ProbeKey::site("main", 1)],
            shapes: vec![(
                "main".into(),
                RoutineShape {
                    n_blocks: 4,
                    n_sites: 2,
                    fingerprint: 0xdead_beef,
                },
            )],
            entry_routine: 0,
        }
    }

    #[test]
    fn image_round_trips_every_instruction() {
        let image = exhaustive_image();
        let bytes = image.to_bytes();
        let back = MachineImage::from_bytes(&bytes).unwrap();
        assert_eq!(back.code, image.code);
        assert_eq!(back.routines, image.routines);
        assert_eq!(back.globals, image.globals);
        assert_eq!(back.probes, image.probes);
        assert_eq!(back.shapes, image.shapes);
        assert_eq!(back.entry_routine, image.entry_routine);
    }

    #[test]
    fn encoding_is_deterministic() {
        let image = exhaustive_image();
        assert_eq!(image.to_bytes(), image.to_bytes());
    }

    #[test]
    fn float_immediates_survive_bit_exact() {
        for v in [0.0, -0.0, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE] {
            let image = MachineImage {
                code: vec![MInstr::LdImmF {
                    dst: Reg(0),
                    value: v,
                }],
                ..MachineImage::default()
            };
            let back = MachineImage::from_bytes(&image.to_bytes()).unwrap();
            match back.code[0] {
                MInstr::LdImmF { value, .. } => assert_eq!(value.to_bits(), v.to_bits()),
                ref other => panic!("unexpected instr {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_bytes_are_rejected() {
        let image = exhaustive_image();
        let mut bytes = image.to_bytes();
        assert!(MachineImage::from_bytes(&bytes[..10]).is_err());
        assert!(MachineImage::from_bytes(b"not an image").is_err());
        bytes[8] = 0xff; // mangle the code-count varint chain
        assert!(MachineImage::from_bytes(&bytes).is_err());
    }
}
