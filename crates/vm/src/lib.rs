#![warn(missing_docs)]
//! The abstract target machine.
//!
//! The paper measures run-time speedups on a 180 MHz HP PA-8000
//! workstation. This reproduction substitutes a deterministic abstract
//! machine with a cycle cost model chosen so the *mechanisms* behind
//! those speedups exist here too:
//!
//! * calls carry real overhead (frame setup plus per-argument cost), so
//!   inlining hot call sites pays off;
//! * taken branches cost more than fall-throughs, so profile-guided
//!   block layout pays off;
//! * instruction fetch goes through a simulated direct-mapped i-cache
//!   over the final linked image, so procedure clustering (the
//!   profile-guided linker layout of Pettis–Hansen) pays off;
//! * register pressure is real: spill slots cost loads and stores, so
//!   over-aggressive inlining can hurt, reproducing the tension behind
//!   the paper's inlining heuristics.
//!
//! Executing an instrumented image additionally collects probe counts,
//! which [`profile_from_run`] turns into a [`cmo_profile::ProfileDb`].

mod codec;
mod cost;
mod disasm;
mod exec;
mod image;
mod minstr;

pub use codec::IMAGE_MAGIC;
pub use cost::{CostModel, ICacheConfig};
pub use disasm::{disassemble, disassemble_routine};
pub use exec::{run, ExecError, ExecResult, RunConfig};
pub use image::{profile_from_run, MRoutineInfo, MachineImage};
pub use minstr::{MInstr, Reg, NUM_REGS};
