//! Disassembler for linked images — the diagnostic surface §6.2 calls
//! essential ("good compiler diagnostics on what the compiler is
//! optimizing").

use crate::image::MachineImage;
use crate::minstr::MInstr;
use std::fmt::Write as _;

fn one(instr: &MInstr, image: &MachineImage) -> String {
    match instr {
        MInstr::LdImm { dst, value } => format!("ldi   {dst}, {value}"),
        MInstr::LdImmF { dst, value } => format!("ldf   {dst}, {value:?}"),
        MInstr::Bin { op, dst, lhs, rhs } => format!("{:<5} {dst}, {lhs}, {rhs}", op.mnemonic()),
        MInstr::Un { op, dst, src } => format!("{:<5} {dst}, {src}", op.mnemonic()),
        MInstr::Mov { dst, src } => format!("mov   {dst}, {src}"),
        MInstr::LdSlot { dst, slot } => format!("lds   {dst}, [fp+{slot}]"),
        MInstr::StSlot { slot, src } => format!("sts   [fp+{slot}], {src}"),
        MInstr::LdGlobal { dst, addr } => format!("ldg   {dst}, [g{addr}]"),
        MInstr::StGlobal { addr, src } => format!("stg   [g{addr}], {src}"),
        MInstr::LdGlobalElem {
            dst,
            base,
            len,
            index,
        } => format!("ldge  {dst}, [g{base}+{index}%{len}]"),
        MInstr::StGlobalElem {
            base,
            len,
            index,
            src,
        } => format!("stge  [g{base}+{index}%{len}], {src}"),
        MInstr::LdSlotElem {
            dst,
            base_slot,
            len,
            index,
        } => format!("ldse  {dst}, [fp+{base_slot}+{index}%{len}]"),
        MInstr::StSlotElem {
            base_slot,
            len,
            index,
            src,
        } => format!("stse  [fp+{base_slot}+{index}%{len}], {src}"),
        MInstr::Call { routine, args, dst } => {
            let name = image
                .routines
                .get(*routine as usize)
                .map_or("?", |r| r.name.as_str());
            let args = args
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            match dst {
                Some(d) => format!("call  {d} = {name}({args})"),
                None => format!("call  {name}({args})"),
            }
        }
        MInstr::Ret { value: Some(r) } => format!("ret   {r}"),
        MInstr::Ret { value: None } => "ret".to_owned(),
        MInstr::Jmp { target } => format!("jmp   {target:#x}"),
        MInstr::Br { cond, target } => format!("br    {cond}, {target:#x}"),
        MInstr::Probe { id } => format!("probe #{id}"),
        MInstr::Input { dst } => format!("in    {dst}"),
        MInstr::Output { src } => format!("out   {src}"),
        MInstr::Halt => "halt".to_owned(),
    }
}

/// Renders the whole image as assembly-like text, one routine per
/// section in layout order.
#[must_use]
pub fn disassemble(image: &MachineImage) -> String {
    let mut by_entry: Vec<usize> = (0..image.routines.len()).collect();
    by_entry.sort_by_key(|&i| image.routines[i].entry);
    let mut out = String::new();
    for i in by_entry {
        let r = &image.routines[i];
        let _ = writeln!(
            out,
            "{}:  ; routine #{i}, {} instrs, {} frame slots",
            r.name, r.code_len, r.frame_slots
        );
        for addr in r.entry..r.entry + r.code_len {
            if let Some(instr) = image.code.get(addr as usize) {
                let _ = writeln!(out, "  {addr:#06x}  {}", one(instr, image));
            }
        }
    }
    out
}

/// Renders a single routine by name, if present.
#[must_use]
pub fn disassemble_routine(image: &MachineImage, name: &str) -> Option<String> {
    let idx = image.find_routine(name)? as usize;
    let r = &image.routines[idx];
    let mut out = String::new();
    let _ = writeln!(out, "{}:", r.name);
    for addr in r.entry..r.entry + r.code_len {
        let _ = writeln!(
            out,
            "  {addr:#06x}  {}",
            one(&image.code[addr as usize], image)
        );
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::MRoutineInfo;
    use crate::minstr::Reg;
    use cmo_ir::BinOp;

    fn tiny_image() -> MachineImage {
        MachineImage {
            code: vec![
                MInstr::LdImm {
                    dst: Reg(0),
                    value: 3,
                },
                MInstr::Call {
                    routine: 1,
                    args: vec![Reg(0)],
                    dst: Some(Reg(1)),
                },
                MInstr::Ret {
                    value: Some(Reg(1)),
                },
                MInstr::Bin {
                    op: BinOp::Add,
                    dst: Reg(0),
                    lhs: Reg(0),
                    rhs: Reg(0),
                },
                MInstr::Ret {
                    value: Some(Reg(0)),
                },
            ],
            routines: vec![
                MRoutineInfo {
                    name: "main".to_owned(),
                    entry: 0,
                    frame_slots: 0,
                    code_len: 3,
                },
                MRoutineInfo {
                    name: "dbl".to_owned(),
                    entry: 3,
                    frame_slots: 0,
                    code_len: 2,
                },
            ],
            ..MachineImage::default()
        }
    }

    #[test]
    fn full_listing_names_routines_and_calls() {
        let text = disassemble(&tiny_image());
        assert!(text.contains("main:"));
        assert!(text.contains("dbl:"));
        assert!(text.contains("call  r1 = dbl(r0)"));
        assert!(text.contains("add   r0, r0, r0"));
    }

    #[test]
    fn single_routine_listing() {
        let image = tiny_image();
        let text = disassemble_routine(&image, "dbl").unwrap();
        assert!(text.starts_with("dbl:"));
        assert!(!text.contains("main"));
        assert!(disassemble_routine(&image, "ghost").is_none());
    }
}
