#![warn(missing_docs)]
//! The linker's back half: assembling lowered routines into an
//! executable image.
//!
//! The paper's linker participates in optimization twice: it routes IL
//! objects through HLO/LLO (handled by [`cmo_ir::link_objects`] plus
//! the driver), and it "uses profile data to cluster frequently-used
//! routines together in the final program image" (§2, citing
//! Pettis–Hansen \[13\] and Speer et al. \[15\]). This crate implements
//! that second half:
//!
//! * [`cluster_routines`]: profile-guided procedure ordering by greedy
//!   chain merging over the weighted call-arc graph, hot chains first —
//!   hot code packs densely in the simulated i-cache;
//! * [`assemble`]: concatenation in cluster order, relocation of
//!   branch targets and probe ids, dead-routine stubbing, and initial
//!   global memory from the module symbol tables.

use cmo_ir::{GlobalId, GlobalInit, ModuleSymbols, Program, RoutineId};
use cmo_llo::{GlobalLayout, LoweredRoutine};
use cmo_profile::{ProbeKey, ProbeKind};
use cmo_telemetry::Telemetry;
use cmo_vm::{MInstr, MRoutineInfo, MachineImage};
use std::collections::HashMap;

/// A weighted caller→callee arc used for clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallArc {
    /// The calling routine.
    pub caller: RoutineId,
    /// The called routine.
    pub callee: RoutineId,
    /// Combined profile weight of all sites on this arc.
    pub weight: u64,
}

/// Linker options.
#[derive(Debug, Clone, Default)]
pub struct LinkOptions {
    /// Profile arcs for procedure clustering; `None` keeps routine-id
    /// order (the non-PBO layout).
    pub arcs: Option<Vec<CallArc>>,
    /// Routines proven unreachable by HLO: their code is replaced by a
    /// one-instruction stub, saving image space (dead routine
    /// elimination's link-time half).
    pub dead: Vec<RoutineId>,
    /// Telemetry sink: [`assemble`] charges one work unit per machine
    /// instruction placed, so the final-link phase has a deterministic
    /// span on the work clock. Disabled (no-op) by default.
    pub telemetry: Telemetry,
}

/// Computes a routine emission order by greedy chain merging
/// (Pettis–Hansen "closest is best" procedure ordering): repeatedly
/// merge the two chains joined by the heaviest remaining arc, then lay
/// out chains by descending total weight, cold routines last.
#[must_use]
pub fn cluster_routines(n_routines: usize, arcs: &[CallArc]) -> Vec<RoutineId> {
    // chain_of[r] = chain index; chains merge by concatenation.
    let mut chain_of: Vec<usize> = (0..n_routines).collect();
    let mut chains: Vec<Vec<RoutineId>> = (0..n_routines)
        .map(|i| vec![RoutineId::from_index(i)])
        .collect();
    // Deterministic arc order: weight desc, then ids.
    let mut sorted: Vec<&CallArc> = arcs.iter().filter(|a| a.caller != a.callee).collect();
    sorted.sort_by(|a, b| {
        b.weight
            .cmp(&a.weight)
            .then(a.caller.cmp(&b.caller))
            .then(a.callee.cmp(&b.callee))
    });
    for arc in sorted {
        if arc.weight == 0 {
            break;
        }
        let (ca, cb) = (chain_of[arc.caller.index()], chain_of[arc.callee.index()]);
        if ca == cb {
            continue;
        }
        let moved = std::mem::take(&mut chains[cb]);
        for r in &moved {
            chain_of[r.index()] = ca;
        }
        chains[ca].extend(moved);
    }
    // Chain weight: total arc weight touching any member.
    let mut weight = vec![0u64; chains.len()];
    for arc in arcs {
        weight[chain_of[arc.caller.index()]] += arc.weight;
        weight[chain_of[arc.callee.index()]] += arc.weight;
    }
    let mut chain_ids: Vec<usize> = (0..chains.len())
        .filter(|&c| !chains[c].is_empty())
        .collect();
    chain_ids.sort_by(|&a, &b| weight[b].cmp(&weight[a]).then(a.cmp(&b)));
    let mut order = Vec::with_capacity(n_routines);
    for c in chain_ids {
        order.extend(chains[c].iter().copied());
    }
    order
}

/// Builds the initial global memory image from module symbol tables.
///
/// # Panics
///
/// Panics if the layout does not match the program (construction bug).
#[must_use]
pub fn initial_globals(
    program: &Program,
    symtabs: &[ModuleSymbols],
    layout: &GlobalLayout,
) -> Vec<u64> {
    let mut mem = vec![0u64; layout.total_cells() as usize];
    for (g, meta) in program.globals().iter().enumerate() {
        let base = layout.addr(GlobalId::from_index(g)) as usize;
        let var = &symtabs[meta.module.index()].globals[meta.slot as usize];
        match &var.init {
            GlobalInit::Zero => {}
            GlobalInit::Scalar(cmo_ir::Const::I(v)) => mem[base] = *v as u64,
            GlobalInit::Scalar(cmo_ir::Const::F(v)) => mem[base] = v.to_bits(),
            GlobalInit::IntArray(vs) => {
                for (i, v) in vs.iter().enumerate() {
                    mem[base + i] = *v as u64;
                }
            }
            GlobalInit::FloatArray(vs) => {
                for (i, v) in vs.iter().enumerate() {
                    mem[base + i] = v.to_bits();
                }
            }
        }
    }
    mem
}

/// Assembles lowered routines (indexed by [`RoutineId`]) into an
/// executable image.
///
/// # Panics
///
/// Panics if `lowered` does not cover every program routine or the
/// program has no `main`.
#[must_use]
pub fn assemble(
    program: &Program,
    lowered: Vec<LoweredRoutine>,
    symtabs: &[ModuleSymbols],
    layout: &GlobalLayout,
    options: &LinkOptions,
) -> MachineImage {
    assert_eq!(
        lowered.len(),
        program.routines().len(),
        "every routine must be lowered"
    );
    let n = lowered.len();
    let dead: Vec<bool> = {
        let mut v = vec![false; n];
        for r in &options.dead {
            v[r.index()] = true;
        }
        v
    };
    let order = match &options.arcs {
        Some(arcs) => cluster_routines(n, arcs),
        None => (0..n).map(RoutineId::from_index).collect(),
    };

    let mut image = MachineImage {
        globals: initial_globals(program, symtabs, layout),
        ..MachineImage::default()
    };
    let mut routine_infos: HashMap<usize, MRoutineInfo> = HashMap::new();
    for &rid in &order {
        let lr = &lowered[rid.index()];
        let base = image.code.len() as u32;
        let probe_base = image.probes.len() as u32;
        let code: Vec<MInstr> = if dead[rid.index()] {
            vec![MInstr::Ret { value: None }]
        } else {
            lr.code.clone()
        };
        let code_len = code.len() as u32;
        options.telemetry.work(u64::from(code_len));
        for mut mi in code {
            match &mut mi {
                MInstr::Jmp { target } | MInstr::Br { target, .. } => *target += base,
                MInstr::Probe { id } => *id += probe_base,
                _ => {}
            }
            image.code.push(mi);
        }
        if !dead[rid.index()] {
            for kind in &lr.probes {
                image.probes.push(match kind {
                    ProbeKind::Block(b) => ProbeKey::block(&lr.name, *b),
                    ProbeKind::Site(s) => ProbeKey::site(&lr.name, *s),
                });
            }
            image.shapes.push((lr.name.clone(), lr.shape));
        }
        routine_infos.insert(
            rid.index(),
            MRoutineInfo {
                name: lr.name.clone(),
                entry: base,
                frame_slots: lr.frame_slots,
                code_len,
            },
        );
    }
    image.routines = (0..n)
        .map(|i| routine_infos.remove(&i).expect("every routine placed"))
        .collect();
    image.entry_routine = program.main_routine().expect("program must define main").0;
    image
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmo_frontend::compile_module;
    use cmo_ir::link_objects;
    use cmo_llo::{lower_routine, LloOptions};
    use cmo_vm::{run, RunConfig};

    fn build(srcs: &[(&str, &str)], options: &LinkOptions, llo: &LloOptions) -> MachineImage {
        let objs = srcs
            .iter()
            .map(|(n, s)| compile_module(n, s).unwrap())
            .collect();
        let unit = link_objects(objs).unwrap();
        let layout = GlobalLayout::new(&unit.program);
        let lowered: Vec<LoweredRoutine> = unit
            .bodies
            .iter()
            .enumerate()
            .map(|(i, b)| lower_routine(RoutineId::from_index(i), b, &unit.program, &layout, llo))
            .collect();
        assemble(&unit.program, lowered, &unit.symtabs, &layout, options)
    }

    const TWO_MODULES: &[(&str, &str)] = &[
        (
            "a",
            r#"
            extern fn mix(x: int) -> int;
            global seed: int = 3;
            fn main() -> int {
                var i: int = 0;
                var acc: int = seed;
                while (i < 50) { acc = mix(acc); i = i + 1; }
                output(acc);
                return acc;
            }
            "#,
        ),
        (
            "b",
            "fn mix(x: int) -> int { return (x * 1103515245 + 12345) % 65536; }",
        ),
    ];

    #[test]
    fn assembled_image_runs() {
        let image = build(TWO_MODULES, &LinkOptions::default(), &LloOptions::default());
        let r = run(&image, &[], &RunConfig::default()).unwrap();
        assert_eq!(r.calls, 50);
        assert!(image.code_size() > 10);
    }

    #[test]
    fn clustering_preserves_semantics() {
        let plain = build(TWO_MODULES, &LinkOptions::default(), &LloOptions::default());
        let main = RoutineId::from_index(0);
        let arcs = vec![CallArc {
            caller: main,
            callee: RoutineId::from_index(1),
            weight: 50,
        }];
        let clustered = build(
            TWO_MODULES,
            &LinkOptions {
                arcs: Some(arcs),
                ..LinkOptions::default()
            },
            &LloOptions::default(),
        );
        let cfg = RunConfig::default();
        let rp = run(&plain, &[], &cfg).unwrap();
        let rc = run(&clustered, &[], &cfg).unwrap();
        assert_eq!(rp.checksum, rc.checksum);
        assert_eq!(rp.returned, rc.returned);
    }

    #[test]
    fn cluster_order_puts_hot_pair_adjacent() {
        // 4 routines; arc 2->3 heavy, 0->1 light.
        let arcs = vec![
            CallArc {
                caller: RoutineId(0),
                callee: RoutineId(1),
                weight: 5,
            },
            CallArc {
                caller: RoutineId(2),
                callee: RoutineId(3),
                weight: 500,
            },
        ];
        let order = cluster_routines(4, &arcs);
        let pos = |r: u32| order.iter().position(|&x| x == RoutineId(r)).unwrap();
        assert_eq!(pos(3), pos(2) + 1, "hot pair contiguous");
        assert!(pos(2) < pos(0), "hot chain first");
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn cluster_handles_zero_and_self_arcs() {
        let arcs = vec![
            CallArc {
                caller: RoutineId(0),
                callee: RoutineId(0),
                weight: 100,
            },
            CallArc {
                caller: RoutineId(1),
                callee: RoutineId(2),
                weight: 0,
            },
        ];
        let order = cluster_routines(3, &arcs);
        assert_eq!(order.len(), 3);
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(sorted, vec![RoutineId(0), RoutineId(1), RoutineId(2)]);
    }

    #[test]
    fn dead_routines_become_stubs() {
        let srcs = &[(
            "m",
            r#"
            fn unused_helper(x: int) -> int {
                var acc: int = 0;
                var i: int = 0;
                while (i < x) { acc = acc + i; i = i + 1; }
                return acc;
            }
            fn main() -> int { return 7; }
            "#,
        )];
        let full = build(srcs, &LinkOptions::default(), &LloOptions::default());
        let objs = srcs
            .iter()
            .map(|(n, s)| compile_module(n, s).unwrap())
            .collect();
        let unit = link_objects(objs).unwrap();
        let helper = unit.program.find_routine("unused_helper").unwrap();
        let stubbed = build(
            srcs,
            &LinkOptions {
                dead: vec![helper],
                ..LinkOptions::default()
            },
            &LloOptions::default(),
        );
        assert!(stubbed.code_size() < full.code_size());
        let r = run(&stubbed, &[], &RunConfig::default()).unwrap();
        assert_eq!(r.returned, 7);
    }

    #[test]
    fn initial_memory_reflects_initializers() {
        let srcs = &[(
            "m",
            r#"
            global a: int = 11;
            global arr: int[4] = [1, 2, 3];
            global f: float = 2.5;
            fn main() -> int { return a + arr[2]; }
            "#,
        )];
        let image = build(srcs, &LinkOptions::default(), &LloOptions::default());
        assert_eq!(image.globals[0], 11);
        assert_eq!(image.globals[1..5], [1, 2, 3, 0]);
        assert_eq!(f64::from_bits(image.globals[5]), 2.5);
        let r = run(&image, &[], &RunConfig::default()).unwrap();
        assert_eq!(r.returned, 14);
    }
}
