//! Builders for IL objects and routine bodies.
//!
//! Frontends (and tests) construct IL through these builders, which
//! maintain the structural invariants the [`crate::validate`] pass
//! checks: every block has exactly one terminator, parameter locals
//! come first, and call-site ids are unique.

use crate::ids::{Block, Local, Sym, VReg};
use crate::instr::{BinOp, CalleeRef, GlobalRef, Instr, MemBase, Terminator, UnOp};
use crate::module::{GlobalInit, GlobalVar, Linkage};
use crate::object::{IlObject, RoutineDef};
use crate::routine::{BlockData, RoutineBody};
use crate::types::{Const, Signature, VarTy};

/// Builds an [`IlObject`] for one source module.
///
/// # Example
///
/// ```
/// use cmo_ir::{IlObjectBuilder, Signature, Ty, Linkage, GlobalInit, VarTy};
///
/// let mut b = IlObjectBuilder::new("counter");
/// b.global("hits", VarTy::scalar(Ty::I64), Linkage::Export, GlobalInit::Zero);
/// let mut f = b.routine("bump", Signature::new(vec![], None));
/// let v = f.load_global("hits");
/// let one = f.const_i64(1);
/// let sum = f.bin(cmo_ir::BinOp::Add, v, one);
/// f.store_global("hits", sum);
/// f.ret(None);
/// f.finish();
/// let obj = b.finish();
/// assert_eq!(obj.routines.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct IlObjectBuilder {
    obj: IlObject,
}

impl IlObjectBuilder {
    /// Starts an object for the module `name`.
    #[must_use]
    pub fn new(name: &str) -> Self {
        IlObjectBuilder {
            obj: IlObject {
                module_name: name.to_owned(),
                language: "mlc",
                ..IlObject::default()
            },
        }
    }

    /// Sets the source language tag.
    pub fn language(&mut self, lang: &'static str) -> &mut Self {
        self.obj.language = lang;
        self
    }

    /// Sets the module's total source line count.
    pub fn source_lines(&mut self, lines: u32) -> &mut Self {
        self.obj.source_lines = lines;
        self
    }

    /// Interns `name` in the object's private string table.
    pub fn intern(&mut self, name: &str) -> Sym {
        self.obj.strings.intern(name)
    }

    /// Defines a global variable.
    pub fn global(
        &mut self,
        name: &str,
        ty: VarTy,
        linkage: Linkage,
        init: GlobalInit,
    ) -> &mut Self {
        let name = self.intern(name);
        self.obj.symbols.globals.push(GlobalVar {
            name,
            ty,
            linkage,
            init,
        });
        self
    }

    /// Starts a routine definition. Parameter locals are pre-allocated
    /// from the signature; the entry block is current.
    pub fn routine(&mut self, name: &str, sig: Signature) -> RoutineBuilder<'_> {
        RoutineBuilder::new(self, name, sig, Linkage::Export)
    }

    /// Starts a module-internal routine definition.
    pub fn internal_routine(&mut self, name: &str, sig: Signature) -> RoutineBuilder<'_> {
        RoutineBuilder::new(self, name, sig, Linkage::Internal)
    }

    /// Finishes the object.
    ///
    /// If no explicit source-line count was set, estimates one from IL
    /// volume (roughly 3 IL instructions per source line, the ratio our
    /// MLC frontend produces).
    #[must_use]
    pub fn finish(mut self) -> IlObject {
        if self.obj.source_lines == 0 {
            let il: usize = self.obj.il_size();
            let decls = self.obj.symbols.globals.len();
            self.obj.source_lines = u32::try_from(il / 3 + decls + 2).unwrap_or(u32::MAX);
        }
        self.obj
    }
}

/// Builds one routine body inside an [`IlObjectBuilder`].
///
/// Instructions are appended to the *current block*; `jump`, `branch`,
/// and `ret` terminate it. Finish the routine with
/// [`RoutineBuilder::finish`].
#[derive(Debug)]
pub struct RoutineBuilder<'a> {
    owner: &'a mut IlObjectBuilder,
    name: String,
    sig: Signature,
    linkage: Linkage,
    source_lines: u32,
    body: RoutineBody,
    cur: Block,
    terminated: bool,
}

impl<'a> RoutineBuilder<'a> {
    fn new(owner: &'a mut IlObjectBuilder, name: &str, sig: Signature, linkage: Linkage) -> Self {
        let mut body = RoutineBody::new();
        for &p in &sig.params {
            body.new_local(VarTy::scalar(p), true);
        }
        body.blocks.push(BlockData::new(Terminator::Return(None)));
        RoutineBuilder {
            owner,
            name: name.to_owned(),
            sig,
            linkage,
            source_lines: 0,
            body,
            cur: Block(0),
            terminated: false,
        }
    }

    /// Sets the routine's source line count.
    pub fn source_lines(&mut self, lines: u32) -> &mut Self {
        self.source_lines = lines;
        self
    }

    /// The local slot of parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for the signature.
    #[must_use]
    pub fn param(&self, i: usize) -> Local {
        assert!(i < self.sig.arity(), "parameter index {i} out of range");
        Local::from_index(i)
    }

    /// Declares a non-parameter local variable.
    pub fn local(&mut self, ty: VarTy) -> Local {
        self.body.new_local(ty, false)
    }

    /// Creates a new, empty basic block (does not switch to it).
    pub fn new_block(&mut self) -> Block {
        let b = Block::from_index(self.body.blocks.len());
        self.body
            .blocks
            .push(BlockData::new(Terminator::Return(None)));
        b
    }

    /// Makes `b` the current block for subsequent instructions.
    ///
    /// # Panics
    ///
    /// Panics if `b` does not exist.
    pub fn switch_to(&mut self, b: Block) {
        assert!(b.index() < self.body.blocks.len(), "no such block {b}");
        self.cur = b;
        self.terminated = false;
    }

    /// The current block.
    #[must_use]
    pub fn current(&self) -> Block {
        self.cur
    }

    /// Returns `true` if the current block already has its terminator.
    #[must_use]
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    fn push(&mut self, i: Instr) {
        assert!(
            !self.terminated,
            "emitting into terminated block {}; switch_to a new block first",
            self.cur
        );
        self.body.blocks[self.cur.index()].instrs.push(i);
    }

    /// Emits `dst = value` and returns `dst`.
    pub fn const_val(&mut self, value: Const) -> VReg {
        let dst = self.body.new_vreg();
        self.push(Instr::Const { dst, value });
        dst
    }

    /// Emits an integer constant.
    pub fn const_i64(&mut self, v: i64) -> VReg {
        self.const_val(Const::I(v))
    }

    /// Emits a float constant.
    pub fn const_f64(&mut self, v: f64) -> VReg {
        self.const_val(Const::F(v))
    }

    /// Emits a binary operation.
    pub fn bin(&mut self, op: BinOp, lhs: VReg, rhs: VReg) -> VReg {
        let dst = self.body.new_vreg();
        self.push(Instr::Bin { dst, op, lhs, rhs });
        dst
    }

    /// Emits a unary operation.
    pub fn un(&mut self, op: UnOp, src: VReg) -> VReg {
        let dst = self.body.new_vreg();
        self.push(Instr::Un { dst, op, src });
        dst
    }

    /// Emits a register copy.
    pub fn mov(&mut self, src: VReg) -> VReg {
        let dst = self.body.new_vreg();
        self.push(Instr::Mov { dst, src });
        dst
    }

    /// Emits a load from a local scalar.
    pub fn load_local(&mut self, local: Local) -> VReg {
        let dst = self.body.new_vreg();
        self.push(Instr::LoadLocal { dst, local });
        dst
    }

    /// Emits a store to a local scalar.
    pub fn store_local(&mut self, local: Local, src: VReg) {
        self.push(Instr::StoreLocal { local, src });
    }

    /// Emits a load from the named global.
    pub fn load_global(&mut self, name: &str) -> VReg {
        let sym = self.owner.intern(name);
        let dst = self.body.new_vreg();
        self.push(Instr::LoadGlobal {
            dst,
            global: GlobalRef::Name(sym),
        });
        dst
    }

    /// Emits a store to the named global.
    pub fn store_global(&mut self, name: &str, src: VReg) {
        let sym = self.owner.intern(name);
        self.push(Instr::StoreGlobal {
            global: GlobalRef::Name(sym),
            src,
        });
    }

    /// Emits an indexed load from a local array.
    pub fn load_elem_local(&mut self, base: Local, index: VReg) -> VReg {
        let dst = self.body.new_vreg();
        self.push(Instr::LoadElem {
            dst,
            base: MemBase::Local(base),
            index,
        });
        dst
    }

    /// Emits an indexed store to a local array.
    pub fn store_elem_local(&mut self, base: Local, index: VReg, src: VReg) {
        self.push(Instr::StoreElem {
            base: MemBase::Local(base),
            index,
            src,
        });
    }

    /// Emits an indexed load from a named global array.
    pub fn load_elem_global(&mut self, name: &str, index: VReg) -> VReg {
        let sym = self.owner.intern(name);
        let dst = self.body.new_vreg();
        self.push(Instr::LoadElem {
            dst,
            base: MemBase::Global(GlobalRef::Name(sym)),
            index,
        });
        dst
    }

    /// Emits an indexed store to a named global array.
    pub fn store_elem_global(&mut self, name: &str, index: VReg, src: VReg) {
        let sym = self.owner.intern(name);
        self.push(Instr::StoreElem {
            base: MemBase::Global(GlobalRef::Name(sym)),
            index,
            src,
        });
    }

    /// Emits a call whose result is used.
    pub fn call(&mut self, callee: &str, args: Vec<VReg>) -> VReg {
        let sym = self.owner.intern(callee);
        let dst = self.body.new_vreg();
        let site = self.body.new_site();
        self.push(Instr::Call {
            dst: Some(dst),
            callee: CalleeRef::Name(sym),
            args,
            site,
        });
        dst
    }

    /// Emits a call whose result (if any) is discarded.
    pub fn call_void(&mut self, callee: &str, args: Vec<VReg>) {
        let sym = self.owner.intern(callee);
        let site = self.body.new_site();
        self.push(Instr::Call {
            dst: None,
            callee: CalleeRef::Name(sym),
            args,
            site,
        });
    }

    /// Emits a workload-input read.
    pub fn input(&mut self) -> VReg {
        let dst = self.body.new_vreg();
        self.push(Instr::Input { dst });
        dst
    }

    /// Emits an output-checksum contribution.
    pub fn output(&mut self, src: VReg) {
        self.push(Instr::Output { src });
    }

    fn terminate(&mut self, t: Terminator) {
        assert!(!self.terminated, "block {} already terminated", self.cur);
        self.body.blocks[self.cur.index()].term = t;
        self.terminated = true;
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, to: Block) {
        self.terminate(Terminator::Jump(to));
    }

    /// Terminates the current block with a conditional branch.
    pub fn branch(&mut self, cond: VReg, then_bb: Block, else_bb: Block) {
        self.terminate(Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<VReg>) {
        self.terminate(Terminator::Return(value));
    }

    /// Completes the routine and adds it to the owning object builder.
    pub fn finish(self) {
        let name = self.owner.intern(&self.name);
        let source_lines = if self.source_lines > 0 {
            self.source_lines
        } else {
            u32::try_from(self.body.instr_count() / 3 + 2).unwrap_or(u32::MAX)
        };
        self.owner.obj.routines.push(RoutineDef {
            name,
            sig: self.sig,
            linkage: self.linkage,
            source_lines,
            body: self.body,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Ty;

    #[test]
    fn builder_produces_structured_body() {
        let mut b = IlObjectBuilder::new("m");
        let mut f = b.routine("abs", Signature::new(vec![Ty::I64], Some(Ty::I64)));
        let p = f.param(0);
        let x = f.load_local(p);
        let zero = f.const_i64(0);
        let neg = f.bin(BinOp::Lt, x, zero);
        let then_b = f.new_block();
        let else_b = f.new_block();
        f.branch(neg, then_b, else_b);
        f.switch_to(then_b);
        let negated = f.un(UnOp::Neg, x);
        f.ret(Some(negated));
        f.switch_to(else_b);
        f.ret(Some(x));
        f.finish();
        let obj = b.finish();
        assert_eq!(obj.routines.len(), 1);
        let body = &obj.routines[0].body;
        assert_eq!(body.blocks.len(), 3);
        assert_eq!(body.n_vregs, 4);
        assert!(obj.source_lines > 0);
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminate_panics() {
        let mut b = IlObjectBuilder::new("m");
        let mut f = b.routine("f", Signature::default());
        f.ret(None);
        f.ret(None);
    }

    #[test]
    #[should_panic(expected = "terminated block")]
    fn emit_after_terminator_panics() {
        let mut b = IlObjectBuilder::new("m");
        let mut f = b.routine("f", Signature::default());
        f.ret(None);
        let _ = f.const_i64(1);
    }

    #[test]
    fn call_sites_are_unique() {
        let mut b = IlObjectBuilder::new("m");
        let mut f = b.routine("f", Signature::default());
        f.call_void("g", vec![]);
        f.call_void("h", vec![]);
        f.ret(None);
        f.finish();
        let obj = b.finish();
        let sites = obj.routines[0].body.call_sites();
        assert_eq!(sites.len(), 2);
        assert_ne!(sites[0].2, sites[1].2);
    }
}
