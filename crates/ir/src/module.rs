//! Modules, global variables, and module symbol tables.

use crate::ids::{RoutineId, Sym};
use crate::types::{Const, VarTy};

/// Symbol visibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Linkage {
    /// Visible to the whole program.
    Export,
    /// Module-static: visible only inside the defining module. Distinct
    /// modules may define internal symbols with the same name.
    Internal,
}

/// The initializer of a global variable.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// Zero-initialized.
    Zero,
    /// A scalar constant.
    Scalar(Const),
    /// Explicit array elements (integer arrays); shorter initializers
    /// zero-fill the tail.
    IntArray(Vec<i64>),
    /// Explicit array elements (float arrays).
    FloatArray(Vec<f64>),
}

impl GlobalInit {
    /// Approximate heap bytes of this initializer.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        match self {
            GlobalInit::Zero | GlobalInit::Scalar(_) => 0,
            GlobalInit::IntArray(v) => v.capacity() * 8,
            GlobalInit::FloatArray(v) => v.capacity() * 8,
        }
    }
}

/// A global variable definition inside a module symbol table.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalVar {
    /// Variable name (symbol in the owning table's interner).
    pub name: Sym,
    /// Variable type.
    pub ty: VarTy,
    /// Visibility.
    pub linkage: Linkage,
    /// Initial value.
    pub init: GlobalInit,
}

/// The transitory symbol table of one module (Figure 3): global
/// variable definitions with their initializers. Like routine IR, it
/// has a relocatable form and can be offloaded once the symbol-table
/// compaction threshold engages.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModuleSymbols {
    /// Global variables defined by this module, in definition order.
    /// Positions correspond to the `slot` recorded in the program's
    /// [`crate::GlobalMeta`] entries.
    pub globals: Vec<GlobalVar>,
}

impl ModuleSymbols {
    /// An empty symbol table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Approximate expanded heap bytes.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.globals.capacity() * std::mem::size_of::<GlobalVar>()
            + self
                .globals
                .iter()
                .map(|g| g.init.heap_bytes())
                .sum::<usize>()
    }
}

/// Always-resident per-module metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleInfo {
    /// Module name (program interner).
    pub name: Sym,
    /// Routines defined by this module, in definition order.
    pub routines: Vec<RoutineId>,
    /// Source lines in the module (sum over its routines plus
    /// declarations).
    pub source_lines: u32,
    /// Source language tag as reported by the frontend ("mlc", "c",
    /// "f77", ...). HLO never inspects this — mixed-language programs
    /// optimize uniformly (§3) — but diagnostics print it.
    pub language: &'static str,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Ty;

    #[test]
    fn init_bytes_scale_with_payload() {
        assert_eq!(GlobalInit::Zero.heap_bytes(), 0);
        let arr = GlobalInit::IntArray(vec![0; 100]);
        assert!(arr.heap_bytes() >= 800);
    }

    #[test]
    fn symbol_table_bytes_include_initializers() {
        let mut st = ModuleSymbols::new();
        st.globals.push(GlobalVar {
            name: Sym(0),
            ty: VarTy::array(Ty::I64, 64),
            linkage: Linkage::Export,
            init: GlobalInit::IntArray(vec![1; 64]),
        });
        assert!(st.heap_bytes() > 64 * 8);
    }
}
