//! Relocatable (compacted) encodings for transitory objects (§4.2).
//!
//! The compacted form follows the paper's recipe:
//!
//! * objects are laid out in *stack form* — a block immediately followed
//!   by its instructions, each instruction followed by its operands — so
//!   ownership links cost no stored pointers;
//! * all integers are varints; inter-object references (symbols, global
//!   ids, routine ids) are persistent identifiers;
//! * derived fields are simply never written: the expanded form's
//!   analysis annotations are recomputed on demand after re-expansion.
//!
//! The same encoding doubles as the IL payload of object files, which is
//! why loading an offloaded pool needs no translation step (the
//! difference from the Convex Application Compiler called out in §7).

use crate::ids::{Block, CallSiteId, GlobalId, Local, RoutineId, Sym, VReg};
use crate::instr::{BinOp, CalleeRef, GlobalRef, Instr, MemBase, Terminator, UnOp};
use crate::module::{GlobalInit, GlobalVar, Linkage, ModuleSymbols};
use crate::routine::{BlockData, LocalDecl, RoutineBody};
use crate::types::{Const, Signature, Ty, VarTy};
use cmo_naim::{DecodeError, Decoder, Encoder, Relocatable};

const CORRUPT: fn(&'static str) -> DecodeError = |what| DecodeError::Corrupt { what };

pub(crate) fn encode_ty(ty: Ty, enc: &mut Encoder) {
    enc.write_u8(match ty {
        Ty::I64 => 0,
        Ty::F64 => 1,
    });
}

pub(crate) fn decode_ty(dec: &mut Decoder<'_>) -> Result<Ty, DecodeError> {
    match dec.read_u8()? {
        0 => Ok(Ty::I64),
        1 => Ok(Ty::F64),
        tag => Err(DecodeError::BadTag {
            tag,
            offset: dec.position(),
        }),
    }
}

pub(crate) fn encode_var_ty(ty: VarTy, enc: &mut Encoder) {
    encode_ty(ty.scalar, enc);
    match ty.elems {
        None => enc.write_u64(0),
        Some(n) => enc.write_u64(u64::from(n) + 1),
    }
}

pub(crate) fn decode_var_ty(dec: &mut Decoder<'_>) -> Result<VarTy, DecodeError> {
    let scalar = decode_ty(dec)?;
    let n = dec.read_u64()?;
    Ok(VarTy {
        scalar,
        elems: if n == 0 {
            None
        } else {
            Some(u32::try_from(n - 1).map_err(|_| CORRUPT("array length out of range"))?)
        },
    })
}

pub(crate) fn encode_const(c: Const, enc: &mut Encoder) {
    match c {
        Const::I(v) => {
            enc.write_u8(0);
            enc.write_i64(v);
        }
        Const::F(v) => {
            enc.write_u8(1);
            enc.write_f64(v);
        }
    }
}

pub(crate) fn decode_const(dec: &mut Decoder<'_>) -> Result<Const, DecodeError> {
    match dec.read_u8()? {
        0 => Ok(Const::I(dec.read_i64()?)),
        1 => Ok(Const::F(dec.read_f64()?)),
        tag => Err(DecodeError::BadTag {
            tag,
            offset: dec.position(),
        }),
    }
}

pub(crate) fn encode_sig(sig: &Signature, enc: &mut Encoder) {
    enc.write_usize(sig.params.len());
    for &p in &sig.params {
        encode_ty(p, enc);
    }
    match sig.ret {
        None => enc.write_u8(2),
        Some(t) => encode_ty(t, enc),
    }
}

pub(crate) fn decode_sig(dec: &mut Decoder<'_>) -> Result<Signature, DecodeError> {
    let n = dec.read_usize()?;
    let mut params = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        params.push(decode_ty(dec)?);
    }
    let ret = match dec.read_u8()? {
        0 => Some(Ty::I64),
        1 => Some(Ty::F64),
        2 => None,
        tag => {
            return Err(DecodeError::BadTag {
                tag,
                offset: dec.position(),
            })
        }
    };
    Ok(Signature { params, ret })
}

pub(crate) fn encode_linkage(l: Linkage, enc: &mut Encoder) {
    enc.write_u8(match l {
        Linkage::Export => 0,
        Linkage::Internal => 1,
    });
}

pub(crate) fn decode_linkage(dec: &mut Decoder<'_>) -> Result<Linkage, DecodeError> {
    match dec.read_u8()? {
        0 => Ok(Linkage::Export),
        1 => Ok(Linkage::Internal),
        tag => Err(DecodeError::BadTag {
            tag,
            offset: dec.position(),
        }),
    }
}

fn encode_global_ref(g: GlobalRef, enc: &mut Encoder) {
    match g {
        GlobalRef::Name(s) => {
            enc.write_u8(0);
            enc.write_u32(s.0);
        }
        GlobalRef::Id(id) => {
            enc.write_u8(1);
            enc.write_u32(id.0);
        }
    }
}

fn decode_global_ref(dec: &mut Decoder<'_>) -> Result<GlobalRef, DecodeError> {
    match dec.read_u8()? {
        0 => Ok(GlobalRef::Name(Sym(dec.read_u32()?))),
        1 => Ok(GlobalRef::Id(GlobalId(dec.read_u32()?))),
        tag => Err(DecodeError::BadTag {
            tag,
            offset: dec.position(),
        }),
    }
}

fn encode_callee_ref(c: CalleeRef, enc: &mut Encoder) {
    match c {
        CalleeRef::Name(s) => {
            enc.write_u8(0);
            enc.write_u32(s.0);
        }
        CalleeRef::Id(id) => {
            enc.write_u8(1);
            enc.write_u32(id.0);
        }
    }
}

fn decode_callee_ref(dec: &mut Decoder<'_>) -> Result<CalleeRef, DecodeError> {
    match dec.read_u8()? {
        0 => Ok(CalleeRef::Name(Sym(dec.read_u32()?))),
        1 => Ok(CalleeRef::Id(RoutineId(dec.read_u32()?))),
        tag => Err(DecodeError::BadTag {
            tag,
            offset: dec.position(),
        }),
    }
}

fn encode_mem_base(b: MemBase, enc: &mut Encoder) {
    match b {
        MemBase::Local(l) => {
            enc.write_u8(0);
            enc.write_u32(l.0);
        }
        MemBase::Global(g) => {
            enc.write_u8(1);
            encode_global_ref(g, enc);
        }
    }
}

fn decode_mem_base(dec: &mut Decoder<'_>) -> Result<MemBase, DecodeError> {
    match dec.read_u8()? {
        0 => Ok(MemBase::Local(Local(dec.read_u32()?))),
        1 => Ok(MemBase::Global(decode_global_ref(dec)?)),
        tag => Err(DecodeError::BadTag {
            tag,
            offset: dec.position(),
        }),
    }
}

const T_CONST: u8 = 0;
const T_BIN: u8 = 1;
const T_UN: u8 = 2;
const T_MOV: u8 = 3;
const T_LOAD_LOCAL: u8 = 4;
const T_STORE_LOCAL: u8 = 5;
const T_LOAD_GLOBAL: u8 = 6;
const T_STORE_GLOBAL: u8 = 7;
const T_LOAD_ELEM: u8 = 8;
const T_STORE_ELEM: u8 = 9;
const T_CALL: u8 = 10;
const T_INPUT: u8 = 11;
const T_OUTPUT: u8 = 12;

const BIN_OPS: [BinOp; 20] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::FAdd,
    BinOp::FSub,
    BinOp::FMul,
    BinOp::FDiv,
    BinOp::FLt,
    BinOp::FEq,
];

const UN_OPS: [UnOp; 5] = [UnOp::Neg, UnOp::Not, UnOp::FNeg, UnOp::I2F, UnOp::F2I];

fn bin_op_code(op: BinOp) -> u8 {
    BIN_OPS
        .iter()
        .position(|&o| o == op)
        .expect("every BinOp is in BIN_OPS") as u8
}

fn un_op_code(op: UnOp) -> u8 {
    UN_OPS
        .iter()
        .position(|&o| o == op)
        .expect("every UnOp is in UN_OPS") as u8
}

fn encode_instr(i: &Instr, enc: &mut Encoder) {
    match i {
        Instr::Const { dst, value } => {
            enc.write_u8(T_CONST);
            enc.write_u32(dst.0);
            encode_const(*value, enc);
        }
        Instr::Bin { dst, op, lhs, rhs } => {
            enc.write_u8(T_BIN);
            enc.write_u8(bin_op_code(*op));
            enc.write_u32(dst.0);
            enc.write_u32(lhs.0);
            enc.write_u32(rhs.0);
        }
        Instr::Un { dst, op, src } => {
            enc.write_u8(T_UN);
            enc.write_u8(un_op_code(*op));
            enc.write_u32(dst.0);
            enc.write_u32(src.0);
        }
        Instr::Mov { dst, src } => {
            enc.write_u8(T_MOV);
            enc.write_u32(dst.0);
            enc.write_u32(src.0);
        }
        Instr::LoadLocal { dst, local } => {
            enc.write_u8(T_LOAD_LOCAL);
            enc.write_u32(dst.0);
            enc.write_u32(local.0);
        }
        Instr::StoreLocal { local, src } => {
            enc.write_u8(T_STORE_LOCAL);
            enc.write_u32(local.0);
            enc.write_u32(src.0);
        }
        Instr::LoadGlobal { dst, global } => {
            enc.write_u8(T_LOAD_GLOBAL);
            enc.write_u32(dst.0);
            encode_global_ref(*global, enc);
        }
        Instr::StoreGlobal { global, src } => {
            enc.write_u8(T_STORE_GLOBAL);
            encode_global_ref(*global, enc);
            enc.write_u32(src.0);
        }
        Instr::LoadElem { dst, base, index } => {
            enc.write_u8(T_LOAD_ELEM);
            enc.write_u32(dst.0);
            encode_mem_base(*base, enc);
            enc.write_u32(index.0);
        }
        Instr::StoreElem { base, index, src } => {
            enc.write_u8(T_STORE_ELEM);
            encode_mem_base(*base, enc);
            enc.write_u32(index.0);
            enc.write_u32(src.0);
        }
        Instr::Call {
            dst,
            callee,
            args,
            site,
        } => {
            enc.write_u8(T_CALL);
            match dst {
                None => enc.write_u32(u32::MAX),
                Some(d) => enc.write_u32(d.0),
            }
            encode_callee_ref(*callee, enc);
            enc.write_usize(args.len());
            for a in args {
                enc.write_u32(a.0);
            }
            enc.write_u32(site.0);
        }
        Instr::Input { dst } => {
            enc.write_u8(T_INPUT);
            enc.write_u32(dst.0);
        }
        Instr::Output { src } => {
            enc.write_u8(T_OUTPUT);
            enc.write_u32(src.0);
        }
    }
}

fn decode_instr(dec: &mut Decoder<'_>) -> Result<Instr, DecodeError> {
    let tag = dec.read_u8()?;
    Ok(match tag {
        T_CONST => Instr::Const {
            dst: VReg(dec.read_u32()?),
            value: decode_const(dec)?,
        },
        T_BIN => {
            let code = dec.read_u8()? as usize;
            let op = *BIN_OPS.get(code).ok_or(CORRUPT("bad binop code"))?;
            Instr::Bin {
                op,
                dst: VReg(dec.read_u32()?),
                lhs: VReg(dec.read_u32()?),
                rhs: VReg(dec.read_u32()?),
            }
        }
        T_UN => {
            let code = dec.read_u8()? as usize;
            let op = *UN_OPS.get(code).ok_or(CORRUPT("bad unop code"))?;
            Instr::Un {
                op,
                dst: VReg(dec.read_u32()?),
                src: VReg(dec.read_u32()?),
            }
        }
        T_MOV => Instr::Mov {
            dst: VReg(dec.read_u32()?),
            src: VReg(dec.read_u32()?),
        },
        T_LOAD_LOCAL => Instr::LoadLocal {
            dst: VReg(dec.read_u32()?),
            local: Local(dec.read_u32()?),
        },
        T_STORE_LOCAL => Instr::StoreLocal {
            local: Local(dec.read_u32()?),
            src: VReg(dec.read_u32()?),
        },
        T_LOAD_GLOBAL => Instr::LoadGlobal {
            dst: VReg(dec.read_u32()?),
            global: decode_global_ref(dec)?,
        },
        T_STORE_GLOBAL => Instr::StoreGlobal {
            global: decode_global_ref(dec)?,
            src: VReg(dec.read_u32()?),
        },
        T_LOAD_ELEM => Instr::LoadElem {
            dst: VReg(dec.read_u32()?),
            base: decode_mem_base(dec)?,
            index: VReg(dec.read_u32()?),
        },
        T_STORE_ELEM => Instr::StoreElem {
            base: decode_mem_base(dec)?,
            index: VReg(dec.read_u32()?),
            src: VReg(dec.read_u32()?),
        },
        T_CALL => {
            let dst_raw = dec.read_u32()?;
            let dst = if dst_raw == u32::MAX {
                None
            } else {
                Some(VReg(dst_raw))
            };
            let callee = decode_callee_ref(dec)?;
            let n = dec.read_usize()?;
            let mut args = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                args.push(VReg(dec.read_u32()?));
            }
            Instr::Call {
                dst,
                callee,
                args,
                site: CallSiteId(dec.read_u32()?),
            }
        }
        T_INPUT => Instr::Input {
            dst: VReg(dec.read_u32()?),
        },
        T_OUTPUT => Instr::Output {
            src: VReg(dec.read_u32()?),
        },
        tag => {
            return Err(DecodeError::BadTag {
                tag,
                offset: dec.position(),
            })
        }
    })
}

fn encode_term(t: &Terminator, enc: &mut Encoder) {
    match t {
        Terminator::Jump(b) => {
            enc.write_u8(0);
            enc.write_u32(b.0);
        }
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            enc.write_u8(1);
            enc.write_u32(cond.0);
            enc.write_u32(then_bb.0);
            enc.write_u32(else_bb.0);
        }
        Terminator::Return(None) => enc.write_u8(2),
        Terminator::Return(Some(r)) => {
            enc.write_u8(3);
            enc.write_u32(r.0);
        }
    }
}

fn decode_term(dec: &mut Decoder<'_>) -> Result<Terminator, DecodeError> {
    Ok(match dec.read_u8()? {
        0 => Terminator::Jump(Block(dec.read_u32()?)),
        1 => Terminator::Branch {
            cond: VReg(dec.read_u32()?),
            then_bb: Block(dec.read_u32()?),
            else_bb: Block(dec.read_u32()?),
        },
        2 => Terminator::Return(None),
        3 => Terminator::Return(Some(VReg(dec.read_u32()?))),
        tag => {
            return Err(DecodeError::BadTag {
                tag,
                offset: dec.position(),
            })
        }
    })
}

/// Writes the relocatable image of a routine body.
pub(crate) fn encode_body(body: &RoutineBody, enc: &mut Encoder) {
    enc.write_u32(body.n_vregs);
    enc.write_u32(body.next_site);
    enc.write_usize(body.locals.len());
    for l in &body.locals {
        encode_var_ty(l.ty, enc);
        enc.write_bool(l.is_param);
    }
    enc.write_usize(body.blocks.len());
    for b in &body.blocks {
        enc.write_usize(b.instrs.len());
        for i in &b.instrs {
            encode_instr(i, enc);
        }
        encode_term(&b.term, enc);
    }
}

/// Reads a routine body from its relocatable image.
pub(crate) fn decode_body(dec: &mut Decoder<'_>) -> Result<RoutineBody, DecodeError> {
    let n_vregs = dec.read_u32()?;
    let next_site = dec.read_u32()?;
    let n_locals = dec.read_usize()?;
    let mut locals = Vec::with_capacity(n_locals.min(4096));
    for _ in 0..n_locals {
        let ty = decode_var_ty(dec)?;
        let is_param = dec.read_bool()?;
        locals.push(LocalDecl { ty, is_param });
    }
    let n_blocks = dec.read_usize()?;
    let mut blocks = Vec::with_capacity(n_blocks.min(4096));
    for _ in 0..n_blocks {
        let n_instrs = dec.read_usize()?;
        let mut instrs = Vec::with_capacity(n_instrs.min(4096));
        for _ in 0..n_instrs {
            instrs.push(decode_instr(dec)?);
        }
        let term = decode_term(dec)?;
        blocks.push(BlockData { instrs, term });
    }
    Ok(RoutineBody {
        blocks,
        locals,
        n_vregs,
        next_site,
    })
}

pub(crate) fn encode_symbols(st: &ModuleSymbols, enc: &mut Encoder) {
    enc.write_usize(st.globals.len());
    for g in &st.globals {
        enc.write_u32(g.name.0);
        encode_var_ty(g.ty, enc);
        encode_linkage(g.linkage, enc);
        match &g.init {
            GlobalInit::Zero => enc.write_u8(0),
            GlobalInit::Scalar(c) => {
                enc.write_u8(1);
                encode_const(*c, enc);
            }
            GlobalInit::IntArray(v) => {
                enc.write_u8(2);
                enc.write_usize(v.len());
                for &x in v {
                    enc.write_i64(x);
                }
            }
            GlobalInit::FloatArray(v) => {
                enc.write_u8(3);
                enc.write_usize(v.len());
                for &x in v {
                    enc.write_f64(x);
                }
            }
        }
    }
}

pub(crate) fn decode_symbols(dec: &mut Decoder<'_>) -> Result<ModuleSymbols, DecodeError> {
    let n = dec.read_usize()?;
    let mut globals = Vec::with_capacity(n.min(65536));
    for _ in 0..n {
        let name = Sym(dec.read_u32()?);
        let ty = decode_var_ty(dec)?;
        let linkage = decode_linkage(dec)?;
        let init = match dec.read_u8()? {
            0 => GlobalInit::Zero,
            1 => GlobalInit::Scalar(decode_const(dec)?),
            2 => {
                let len = dec.read_usize()?;
                let mut v = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    v.push(dec.read_i64()?);
                }
                GlobalInit::IntArray(v)
            }
            3 => {
                let len = dec.read_usize()?;
                let mut v = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    v.push(dec.read_f64()?);
                }
                GlobalInit::FloatArray(v)
            }
            tag => {
                return Err(DecodeError::BadTag {
                    tag,
                    offset: dec.position(),
                })
            }
        };
        globals.push(GlobalVar {
            name,
            ty,
            linkage,
            init,
        });
    }
    Ok(ModuleSymbols { globals })
}

/// The transitory pool payload managed by the NAIM loader: either one
/// routine's IR or one module's symbol table (Figure 3).
#[derive(Debug, Clone, PartialEq)]
pub enum Transitory {
    /// Routine IR.
    Routine(RoutineBody),
    /// Module symbol table.
    SymTab(ModuleSymbols),
}

impl Transitory {
    /// The routine body.
    ///
    /// # Panics
    ///
    /// Panics if this pool holds a symbol table.
    #[must_use]
    pub fn routine(&self) -> &RoutineBody {
        match self {
            Transitory::Routine(b) => b,
            Transitory::SymTab(_) => panic!("pool holds a symbol table, not routine IR"),
        }
    }

    /// The routine body, exclusively.
    ///
    /// # Panics
    ///
    /// Panics if this pool holds a symbol table.
    pub fn routine_mut(&mut self) -> &mut RoutineBody {
        match self {
            Transitory::Routine(b) => b,
            Transitory::SymTab(_) => panic!("pool holds a symbol table, not routine IR"),
        }
    }

    /// The symbol table.
    ///
    /// # Panics
    ///
    /// Panics if this pool holds routine IR.
    #[must_use]
    pub fn symtab(&self) -> &ModuleSymbols {
        match self {
            Transitory::SymTab(s) => s,
            Transitory::Routine(_) => panic!("pool holds routine IR, not a symbol table"),
        }
    }
}

impl Relocatable for Transitory {
    fn compact(&self, enc: &mut Encoder) {
        match self {
            Transitory::Routine(b) => {
                enc.write_u8(0);
                encode_body(b, enc);
            }
            Transitory::SymTab(s) => {
                enc.write_u8(1);
                encode_symbols(s, enc);
            }
        }
    }

    fn uncompact(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.read_u8()? {
            0 => Ok(Transitory::Routine(decode_body(dec)?)),
            1 => Ok(Transitory::SymTab(decode_symbols(dec)?)),
            tag => Err(DecodeError::BadTag {
                tag,
                offset: dec.position(),
            }),
        }
    }

    fn expanded_bytes(&self) -> usize {
        match self {
            Transitory::Routine(b) => b.heap_bytes(),
            Transitory::SymTab(s) => s.heap_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_body() -> RoutineBody {
        let mut b = RoutineBody::new();
        let p0 = b.new_local(VarTy::scalar(Ty::I64), true);
        let arr = b.new_local(VarTy::array(Ty::F64, 8), false);
        let r0 = b.new_vreg();
        let r1 = b.new_vreg();
        let r2 = b.new_vreg();
        let site = b.new_site();
        let mut b0 = BlockData::new(Terminator::Branch {
            cond: r1,
            then_bb: Block(1),
            else_bb: Block(2),
        });
        b0.instrs.push(Instr::LoadLocal { dst: r0, local: p0 });
        b0.instrs.push(Instr::Const {
            dst: r1,
            value: Const::I(-7),
        });
        b0.instrs.push(Instr::Bin {
            dst: r1,
            op: BinOp::Lt,
            lhs: r0,
            rhs: r1,
        });
        b.blocks.push(b0);
        let mut b1 = BlockData::new(Terminator::Jump(Block(2)));
        b1.instrs.push(Instr::Call {
            dst: Some(r2),
            callee: CalleeRef::Name(Sym(4)),
            args: vec![r0, r1],
            site,
        });
        b1.instrs.push(Instr::StoreElem {
            base: MemBase::Local(arr),
            index: r0,
            src: r2,
        });
        b.blocks.push(b1);
        let mut b2 = BlockData::new(Terminator::Return(Some(r0)));
        b2.instrs.push(Instr::Output { src: r0 });
        b.blocks.push(b2);
        b
    }

    #[test]
    fn body_round_trips() {
        let body = sample_body();
        let t = Transitory::Routine(body.clone());
        let mut enc = Encoder::new();
        t.compact(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = Transitory::uncompact(&mut dec).unwrap();
        assert!(dec.is_at_end());
        assert_eq!(back.routine(), &body);
    }

    #[test]
    fn compact_form_is_much_smaller_than_expanded() {
        let body = sample_body();
        let t = Transitory::Routine(body);
        let mut enc = Encoder::new();
        t.compact(&mut enc);
        // The paper reports roughly 2/3 savings from dropping derived
        // fields plus pointer elimination; require at least 2x here.
        assert!(t.expanded_bytes() > 2 * enc.len());
    }

    #[test]
    fn symtab_round_trips() {
        let st = ModuleSymbols {
            globals: vec![
                GlobalVar {
                    name: Sym(1),
                    ty: VarTy::scalar(Ty::I64),
                    linkage: Linkage::Export,
                    init: GlobalInit::Scalar(Const::I(99)),
                },
                GlobalVar {
                    name: Sym(2),
                    ty: VarTy::array(Ty::F64, 4),
                    linkage: Linkage::Internal,
                    init: GlobalInit::FloatArray(vec![1.0, -2.5]),
                },
                GlobalVar {
                    name: Sym(3),
                    ty: VarTy::array(Ty::I64, 16),
                    linkage: Linkage::Internal,
                    init: GlobalInit::IntArray(vec![3, 1, 4, 1, 5]),
                },
            ],
        };
        let t = Transitory::SymTab(st.clone());
        let mut enc = Encoder::new();
        t.compact(&mut enc);
        let bytes = enc.into_bytes();
        let back = Transitory::uncompact(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(back.symtab(), &st);
    }

    #[test]
    fn corrupt_image_is_rejected_not_panicking() {
        let body = sample_body();
        let t = Transitory::Routine(body);
        let mut enc = Encoder::new();
        t.compact(&mut enc);
        let mut bytes = enc.into_bytes();
        // Flip the payload tag to nonsense.
        bytes[0] = 0xEE;
        assert!(Transitory::uncompact(&mut Decoder::new(&bytes)).is_err());
    }
}
