//! Textual IL printing for diagnostics.
//!
//! Good compiler diagnostics about what the optimizer is doing are
//! essential when deploying selectivity (§6.2); the printer renders any
//! routine body with resolved or unresolved references.

use crate::instr::{CalleeRef, GlobalRef, Instr, MemBase, Terminator};
use crate::program::Program;
use crate::routine::RoutineBody;
use std::fmt::Write as _;

fn fmt_global(g: GlobalRef, program: Option<&Program>) -> String {
    match (g, program) {
        (GlobalRef::Id(id), Some(p)) => format!("@{}", p.name(p.global(id).name)),
        (GlobalRef::Id(id), None) => format!("@{id}"),
        (GlobalRef::Name(s), _) => format!("@?{s}"),
    }
}

fn fmt_callee(c: CalleeRef, program: Option<&Program>) -> String {
    match (c, program) {
        (CalleeRef::Id(id), Some(p)) => p.name(p.routine(id).name).to_owned(),
        (CalleeRef::Id(id), None) => format!("{id}"),
        (CalleeRef::Name(s), _) => format!("?{s}"),
    }
}

fn fmt_base(b: MemBase, program: Option<&Program>) -> String {
    match b {
        MemBase::Local(l) => format!("{l}"),
        MemBase::Global(g) => fmt_global(g, program),
    }
}

/// Renders `body` as text. Pass the program for resolved symbol names;
/// without it, raw ids are printed.
#[must_use]
pub fn print_routine(name: &str, body: &RoutineBody, program: Option<&Program>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "routine {name} [{} blocks, {} vregs, {} locals]",
        body.blocks.len(),
        body.n_vregs,
        body.locals.len()
    );
    for (i, decl) in body.locals.iter().enumerate() {
        let _ = writeln!(
            out,
            "  local loc{i}: {}{}",
            decl.ty,
            if decl.is_param { " (param)" } else { "" }
        );
    }
    for (bid, block) in body.iter_blocks() {
        let _ = writeln!(out, "{bid}:");
        for instr in &block.instrs {
            let line = match instr {
                Instr::Const { dst, value } => format!("{dst} = const {value}"),
                Instr::Bin { dst, op, lhs, rhs } => format!("{dst} = {op} {lhs}, {rhs}"),
                Instr::Un { dst, op, src } => format!("{dst} = {op} {src}"),
                Instr::Mov { dst, src } => format!("{dst} = mov {src}"),
                Instr::LoadLocal { dst, local } => format!("{dst} = load {local}"),
                Instr::StoreLocal { local, src } => format!("store {local}, {src}"),
                Instr::LoadGlobal { dst, global } => {
                    format!("{dst} = load {}", fmt_global(*global, program))
                }
                Instr::StoreGlobal { global, src } => {
                    format!("store {}, {src}", fmt_global(*global, program))
                }
                Instr::LoadElem { dst, base, index } => {
                    format!("{dst} = load {}[{index}]", fmt_base(*base, program))
                }
                Instr::StoreElem { base, index, src } => {
                    format!("store {}[{index}], {src}", fmt_base(*base, program))
                }
                Instr::Call {
                    dst,
                    callee,
                    args,
                    site,
                } => {
                    let args = args
                        .iter()
                        .map(|a| format!("{a}"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    match dst {
                        Some(d) => {
                            format!(
                                "{d} = call {}({args}) !{site}",
                                fmt_callee(*callee, program)
                            )
                        }
                        None => format!("call {}({args}) !{site}", fmt_callee(*callee, program)),
                    }
                }
                Instr::Input { dst } => format!("{dst} = input"),
                Instr::Output { src } => format!("output {src}"),
            };
            let _ = writeln!(out, "    {line}");
        }
        let term = match &block.term {
            Terminator::Jump(b) => format!("jump {b}"),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => format!("branch {cond} ? {then_bb} : {else_bb}"),
            Terminator::Return(Some(r)) => format!("return {r}"),
            Terminator::Return(None) => "return".to_owned(),
        };
        let _ = writeln!(out, "    {term}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IlObjectBuilder;
    use crate::link::link_objects;
    use crate::types::{Signature, Ty};
    use crate::BinOp;

    #[test]
    fn printer_renders_resolved_names() {
        let mut b = IlObjectBuilder::new("m");
        let mut f = b.routine("twice", Signature::new(vec![Ty::I64], Some(Ty::I64)));
        let p = f.param(0);
        let x = f.load_local(p);
        let r = f.bin(BinOp::Add, x, x);
        let out = f.call("twice", vec![r]);
        f.ret(Some(out));
        f.finish();
        let unit = link_objects(vec![b.finish()]).unwrap();
        let text = print_routine("twice", &unit.bodies[0], Some(&unit.program));
        assert!(text.contains("%2 = call twice(%1) !cs0"));
        assert!(text.contains("%1 = add %0, %0"));
        assert!(text.contains("return %2"));
    }

    #[test]
    fn printer_handles_unresolved_refs() {
        let mut b = IlObjectBuilder::new("m");
        let mut f = b.routine("f", Signature::default());
        let v = f.load_global("gv");
        f.output(v);
        f.ret(None);
        f.finish();
        let obj = b.finish();
        let text = print_routine("f", &obj.routines[0].body, None);
        assert!(text.contains("@?sym"));
    }
}
