//! Routines: always-resident metadata and transitory bodies.
//!
//! Splitting each routine into a small, always-resident [`RoutineMeta`]
//! (part of the program symbol table) and a heavyweight [`RoutineBody`]
//! (a transitory pool the loader may compact or offload) is the
//! organization of Figure 3.

use crate::ids::{Block, CallSiteId, Local, ModuleId, Sym, VReg};
use crate::instr::{Instr, Terminator};
use crate::module::Linkage;
use crate::types::{Signature, VarTy};

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockData {
    /// Instructions in execution order.
    pub instrs: Vec<Instr>,
    /// The block terminator.
    pub term: Terminator,
}

impl BlockData {
    /// An empty block ending in `term`.
    #[must_use]
    pub fn new(term: Terminator) -> Self {
        BlockData {
            instrs: Vec::new(),
            term,
        }
    }
}

/// Declaration of a local variable slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalDecl {
    /// Variable type (scalar or array).
    pub ty: VarTy,
    /// `true` for the slots holding incoming parameters.
    pub is_param: bool,
}

/// Always-resident routine metadata: the program-symbol-table entry.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutineMeta {
    /// Routine name (program interner).
    pub name: Sym,
    /// Defining module.
    pub module: ModuleId,
    /// Signature.
    pub sig: Signature,
    /// Export or module-internal.
    pub linkage: Linkage,
    /// Source lines this routine was compiled from; the unit of the
    /// paper's lines-of-code axes (Figures 4 and 6).
    pub source_lines: u32,
    /// Number of IL instructions at frontend time (size estimate used
    /// by inlining heuristics before the body is loaded).
    pub il_size: u32,
}

/// The transitory body of one routine.
///
/// Bodies live in NAIM pools: analysis results about a body (liveness,
/// dominators, loop info) are *derived* data kept in side structures
/// that are discarded when the body is unloaded, never encoded.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutineBody {
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<BlockData>,
    /// Local variable declarations; parameter slots come first.
    pub locals: Vec<LocalDecl>,
    /// Number of virtual registers in use.
    pub n_vregs: u32,
    /// Next unassigned call-site id.
    pub next_site: u32,
}

impl RoutineBody {
    /// An empty body with no blocks.
    #[must_use]
    pub fn new() -> Self {
        RoutineBody {
            blocks: Vec::new(),
            locals: Vec::new(),
            n_vregs: 0,
            next_site: 0,
        }
    }

    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        let r = VReg(self.n_vregs);
        self.n_vregs += 1;
        r
    }

    /// Allocates a fresh call-site id.
    pub fn new_site(&mut self) -> CallSiteId {
        let s = CallSiteId(self.next_site);
        self.next_site += 1;
        s
    }

    /// Allocates a fresh local slot.
    pub fn new_local(&mut self, ty: VarTy, is_param: bool) -> Local {
        let l = Local::from_index(self.locals.len());
        self.locals.push(LocalDecl { ty, is_param });
        l
    }

    /// The entry block.
    #[must_use]
    pub fn entry(&self) -> Block {
        Block(0)
    }

    /// Shared access to a block's data.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[must_use]
    pub fn block(&self, b: Block) -> &BlockData {
        &self.blocks[b.index()]
    }

    /// Exclusive access to a block's data.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[must_use]
    pub fn block_mut(&mut self, b: Block) -> &mut BlockData {
        &mut self.blocks[b.index()]
    }

    /// Iterates over `(Block, &BlockData)` in index order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (Block, &BlockData)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (Block::from_index(i), b))
    }

    /// Total instruction count (not counting terminators).
    #[must_use]
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Call sites in block order: `(Block, instruction index, site id)`.
    #[must_use]
    pub fn call_sites(&self) -> Vec<(Block, usize, CallSiteId)> {
        let mut sites = Vec::new();
        for (bid, block) in self.iter_blocks() {
            for (i, instr) in block.instrs.iter().enumerate() {
                if let Instr::Call { site, .. } = instr {
                    sites.push((bid, i, *site));
                }
            }
        }
        sites
    }

    /// Deterministic structural fingerprint over per-block instruction
    /// counts and successor lists (FNV-1a). Together with block and
    /// call-site counts this identifies a routine's shape for
    /// stale-profile detection (§6.2).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for block in &self.blocks {
            mix(block.instrs.len() as u64);
            for s in block.term.successors() {
                mix(0x8000_0000_0000_0000 | s.index() as u64);
            }
            mix(u64::MAX);
        }
        h
    }

    /// Approximate expanded heap bytes, mirroring what an
    /// address-pointer representation with annotation slots would
    /// occupy. Instruction payloads (`Call` argument vectors) are
    /// included.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Self>();
        bytes += self.blocks.capacity() * std::mem::size_of::<BlockData>();
        for b in &self.blocks {
            bytes += b.instrs.capacity() * std::mem::size_of::<Instr>();
            for i in &b.instrs {
                if let Instr::Call { args, .. } = i {
                    bytes += args.capacity() * std::mem::size_of::<VReg>();
                }
            }
        }
        bytes += self.locals.capacity() * std::mem::size_of::<LocalDecl>();
        bytes
    }
}

impl Default for RoutineBody {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::CalleeRef;
    use crate::types::Ty;
    use crate::RoutineId;

    fn body_with_call() -> RoutineBody {
        let mut b = RoutineBody::new();
        let r0 = b.new_vreg();
        let site = b.new_site();
        let mut blk = BlockData::new(Terminator::Return(Some(r0)));
        blk.instrs.push(Instr::Call {
            dst: Some(r0),
            callee: CalleeRef::Id(RoutineId(1)),
            args: vec![],
            site,
        });
        b.blocks.push(blk);
        b
    }

    #[test]
    fn vreg_and_site_allocation_is_sequential() {
        let mut b = RoutineBody::new();
        assert_eq!(b.new_vreg(), VReg(0));
        assert_eq!(b.new_vreg(), VReg(1));
        assert_eq!(b.new_site(), CallSiteId(0));
        assert_eq!(b.new_site(), CallSiteId(1));
        let l = b.new_local(VarTy::scalar(Ty::I64), true);
        assert_eq!(l.index(), 0);
        assert!(b.locals[0].is_param);
    }

    #[test]
    fn call_sites_enumerates_in_order() {
        let b = body_with_call();
        let sites = b.call_sites();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].2, CallSiteId(0));
        assert_eq!(b.instr_count(), 1);
    }

    #[test]
    fn heap_bytes_grows_with_instructions() {
        let empty = RoutineBody::new().heap_bytes();
        let with_call = body_with_call().heap_bytes();
        assert!(with_call > empty);
    }
}
