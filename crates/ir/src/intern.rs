//! Deterministic string interning.

use crate::ids::Sym;
use std::collections::HashMap;

/// A string interner mapping names to stable [`Sym`] indices.
///
/// Symbols are numbered in first-intern order and the table is only
/// ever iterated by index, never by hash order, preserving the
/// determinism discipline of §6.2.
///
/// # Example
///
/// ```
/// use cmo_ir::Interner;
/// let mut i = Interner::new();
/// let a = i.intern("printf");
/// let b = i.intern("printf");
/// assert_eq!(a, b);
/// assert_eq!(i.resolve(a), "printf");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<String>,
    map: HashMap<String, Sym>,
}

impl Interner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its stable symbol.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Sym::from_index(self.names.len());
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), sym);
        sym
    }

    /// Looks up a symbol without interning.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.map.get(name).copied()
    }

    /// Returns the string for `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this interner.
    #[must_use]
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned strings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(Sym, &str)` pairs in intern order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (Sym::from_index(i), s.as_str()))
    }

    /// Approximate heap bytes, for memory accounting.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        let strings: usize = self.names.iter().map(|s| s.capacity() + 24).sum();
        // The map roughly doubles the string storage plus entry overhead.
        strings * 2 + self.map.len() * 16 + self.names.capacity() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        assert_ne!(a, b);
        assert_eq!(i.intern("x"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn symbols_number_in_first_seen_order() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a").index(), 0);
        assert_eq!(i.intern("b").index(), 1);
        assert_eq!(i.intern("a").index(), 0);
        let collected: Vec<_> = i.iter().map(|(_, s)| s.to_owned()).collect();
        assert_eq!(collected, ["a", "b"]);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.lookup("missing").is_none());
        let s = i.intern("present");
        assert_eq!(i.lookup("present"), Some(s));
    }
}
