//! Typed identifiers.
//!
//! Every reference between IL objects is a small, stable integer. This
//! is load-bearing for the reproduction in two ways: stable indices are
//! exactly the persistent identifiers the NAIM relocatable form needs
//! (§4.2.1), and never keying anything on machine addresses is what
//! makes compilations bit-reproducible across runs and machines (§6.2).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a table index.
            ///
            /// # Panics
            ///
            /// Panics if `index` exceeds `u32::MAX`.
            #[must_use]
            pub fn from_index(index: usize) -> Self {
                $name(u32::try_from(index).expect("id index fits in u32"))
            }

            /// Returns the table index this id names.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// An interned string in a program or object-file string table.
    Sym,
    "sym"
);
id_type!(
    /// A module in the program module table.
    ModuleId,
    "mod"
);
id_type!(
    /// A routine in the program-wide routine table (part of the
    /// always-resident program symbol table).
    RoutineId,
    "fn"
);
id_type!(
    /// A global variable in the program-wide variable table.
    GlobalId,
    "gv"
);
id_type!(
    /// A basic block within one routine.
    Block,
    "bb"
);
id_type!(
    /// A virtual register within one routine.
    VReg,
    "%"
);
id_type!(
    /// A local variable slot within one routine.
    Local,
    "loc"
);
id_type!(
    /// A call site within one routine; stable across optimization so
    /// profile data can be correlated with program structure.
    CallSiteId,
    "cs"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_indices() {
        let r = RoutineId::from_index(7);
        assert_eq!(r.index(), 7);
        assert_eq!(format!("{r}"), "fn7");
        assert_eq!(format!("{r:?}"), "fn7");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(Block::from_index(1) < Block::from_index(2));
        assert_eq!(VReg::default().index(), 0);
    }
}
