//! IL object files.
//!
//! In CMO mode the frontends "dump the IL directly to object files that
//! correspond to the source modules being compiled" (§3); the linker
//! recognizes these IL objects and routes them through the optimizer.
//! Keeping all persistent information in ordinary object files — rather
//! than a program database — is what makes the framework compatible
//! with `make`-style build processes (§6.1).

use crate::ids::Sym;
use crate::intern::Interner;
use crate::module::{Linkage, ModuleSymbols};
use crate::relocs::{
    decode_body, decode_sig, decode_symbols, encode_body, encode_sig, encode_symbols,
};
use crate::routine::RoutineBody;
use crate::types::Signature;
use cmo_naim::{DecodeError, Decoder, Encoder};
use std::error::Error;
use std::fmt;

/// Magic bytes identifying an IL-bearing object file.
pub const IL_MAGIC: &[u8; 8] = b"CMOIL01\0";

/// One routine definition inside an IL object.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutineDef {
    /// Routine name, in the object's own string table.
    pub name: Sym,
    /// Signature.
    pub sig: Signature,
    /// Visibility.
    pub linkage: Linkage,
    /// Source lines the routine spans.
    pub source_lines: u32,
    /// The IL body, with name-based external references.
    pub body: RoutineBody,
}

/// An object file carrying IL for one source module.
///
/// All symbol references inside the bodies are [`Sym`]s in the object's
/// *own* string table ([`IlObject::strings`]); IL linking re-interns
/// them into the program interner and resolves them to ids.
#[derive(Debug, Clone, Default)]
pub struct IlObject {
    /// Module name.
    pub module_name: String,
    /// Source language tag ("mlc", "c", "f77", ...).
    pub language: &'static str,
    /// The object's private string table.
    pub strings: Interner,
    /// Global variable definitions (the future module symbol table).
    pub symbols: ModuleSymbols,
    /// Routine definitions.
    pub routines: Vec<RoutineDef>,
    /// Total source lines of the module.
    pub source_lines: u32,
}

/// Error decoding an object file image.
#[derive(Debug)]
pub enum ObjectDecodeError {
    /// The image does not begin with [`IL_MAGIC`].
    NotAnIlObject,
    /// The payload is corrupt.
    Decode(DecodeError),
}

impl fmt::Display for ObjectDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectDecodeError::NotAnIlObject => f.write_str("missing IL object magic"),
            ObjectDecodeError::Decode(e) => write!(f, "corrupt IL object: {e}"),
        }
    }
}

impl Error for ObjectDecodeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ObjectDecodeError::Decode(e) => Some(e),
            ObjectDecodeError::NotAnIlObject => None,
        }
    }
}

impl From<DecodeError> for ObjectDecodeError {
    fn from(e: DecodeError) -> Self {
        ObjectDecodeError::Decode(e)
    }
}

impl IlObject {
    /// Total IL instructions across all routines.
    #[must_use]
    pub fn il_size(&self) -> usize {
        self.routines.iter().map(|r| r.body.instr_count()).sum()
    }

    /// Serializes to the object-file byte format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(1024);
        for &b in IL_MAGIC {
            enc.write_u8(b);
        }
        enc.write_str(&self.module_name);
        enc.write_str(self.language);
        enc.write_u32(self.source_lines);
        enc.write_usize(self.strings.len());
        for (_, s) in self.strings.iter() {
            enc.write_str(s);
        }
        encode_symbols(&self.symbols, &mut enc);
        enc.write_usize(self.routines.len());
        for r in &self.routines {
            enc.write_u32(r.name.0);
            encode_sig(&r.sig, &mut enc);
            enc.write_u8(match r.linkage {
                Linkage::Export => 0,
                Linkage::Internal => 1,
            });
            enc.write_u32(r.source_lines);
            encode_body(&r.body, &mut enc);
        }
        enc.into_bytes()
    }

    /// Deserializes from the object-file byte format.
    ///
    /// # Errors
    ///
    /// Returns [`ObjectDecodeError::NotAnIlObject`] if the magic is
    /// missing (the file is a pre-compiled machine object, §3), or a
    /// decode error for corrupt payloads.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ObjectDecodeError> {
        if bytes.len() < IL_MAGIC.len() || &bytes[..IL_MAGIC.len()] != IL_MAGIC {
            return Err(ObjectDecodeError::NotAnIlObject);
        }
        let mut dec = Decoder::new(&bytes[IL_MAGIC.len()..]);
        let module_name = dec.read_str()?.to_owned();
        let language = match dec.read_str()? {
            "mlc" => "mlc",
            "c" => "c",
            "f77" => "f77",
            "c++" => "c++",
            _ => "unknown",
        };
        let source_lines = dec.read_u32()?;
        let n_strings = dec.read_usize()?;
        let mut strings = Interner::new();
        for _ in 0..n_strings {
            let s = dec.read_str()?;
            strings.intern(s);
        }
        let symbols = decode_symbols(&mut dec)?;
        let n_routines = dec.read_usize()?;
        let mut routines = Vec::with_capacity(n_routines.min(65536));
        for _ in 0..n_routines {
            let name = Sym(dec.read_u32()?);
            let sig = decode_sig(&mut dec)?;
            let linkage = match dec.read_u8()? {
                0 => Linkage::Export,
                1 => Linkage::Internal,
                tag => {
                    return Err(DecodeError::BadTag {
                        tag,
                        offset: dec.position(),
                    }
                    .into())
                }
            };
            let source_lines = dec.read_u32()?;
            let body = decode_body(&mut dec)?;
            routines.push(RoutineDef {
                name,
                sig,
                linkage,
                source_lines,
                body,
            });
        }
        Ok(IlObject {
            module_name,
            language,
            strings,
            symbols,
            routines,
            source_lines,
        })
    }

    /// Returns `true` if `bytes` carries an IL payload (vs. a
    /// pre-compiled machine object).
    #[must_use]
    pub fn is_il_object(bytes: &[u8]) -> bool {
        bytes.len() >= IL_MAGIC.len() && &bytes[..IL_MAGIC.len()] == IL_MAGIC
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IlObjectBuilder;
    use crate::types::Ty;

    fn sample_object() -> IlObject {
        let mut b = IlObjectBuilder::new("sample");
        let mut f = b.routine("double_it", Signature::new(vec![Ty::I64], Some(Ty::I64)));
        let p = f.param(0);
        let x = f.load_local(p);
        let two = f.const_i64(2);
        let r = f.bin(crate::BinOp::Mul, x, two);
        f.ret(Some(r));
        f.finish();
        b.finish()
    }

    #[test]
    fn object_round_trips_through_bytes() {
        let obj = sample_object();
        let bytes = obj.to_bytes();
        assert!(IlObject::is_il_object(&bytes));
        let back = IlObject::from_bytes(&bytes).unwrap();
        assert_eq!(back.module_name, "sample");
        assert_eq!(back.routines.len(), 1);
        assert_eq!(back.routines[0].body, obj.routines[0].body);
        assert_eq!(back.il_size(), obj.il_size());
    }

    #[test]
    fn non_il_bytes_are_recognized() {
        assert!(!IlObject::is_il_object(b"\x7fELF..."));
        assert!(matches!(
            IlObject::from_bytes(b"\x7fELF..."),
            Err(ObjectDecodeError::NotAnIlObject)
        ));
    }

    #[test]
    fn truncated_object_reports_decode_error() {
        let obj = sample_object();
        let mut bytes = obj.to_bytes();
        bytes.truncate(bytes.len() - 5);
        assert!(matches!(
            IlObject::from_bytes(&bytes),
            Err(ObjectDecodeError::Decode(_))
        ));
    }
}
