//! IL instructions and block terminators.

use crate::ids::{Block, CallSiteId, GlobalId, Local, RoutineId, Sym, VReg};
use crate::types::Const;
use std::fmt;

/// Integer and float binary operators.
///
/// Comparison operators produce an `i64` 0/1. Float operators are the
/// `F`-prefixed variants; mixing is rejected by validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `lhs + rhs` (wrapping).
    Add,
    /// `lhs - rhs` (wrapping).
    Sub,
    /// `lhs * rhs` (wrapping).
    Mul,
    /// `lhs / rhs`; division by zero yields 0 (the abstract machine is
    /// total so optimizer correctness is testable on all inputs).
    Div,
    /// `lhs % rhs`; modulo by zero yields 0.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left by `rhs & 63`.
    Shl,
    /// Arithmetic shift right by `rhs & 63`.
    Shr,
    /// Integer equality (0/1).
    Eq,
    /// Integer inequality (0/1).
    Ne,
    /// Signed less-than (0/1).
    Lt,
    /// Signed less-or-equal (0/1).
    Le,
    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Float divide.
    FDiv,
    /// Float ordered less-than (0/1 integer result).
    FLt,
    /// Float ordered equality (0/1 integer result).
    FEq,
}

impl BinOp {
    /// Returns `true` for operators on float operands.
    #[must_use]
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv | BinOp::FLt | BinOp::FEq
        )
    }

    /// Returns `true` for comparison operators (integer 0/1 result).
    #[must_use]
    pub fn is_compare(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::FLt | BinOp::FEq
        )
    }

    /// Returns `true` if `op(a, b) == op(b, a)` for all operands.
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::FAdd
                | BinOp::FMul
                | BinOp::FEq
        )
    }

    /// Lowercase mnemonic used by the printer.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
            BinOp::Lt => "lt",
            BinOp::Le => "le",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
            BinOp::FLt => "flt",
            BinOp::FEq => "feq",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation (wrapping).
    Neg,
    /// Logical not: 1 if the operand is 0, else 0.
    Not,
    /// Float negation.
    FNeg,
    /// Integer-to-float conversion.
    I2F,
    /// Float-to-integer truncation (saturating).
    F2I,
}

impl UnOp {
    /// Lowercase mnemonic used by the printer.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::FNeg => "fneg",
            UnOp::I2F => "i2f",
            UnOp::F2I => "f2i",
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A reference to a global variable.
///
/// Frontends emit [`GlobalRef::Name`]; IL linking resolves every
/// reference to [`GlobalRef::Id`] against the program symbol table. The
/// optimizer and code generator require resolved form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GlobalRef {
    /// Unresolved: a name in the object file's own string table.
    Name(Sym),
    /// Resolved: an index into the program global-variable table.
    Id(GlobalId),
}

impl GlobalRef {
    /// The resolved id.
    ///
    /// # Panics
    ///
    /// Panics if the reference is still name-based; linking must run
    /// before optimization.
    #[must_use]
    pub fn id(self) -> GlobalId {
        match self {
            GlobalRef::Id(id) => id,
            GlobalRef::Name(sym) => panic!("unresolved global reference {sym}"),
        }
    }
}

/// A reference to a callee routine; same resolution story as
/// [`GlobalRef`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CalleeRef {
    /// Unresolved object-file name.
    Name(Sym),
    /// Resolved program routine.
    Id(RoutineId),
}

impl CalleeRef {
    /// The resolved id.
    ///
    /// # Panics
    ///
    /// Panics if the reference is still name-based.
    #[must_use]
    pub fn id(self) -> RoutineId {
        match self {
            CalleeRef::Id(id) => id,
            CalleeRef::Name(sym) => panic!("unresolved callee reference {sym}"),
        }
    }
}

/// Base address of an indexed memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemBase {
    /// A local array variable.
    Local(Local),
    /// A global array variable.
    Global(GlobalRef),
}

/// A non-terminator IL instruction.
///
/// The IL is three-address code over routine-scoped virtual registers.
/// It is deliberately *not* SSA: the 1998 HLO predates SSA adoption, and
/// non-SSA TAC keeps compaction simple (no phi bookkeeping in the
/// relocatable form).
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = value`.
    Const {
        /// Destination register.
        dst: VReg,
        /// The constant.
        value: Const,
    },
    /// `dst = op(lhs, rhs)`.
    Bin {
        /// Destination register.
        dst: VReg,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: VReg,
        /// Right operand.
        rhs: VReg,
    },
    /// `dst = op(src)`.
    Un {
        /// Destination register.
        dst: VReg,
        /// Operator.
        op: UnOp,
        /// Operand.
        src: VReg,
    },
    /// `dst = src` (register copy).
    Mov {
        /// Destination register.
        dst: VReg,
        /// Source register.
        src: VReg,
    },
    /// `dst = local`.
    LoadLocal {
        /// Destination register.
        dst: VReg,
        /// Source local slot.
        local: Local,
    },
    /// `local = src`.
    StoreLocal {
        /// Destination local slot.
        local: Local,
        /// Source register.
        src: VReg,
    },
    /// `dst = global`.
    LoadGlobal {
        /// Destination register.
        dst: VReg,
        /// Source global.
        global: GlobalRef,
    },
    /// `global = src`.
    StoreGlobal {
        /// Destination global.
        global: GlobalRef,
        /// Source register.
        src: VReg,
    },
    /// `dst = base[index]`; out-of-bounds indices wrap modulo the array
    /// length (total semantics, see [`BinOp::Div`]).
    LoadElem {
        /// Destination register.
        dst: VReg,
        /// Array base.
        base: MemBase,
        /// Element index register.
        index: VReg,
    },
    /// `base[index] = src`.
    StoreElem {
        /// Array base.
        base: MemBase,
        /// Element index register.
        index: VReg,
        /// Source register.
        src: VReg,
    },
    /// `dst = callee(args...)`.
    Call {
        /// Destination for the return value, if used.
        dst: Option<VReg>,
        /// The callee.
        callee: CalleeRef,
        /// Argument registers, matching the callee signature.
        args: Vec<VReg>,
        /// Stable call-site identity for profiles and inlining.
        site: CallSiteId,
    },
    /// `dst = next value from the workload input stream` (0 when
    /// exhausted). This is how train/reference data sets reach the
    /// program.
    Input {
        /// Destination register.
        dst: VReg,
    },
    /// Mixes `src` into the program output checksum; keeps computations
    /// observable so the optimizer cannot delete the whole workload.
    Output {
        /// Source register.
        src: VReg,
    },
}

impl Instr {
    /// The register this instruction defines, if any.
    #[must_use]
    pub fn def(&self) -> Option<VReg> {
        match self {
            Instr::Const { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Mov { dst, .. }
            | Instr::LoadLocal { dst, .. }
            | Instr::LoadGlobal { dst, .. }
            | Instr::LoadElem { dst, .. }
            | Instr::Input { dst } => Some(*dst),
            Instr::Call { dst, .. } => *dst,
            Instr::StoreLocal { .. }
            | Instr::StoreGlobal { .. }
            | Instr::StoreElem { .. }
            | Instr::Output { .. } => None,
        }
    }

    /// Appends the registers this instruction reads to `out`.
    pub fn uses_into(&self, out: &mut Vec<VReg>) {
        match self {
            Instr::Const { .. } | Instr::Input { .. } => {}
            Instr::Bin { lhs, rhs, .. } => {
                out.push(*lhs);
                out.push(*rhs);
            }
            Instr::Un { src, .. }
            | Instr::Mov { src, .. }
            | Instr::StoreLocal { src, .. }
            | Instr::StoreGlobal { src, .. }
            | Instr::Output { src } => out.push(*src),
            Instr::LoadLocal { .. } | Instr::LoadGlobal { .. } => {}
            Instr::LoadElem { index, .. } => out.push(*index),
            Instr::StoreElem { index, src, .. } => {
                out.push(*index);
                out.push(*src);
            }
            Instr::Call { args, .. } => out.extend_from_slice(args),
        }
    }

    /// The registers this instruction reads.
    #[must_use]
    pub fn uses(&self) -> Vec<VReg> {
        let mut v = Vec::new();
        self.uses_into(&mut v);
        v
    }

    /// Returns `true` if deleting this instruction can change observable
    /// behaviour even when its result is unused.
    #[must_use]
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            Instr::StoreLocal { .. }
                | Instr::StoreGlobal { .. }
                | Instr::StoreElem { .. }
                | Instr::Call { .. }
                | Instr::Input { .. }
                | Instr::Output { .. }
        )
    }
}

/// A basic-block terminator.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(Block),
    /// Two-way branch: to `then_bb` if `cond` is non-zero, else
    /// `else_bb`.
    Branch {
        /// Condition register (integer).
        cond: VReg,
        /// Non-zero target.
        then_bb: Block,
        /// Zero target.
        else_bb: Block,
    },
    /// Return from the routine.
    Return(Option<VReg>),
}

impl Terminator {
    /// Successor blocks, in branch order.
    #[must_use]
    pub fn successors(&self) -> Vec<Block> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return(_) => vec![],
        }
    }

    /// The register the terminator reads, if any.
    #[must_use]
    pub fn use_reg(&self) -> Option<VReg> {
        match self {
            Terminator::Branch { cond, .. } => Some(*cond),
            Terminator::Return(r) => *r,
            Terminator::Jump(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defs_and_uses_are_consistent() {
        let i = Instr::Bin {
            dst: VReg(3),
            op: BinOp::Add,
            lhs: VReg(1),
            rhs: VReg(2),
        };
        assert_eq!(i.def(), Some(VReg(3)));
        assert_eq!(i.uses(), vec![VReg(1), VReg(2)]);
        assert!(!i.has_side_effects());
    }

    #[test]
    fn call_without_dst_has_no_def() {
        let i = Instr::Call {
            dst: None,
            callee: CalleeRef::Id(RoutineId(0)),
            args: vec![VReg(5)],
            site: CallSiteId(0),
        };
        assert_eq!(i.def(), None);
        assert_eq!(i.uses(), vec![VReg(5)]);
        assert!(i.has_side_effects());
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(Block(4)).successors(), vec![Block(4)]);
        assert!(Terminator::Return(None).successors().is_empty());
        let b = Terminator::Branch {
            cond: VReg(0),
            then_bb: Block(1),
            else_bb: Block(2),
        };
        assert_eq!(b.successors(), vec![Block(1), Block(2)]);
        assert_eq!(b.use_reg(), Some(VReg(0)));
    }

    #[test]
    fn op_classifications() {
        assert!(BinOp::FAdd.is_float());
        assert!(!BinOp::Add.is_float());
        assert!(BinOp::Lt.is_compare());
        assert!(BinOp::Add.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
    }

    #[test]
    #[should_panic(expected = "unresolved")]
    fn unresolved_ref_panics_on_id() {
        let _ = GlobalRef::Name(Sym(0)).id();
    }
}
