//! Structural validation of routine bodies.
//!
//! Every optimizer phase can be followed by validation in debug builds,
//! which is the first line of defense when isolating optimizer bugs
//! (§6.3): a transformation that breaks structure is caught at the
//! phase boundary instead of miscompiling silently.

use crate::ids::RoutineId;
use crate::instr::{CalleeRef, GlobalRef, Instr, MemBase, Terminator};
use crate::program::Program;
use crate::routine::RoutineBody;
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A structural defect found by validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// The routine in which the defect was found (as passed to
    /// [`validate_body`]).
    pub routine: RoutineId,
    /// Description of the defect.
    pub what: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IR in {}: {}", self.routine, self.what)
    }
}

impl Error for ValidateError {}

fn err(routine: RoutineId, what: impl Into<String>) -> ValidateError {
    ValidateError {
        routine,
        what: what.into(),
    }
}

/// Validates one routine body against `program`.
///
/// Checks: block/register/local/global/callee indices are in range,
/// terminator targets exist, call arities match callee signatures, call
/// sites are unique, scalar/array access shapes match, and the entry
/// block exists.
///
/// # Errors
///
/// Returns the first defect found.
pub fn validate_body(
    rid: RoutineId,
    body: &RoutineBody,
    program: &Program,
) -> Result<(), ValidateError> {
    if body.blocks.is_empty() {
        return Err(err(rid, "routine has no blocks"));
    }
    let n_blocks = body.blocks.len();
    let n_vregs = body.n_vregs;
    let n_locals = body.locals.len();
    let mut seen_sites = HashSet::new();

    let check_vreg = |r: crate::VReg, what: &str| -> Result<(), ValidateError> {
        if r.0 >= n_vregs {
            Err(err(
                rid,
                format!("{what} register {r} out of range ({n_vregs} vregs)"),
            ))
        } else {
            Ok(())
        }
    };
    let check_local = |l: crate::Local, want_array: bool| -> Result<(), ValidateError> {
        let decl = body
            .locals
            .get(l.index())
            .ok_or_else(|| err(rid, format!("local {l} out of range ({n_locals} locals)")))?;
        if decl.ty.is_array() != want_array {
            return Err(err(rid, format!("local {l} accessed with wrong shape")));
        }
        Ok(())
    };
    let check_global = |g: GlobalRef, want_array: bool| -> Result<(), ValidateError> {
        match g {
            GlobalRef::Name(_) => Ok(()), // pre-link form: shapes checked at link
            GlobalRef::Id(id) => {
                if id.index() >= program.globals().len() {
                    return Err(err(rid, format!("global {id} out of range")));
                }
                if program.global(id).ty.is_array() != want_array {
                    return Err(err(rid, format!("global {id} accessed with wrong shape")));
                }
                Ok(())
            }
        }
    };

    for (bid, block) in body.iter_blocks() {
        for instr in &block.instrs {
            if let Some(d) = instr.def() {
                check_vreg(d, "destination")?;
            }
            for u in instr.uses() {
                check_vreg(u, "source")?;
            }
            match instr {
                Instr::LoadLocal { local, .. } | Instr::StoreLocal { local, .. } => {
                    check_local(*local, false)?;
                }
                Instr::LoadGlobal { global, .. } | Instr::StoreGlobal { global, .. } => {
                    check_global(*global, false)?;
                }
                Instr::LoadElem { base, .. } | Instr::StoreElem { base, .. } => match base {
                    MemBase::Local(l) => check_local(*l, true)?,
                    MemBase::Global(g) => check_global(*g, true)?,
                },
                Instr::Call {
                    callee,
                    args,
                    dst,
                    site,
                } => {
                    if !seen_sites.insert(*site) {
                        return Err(err(rid, format!("duplicate call site {site}")));
                    }
                    if site.0 >= body.next_site {
                        return Err(err(rid, format!("call site {site} beyond next_site")));
                    }
                    if let CalleeRef::Id(target) = callee {
                        if target.index() >= program.routines().len() {
                            return Err(err(rid, format!("callee {target} out of range")));
                        }
                        let sig = &program.routine(*target).sig;
                        if sig.arity() != args.len() {
                            return Err(err(
                                rid,
                                format!(
                                    "call to {target} passes {} args, expected {}",
                                    args.len(),
                                    sig.arity()
                                ),
                            ));
                        }
                        if dst.is_some() && sig.ret.is_none() {
                            return Err(err(rid, format!("call to {target} uses void result")));
                        }
                    }
                }
                _ => {}
            }
        }
        match &block.term {
            Terminator::Jump(t) => {
                if t.index() >= n_blocks {
                    return Err(err(rid, format!("jump target {t} out of range in {bid}")));
                }
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                check_vreg(*cond, "branch condition")?;
                for t in [then_bb, else_bb] {
                    if t.index() >= n_blocks {
                        return Err(err(rid, format!("branch target {t} out of range in {bid}")));
                    }
                }
            }
            Terminator::Return(Some(r)) => check_vreg(*r, "return value")?,
            Terminator::Return(None) => {}
        }
    }
    Ok(())
}

/// Validates every body in a linked unit.
///
/// # Errors
///
/// Returns the first defect found across all routines.
pub fn validate_unit(program: &Program, bodies: &[RoutineBody]) -> Result<(), ValidateError> {
    for (i, body) in bodies.iter().enumerate() {
        validate_body(RoutineId::from_index(i), body, program)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IlObjectBuilder;
    use crate::ids::{Block, VReg};
    use crate::link::link_objects;
    use crate::types::Signature;

    fn linked_simple() -> (Program, Vec<RoutineBody>) {
        let mut b = IlObjectBuilder::new("m");
        let mut f = b.routine("main", Signature::default());
        let c = f.const_i64(1);
        f.output(c);
        f.ret(None);
        f.finish();
        let unit = link_objects(vec![b.finish()]).unwrap();
        (unit.program, unit.bodies)
    }

    #[test]
    fn valid_body_passes() {
        let (program, bodies) = linked_simple();
        assert!(validate_unit(&program, &bodies).is_ok());
    }

    #[test]
    fn out_of_range_vreg_is_caught() {
        let (program, mut bodies) = linked_simple();
        bodies[0].blocks[0]
            .instrs
            .push(Instr::Output { src: VReg(99) });
        let e = validate_unit(&program, &bodies).unwrap_err();
        assert!(e.what.contains("out of range"));
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn bad_branch_target_is_caught() {
        let (program, mut bodies) = linked_simple();
        bodies[0].blocks[0].term = Terminator::Jump(Block(44));
        assert!(validate_unit(&program, &bodies).is_err());
    }

    #[test]
    fn empty_routine_is_caught() {
        let (program, mut bodies) = linked_simple();
        bodies[0].blocks.clear();
        assert!(validate_unit(&program, &bodies).is_err());
    }

    #[test]
    fn duplicate_call_sites_are_caught() {
        let mut b = IlObjectBuilder::new("m");
        let mut f = b.routine("main", Signature::default());
        f.call_void("main", vec![]);
        f.call_void("main", vec![]);
        f.ret(None);
        f.finish();
        let unit = link_objects(vec![b.finish()]).unwrap();
        let (program, mut bodies) = (unit.program, unit.bodies);
        // Forge a duplicate site id.
        let cloned_site = match &bodies[0].blocks[0].instrs[0] {
            Instr::Call { site, .. } => *site,
            _ => unreachable!(),
        };
        if let Instr::Call { site, .. } = &mut bodies[0].blocks[0].instrs[1] {
            *site = cloned_site;
        }
        let e = validate_unit(&program, &bodies).unwrap_err();
        assert!(e.what.contains("duplicate call site"));
    }
}
