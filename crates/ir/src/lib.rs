#![warn(missing_docs)]
//! The common intermediate language (IL) of the CMO framework.
//!
//! The HP-UX compiler of *Scalable Cross-Module Optimization* (PLDI
//! 1998) pipelines every component — frontends, the high-level optimizer
//! (HLO), the code generator and low-level optimizer (LLO) — through one
//! intermediate language (§3, Figure 2). Frontends dump IL into object
//! files; in CMO mode the linker routes those IL objects back through
//! the optimizer. Because HLO works at the IL level it freely optimizes
//! mixed-language applications and "does not need to know the source
//! language of a module".
//!
//! This crate defines:
//!
//! * the IL itself: [`Instr`], [`Terminator`], [`RoutineBody`],
//!   organized per module ([`ModuleInfo`]) and per program ([`Program`]);
//! * the split between always-resident *global* metadata
//!   ([`RoutineMeta`], [`GlobalMeta`], the program symbol table) and
//!   *transitory* pool contents ([`RoutineBody`], [`ModuleSymbols`])
//!   that the NAIM loader can compact and offload (§4.1, Figure 3);
//! * IL object files ([`IlObject`]) with name-based external references,
//!   keeping all persistent information in ordinary objects for
//!   compatibility with `make`-style builds (§6.1);
//! * IL-level linking ([`link_objects`]): symbol resolution across
//!   modules, producing a [`Program`];
//! * a structural [`validate`](validate::validate_body) pass and a
//!   textual printer for diagnostics.
//!
//! # Example
//!
//! ```
//! use cmo_ir::{IlObjectBuilder, Signature, Ty, link_objects};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut obj = IlObjectBuilder::new("m0");
//! let mut f = obj.routine("main", Signature::new(vec![], Some(Ty::I64)));
//! let c = f.const_i64(42);
//! f.ret(Some(c));
//! f.finish();
//! let object = obj.finish();
//!
//! let linked = link_objects(vec![object])?;
//! assert_eq!(linked.program.routines().len(), 1);
//! # Ok(())
//! # }
//! ```

mod builder;
mod ids;
mod instr;
mod intern;
mod link;
mod module;
mod object;
mod print;
mod program;
mod relocs;
mod routine;
mod types;
pub mod validate;

pub use builder::{IlObjectBuilder, RoutineBuilder};
pub use ids::{Block, CallSiteId, GlobalId, Local, ModuleId, RoutineId, Sym, VReg};
pub use instr::{BinOp, CalleeRef, GlobalRef, Instr, MemBase, Terminator, UnOp};
pub use intern::Interner;
pub use link::{link_objects, LinkError, LinkedUnit};
pub use module::{GlobalInit, GlobalVar, Linkage, ModuleInfo, ModuleSymbols};
pub use object::{IlObject, ObjectDecodeError, RoutineDef, IL_MAGIC};
pub use print::print_routine;
pub use program::{GlobalMeta, Program};
pub use relocs::Transitory;
pub use routine::{BlockData, LocalDecl, RoutineBody, RoutineMeta};
pub use types::{Const, Signature, Ty, VarTy};
