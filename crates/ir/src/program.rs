//! The program: global (always-resident) symbol information.

use crate::ids::{GlobalId, ModuleId, RoutineId, Sym};
use crate::intern::Interner;
use crate::module::{Linkage, ModuleInfo};
use crate::routine::RoutineMeta;
use crate::types::VarTy;
use std::collections::HashMap;

/// Always-resident metadata for one global variable: the program
/// symbol-table entry. The initializer stays in the owning module's
/// transitory [`crate::ModuleSymbols`].
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalMeta {
    /// Variable name (program interner).
    pub name: Sym,
    /// Defining module.
    pub module: ModuleId,
    /// Slot within the defining module's symbol table.
    pub slot: u32,
    /// Variable type.
    pub ty: VarTy,
    /// Visibility.
    pub linkage: Linkage,
}

/// The program-wide symbol information: interner, module table, routine
/// table, and global-variable table.
///
/// These are the *global objects* of Figure 3 — always memory resident;
/// their footprint is what the `global` class of the memory accountant
/// measures. Everything heavier hangs off NAIM pools.
#[derive(Debug, Clone, Default)]
pub struct Program {
    interner: Interner,
    modules: Vec<ModuleInfo>,
    routines: Vec<RoutineMeta>,
    globals: Vec<GlobalMeta>,
    /// Exported routine names to ids (never iterated).
    routine_by_name: HashMap<Sym, RoutineId>,
    /// Exported global names to ids (never iterated).
    global_by_name: HashMap<Sym, GlobalId>,
}

impl Program {
    /// An empty program.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The program string interner.
    #[must_use]
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Exclusive access to the interner.
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Resolves `sym` to its string.
    #[must_use]
    pub fn name(&self, sym: Sym) -> &str {
        self.interner.resolve(sym)
    }

    /// The module table.
    #[must_use]
    pub fn modules(&self) -> &[ModuleInfo] {
        &self.modules
    }

    /// Metadata for `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    #[must_use]
    pub fn module(&self, m: ModuleId) -> &ModuleInfo {
        &self.modules[m.index()]
    }

    /// The routine table.
    #[must_use]
    pub fn routines(&self) -> &[RoutineMeta] {
        &self.routines
    }

    /// Metadata for `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn routine(&self, r: RoutineId) -> &RoutineMeta {
        &self.routines[r.index()]
    }

    /// Exclusive access to routine metadata (used when optimization
    /// changes size estimates).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn routine_mut(&mut self, r: RoutineId) -> &mut RoutineMeta {
        &mut self.routines[r.index()]
    }

    /// The global-variable table.
    #[must_use]
    pub fn globals(&self) -> &[GlobalMeta] {
        &self.globals
    }

    /// Metadata for `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    #[must_use]
    pub fn global(&self, g: GlobalId) -> &GlobalMeta {
        &self.globals[g.index()]
    }

    /// Internal mutable module access for the IL linker.
    pub(crate) fn module_mut_internal(&mut self, m: ModuleId) -> &mut ModuleInfo {
        &mut self.modules[m.index()]
    }

    /// Adds a module, returning its id.
    pub fn add_module(&mut self, info: ModuleInfo) -> ModuleId {
        let id = ModuleId::from_index(self.modules.len());
        self.modules.push(info);
        id
    }

    /// Adds a routine, indexing exported names for lookup.
    pub fn add_routine(&mut self, meta: RoutineMeta) -> RoutineId {
        let id = RoutineId::from_index(self.routines.len());
        if meta.linkage == Linkage::Export {
            self.routine_by_name.insert(meta.name, id);
        }
        self.routines.push(meta);
        id
    }

    /// Adds a global variable, indexing exported names for lookup.
    pub fn add_global(&mut self, meta: GlobalMeta) -> GlobalId {
        let id = GlobalId::from_index(self.globals.len());
        if meta.linkage == Linkage::Export {
            self.global_by_name.insert(meta.name, id);
        }
        self.globals.push(meta);
        id
    }

    /// Looks up an exported routine by name.
    #[must_use]
    pub fn find_routine(&self, name: &str) -> Option<RoutineId> {
        let sym = self.interner.lookup(name)?;
        self.routine_by_name.get(&sym).copied()
    }

    /// Looks up an exported routine by symbol.
    #[must_use]
    pub fn find_routine_sym(&self, sym: Sym) -> Option<RoutineId> {
        self.routine_by_name.get(&sym).copied()
    }

    /// Looks up an exported global by symbol.
    #[must_use]
    pub fn find_global_sym(&self, sym: Sym) -> Option<GlobalId> {
        self.global_by_name.get(&sym).copied()
    }

    /// The program entry routine (`main`), if defined.
    #[must_use]
    pub fn main_routine(&self) -> Option<RoutineId> {
        self.find_routine("main")
    }

    /// Total source lines across all modules (Figure 4/6 x-axis).
    #[must_use]
    pub fn total_source_lines(&self) -> u64 {
        self.modules.iter().map(|m| u64::from(m.source_lines)).sum()
    }

    /// Approximate heap bytes of the always-resident program symbol
    /// information (the `global` accounting class).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.interner.heap_bytes()
            + self.modules.capacity() * std::mem::size_of::<ModuleInfo>()
            + self
                .modules
                .iter()
                .map(|m| m.routines.capacity() * 4)
                .sum::<usize>()
            + self.routines.capacity() * std::mem::size_of::<RoutineMeta>()
            + self
                .routines
                .iter()
                .map(|r| r.sig.params.capacity())
                .sum::<usize>()
            + self.globals.capacity() * std::mem::size_of::<GlobalMeta>()
            + (self.routine_by_name.len() + self.global_by_name.len()) * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Signature;

    #[test]
    fn exported_names_resolve_internal_do_not() {
        let mut p = Program::new();
        let m = p.add_module(ModuleInfo {
            name: Sym(0),
            routines: vec![],
            source_lines: 10,
            language: "mlc",
        });
        let pub_name = p.interner_mut().intern("visible");
        let priv_name = p.interner_mut().intern("hidden");
        let r_pub = p.add_routine(RoutineMeta {
            name: pub_name,
            module: m,
            sig: Signature::default(),
            linkage: Linkage::Export,
            source_lines: 5,
            il_size: 3,
        });
        let _r_priv = p.add_routine(RoutineMeta {
            name: priv_name,
            module: m,
            sig: Signature::default(),
            linkage: Linkage::Internal,
            source_lines: 5,
            il_size: 3,
        });
        assert_eq!(p.find_routine("visible"), Some(r_pub));
        assert_eq!(p.find_routine("hidden"), None);
        assert_eq!(p.total_source_lines(), 10);
    }

    #[test]
    fn main_lookup() {
        let mut p = Program::new();
        assert!(p.main_routine().is_none());
        let m = p.add_module(ModuleInfo {
            name: Sym(0),
            routines: vec![],
            source_lines: 0,
            language: "mlc",
        });
        let main_sym = p.interner_mut().intern("main");
        let r = p.add_routine(RoutineMeta {
            name: main_sym,
            module: m,
            sig: Signature::default(),
            linkage: Linkage::Export,
            source_lines: 1,
            il_size: 1,
        });
        assert_eq!(p.main_routine(), Some(r));
    }
}
