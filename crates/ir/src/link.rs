//! IL-level linking: merging object files into a [`Program`].
//!
//! This is the front half of the paper's linker behaviour (§3): when
//! the linker encounters IL objects it combines them, resolves every
//! name-based cross-module reference against the program symbol table,
//! and hands the result to the optimizer. Module-internal symbols
//! shadow exports, and two modules may define internal symbols with the
//! same name without conflict.

use crate::ids::{GlobalId, ModuleId, RoutineId};
use crate::instr::{CalleeRef, GlobalRef, Instr, MemBase};
use crate::module::{Linkage, ModuleInfo, ModuleSymbols};
use crate::object::IlObject;
use crate::program::{GlobalMeta, Program};
use crate::routine::{RoutineBody, RoutineMeta};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A linking failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// A referenced symbol is defined nowhere.
    Undefined {
        /// Module containing the reference.
        module: String,
        /// The unresolved name.
        name: String,
    },
    /// Two modules export the same name.
    DuplicateExport {
        /// The clashing name.
        name: String,
        /// First exporting module.
        first: String,
        /// Second exporting module.
        second: String,
    },
    /// One module defines the same name twice.
    DuplicateLocal {
        /// The defining module.
        module: String,
        /// The clashing name.
        name: String,
    },
    /// A call passes the wrong number of arguments. The paper notes
    /// mismatched interfaces "only show up with interprocedural
    /// optimization" (§6.3) — our IL link rejects them eagerly.
    ArityMismatch {
        /// Calling module.
        module: String,
        /// Callee name.
        callee: String,
        /// Arity the callee declares.
        expected: usize,
        /// Arity at the call site.
        got: usize,
    },
    /// A call uses the result of a procedure with no return value.
    ReturnMismatch {
        /// Calling module.
        module: String,
        /// Callee name.
        callee: String,
    },
    /// A scalar access targeted an array global or vice versa.
    KindMismatch {
        /// Module containing the access.
        module: String,
        /// The global's name.
        name: String,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Undefined { module, name } => {
                write!(
                    f,
                    "undefined symbol `{name}` referenced from module `{module}`"
                )
            }
            LinkError::DuplicateExport {
                name,
                first,
                second,
            } => write!(
                f,
                "symbol `{name}` exported by both `{first}` and `{second}`"
            ),
            LinkError::DuplicateLocal { module, name } => {
                write!(f, "module `{module}` defines `{name}` more than once")
            }
            LinkError::ArityMismatch {
                module,
                callee,
                expected,
                got,
            } => write!(
                f,
                "call to `{callee}` from `{module}` passes {got} arguments, expected {expected}"
            ),
            LinkError::ReturnMismatch { module, callee } => write!(
                f,
                "call from `{module}` uses the result of `{callee}`, which returns nothing"
            ),
            LinkError::KindMismatch { module, name } => write!(
                f,
                "global `{name}` accessed with the wrong shape (scalar vs array) in `{module}`"
            ),
        }
    }
}

impl Error for LinkError {}

/// The output of IL linking: the program symbol information plus the
/// transitory payloads (routine bodies and module symbol tables) ready
/// to be handed to the NAIM loader.
#[derive(Debug)]
pub struct LinkedUnit {
    /// Program-wide symbol tables (always-resident global objects).
    pub program: Program,
    /// Routine bodies, indexed by [`RoutineId`]; fully resolved.
    pub bodies: Vec<RoutineBody>,
    /// Module symbol tables, indexed by [`ModuleId`]; names re-interned
    /// into the program interner.
    pub symtabs: Vec<ModuleSymbols>,
}

struct ModuleScope {
    routines: HashMap<String, RoutineId>,
    globals: HashMap<String, GlobalId>,
}

/// Links IL objects into a program, resolving all symbolic references.
///
/// # Errors
///
/// Returns a [`LinkError`] for undefined symbols, duplicate
/// definitions, or interface mismatches.
pub fn link_objects(objects: Vec<IlObject>) -> Result<LinkedUnit, LinkError> {
    let mut program = Program::new();
    let mut bodies: Vec<RoutineBody> = Vec::new();
    let mut symtabs: Vec<ModuleSymbols> = Vec::new();
    let mut scopes: Vec<ModuleScope> = Vec::new();
    // Exported name → (defining module name, id), for duplicate checks.
    let mut exported_routines: HashMap<String, (String, RoutineId)> = HashMap::new();
    let mut exported_globals: HashMap<String, (String, GlobalId)> = HashMap::new();

    // Pass 1: register every definition in the program symbol table.
    for obj in &objects {
        let module_sym = program.interner_mut().intern(&obj.module_name);
        let module_id = program.add_module(ModuleInfo {
            name: module_sym,
            routines: Vec::new(),
            source_lines: obj.source_lines,
            language: obj.language,
        });
        let mut scope = ModuleScope {
            routines: HashMap::new(),
            globals: HashMap::new(),
        };

        let mut symtab = ModuleSymbols::new();
        for (slot, g) in obj.symbols.globals.iter().enumerate() {
            let gname = obj.strings.resolve(g.name).to_owned();
            if scope.globals.contains_key(&gname) || scope.routines.contains_key(&gname) {
                return Err(LinkError::DuplicateLocal {
                    module: obj.module_name.clone(),
                    name: gname,
                });
            }
            let prog_sym = program.interner_mut().intern(&gname);
            if g.linkage == Linkage::Export {
                if let Some((first, _)) = exported_globals.get(&gname) {
                    return Err(LinkError::DuplicateExport {
                        name: gname,
                        first: first.clone(),
                        second: obj.module_name.clone(),
                    });
                }
            }
            let gid = program.add_global(GlobalMeta {
                name: prog_sym,
                module: module_id,
                slot: u32::try_from(slot).expect("global slot fits u32"),
                ty: g.ty,
                linkage: g.linkage,
            });
            if g.linkage == Linkage::Export {
                exported_globals.insert(gname.clone(), (obj.module_name.clone(), gid));
            }
            scope.globals.insert(gname, gid);
            let mut resolved = g.clone();
            resolved.name = prog_sym;
            symtab.globals.push(resolved);
        }
        symtabs.push(symtab);

        for def in &obj.routines {
            let rname = obj.strings.resolve(def.name).to_owned();
            if scope.routines.contains_key(&rname) || scope.globals.contains_key(&rname) {
                return Err(LinkError::DuplicateLocal {
                    module: obj.module_name.clone(),
                    name: rname,
                });
            }
            let prog_sym = program.interner_mut().intern(&rname);
            if def.linkage == Linkage::Export {
                if let Some((first, _)) = exported_routines.get(&rname) {
                    return Err(LinkError::DuplicateExport {
                        name: rname,
                        first: first.clone(),
                        second: obj.module_name.clone(),
                    });
                }
            }
            let rid = program.add_routine(RoutineMeta {
                name: prog_sym,
                module: module_id,
                sig: def.sig.clone(),
                linkage: def.linkage,
                source_lines: def.source_lines,
                il_size: u32::try_from(def.body.instr_count()).unwrap_or(u32::MAX),
            });
            if def.linkage == Linkage::Export {
                exported_routines.insert(rname.clone(), (obj.module_name.clone(), rid));
            }
            scope.routines.insert(rname, rid);
            bodies.push(def.body.clone());
        }
        scopes.push(scope);
    }

    // Record per-module routine lists.
    for (m, scope) in scopes.iter().enumerate() {
        let mut rids: Vec<RoutineId> = scope.routines.values().copied().collect();
        rids.sort_unstable();
        let module_id = ModuleId::from_index(m);
        for &rid in &rids {
            debug_assert_eq!(program.routine(rid).module, module_id);
        }
        // Safe: modules were added in order.
        let info = &mut program_module_mut(&mut program, module_id);
        info.routines = rids;
    }

    // Pass 2: resolve every reference inside every body.
    let mut body_index = 0usize;
    for (m, obj) in objects.iter().enumerate() {
        let scope = &scopes[m];
        for _def in &obj.routines {
            let body = &mut bodies[body_index];
            body_index += 1;
            resolve_body(
                body,
                obj,
                scope,
                &exported_routines,
                &exported_globals,
                &program,
            )?;
        }
    }

    Ok(LinkedUnit {
        program,
        bodies,
        symtabs,
    })
}

fn program_module_mut(program: &mut Program, m: ModuleId) -> &mut ModuleInfo {
    // Program exposes only immutable module access publicly; linking is
    // the one construction site that patches routine lists in.
    let modules = program.modules().len();
    assert!(m.index() < modules);
    // Re-add through a small internal helper on Program.
    program.module_mut_internal(m)
}

fn resolve_body(
    body: &mut RoutineBody,
    obj: &IlObject,
    scope: &ModuleScope,
    exported_routines: &HashMap<String, (String, RoutineId)>,
    exported_globals: &HashMap<String, (String, GlobalId)>,
    program: &Program,
) -> Result<(), LinkError> {
    let module = obj.module_name.clone();
    let resolve_global = |sym| -> Result<GlobalId, LinkError> {
        let name = obj.strings.resolve(sym);
        scope
            .globals
            .get(name)
            .copied()
            .or_else(|| exported_globals.get(name).map(|&(_, id)| id))
            .ok_or_else(|| LinkError::Undefined {
                module: module.clone(),
                name: name.to_owned(),
            })
    };
    let resolve_callee = |sym| -> Result<RoutineId, LinkError> {
        let name = obj.strings.resolve(sym);
        scope
            .routines
            .get(name)
            .copied()
            .or_else(|| exported_routines.get(name).map(|&(_, id)| id))
            .ok_or_else(|| LinkError::Undefined {
                module: module.clone(),
                name: name.to_owned(),
            })
    };
    let check_shape = |gid: GlobalId, want_array: bool| -> Result<GlobalId, LinkError> {
        let meta = program.global(gid);
        if meta.ty.is_array() == want_array {
            Ok(gid)
        } else {
            Err(LinkError::KindMismatch {
                module: module.clone(),
                name: program.name(meta.name).to_owned(),
            })
        }
    };

    for block in &mut body.blocks {
        for instr in &mut block.instrs {
            match instr {
                Instr::LoadGlobal { global, .. } | Instr::StoreGlobal { global, .. } => {
                    if let GlobalRef::Name(sym) = *global {
                        let gid = check_shape(resolve_global(sym)?, false)?;
                        *global = GlobalRef::Id(gid);
                    }
                }
                Instr::LoadElem { base, .. } | Instr::StoreElem { base, .. } => {
                    if let MemBase::Global(GlobalRef::Name(sym)) = *base {
                        let gid = check_shape(resolve_global(sym)?, true)?;
                        *base = MemBase::Global(GlobalRef::Id(gid));
                    }
                }
                Instr::Call {
                    callee, args, dst, ..
                } => {
                    if let CalleeRef::Name(sym) = *callee {
                        let rid = resolve_callee(sym)?;
                        let meta = program.routine(rid);
                        if meta.sig.arity() != args.len() {
                            return Err(LinkError::ArityMismatch {
                                module: module.clone(),
                                callee: program.name(meta.name).to_owned(),
                                expected: meta.sig.arity(),
                                got: args.len(),
                            });
                        }
                        if dst.is_some() && meta.sig.ret.is_none() {
                            return Err(LinkError::ReturnMismatch {
                                module: module.clone(),
                                callee: program.name(meta.name).to_owned(),
                            });
                        }
                        *callee = CalleeRef::Id(rid);
                    }
                }
                _ => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IlObjectBuilder;
    use crate::module::GlobalInit;
    use crate::types::{Signature, Ty, VarTy};

    fn two_module_program() -> Vec<IlObject> {
        let mut a = IlObjectBuilder::new("a");
        a.global(
            "shared",
            VarTy::scalar(Ty::I64),
            Linkage::Export,
            GlobalInit::Zero,
        );
        let mut f = a.routine("main", Signature::new(vec![], Some(Ty::I64)));
        let x = f.const_i64(5);
        let r = f.call("helper", vec![x]);
        f.store_global("shared", r);
        let v = f.load_global("shared");
        f.ret(Some(v));
        f.finish();
        let obj_a = a.finish();

        let mut b = IlObjectBuilder::new("b");
        let mut g = b.routine("helper", Signature::new(vec![Ty::I64], Some(Ty::I64)));
        let p = g.param(0);
        let x = g.load_local(p);
        let one = g.const_i64(1);
        let r = g.bin(crate::BinOp::Add, x, one);
        g.ret(Some(r));
        g.finish();
        let obj_b = b.finish();
        vec![obj_a, obj_b]
    }

    #[test]
    fn cross_module_references_resolve() {
        let unit = link_objects(two_module_program()).unwrap();
        assert_eq!(unit.program.modules().len(), 2);
        assert_eq!(unit.program.routines().len(), 2);
        let main = unit.program.find_routine("main").unwrap();
        let body = &unit.bodies[main.index()];
        for block in &body.blocks {
            for instr in &block.instrs {
                if let Instr::Call { callee, .. } = instr {
                    assert!(matches!(callee, CalleeRef::Id(_)));
                }
                if let Instr::LoadGlobal { global, .. } = instr {
                    assert!(matches!(global, GlobalRef::Id(_)));
                }
            }
        }
    }

    #[test]
    fn undefined_symbol_is_reported() {
        let mut a = IlObjectBuilder::new("a");
        let mut f = a.routine("main", Signature::default());
        f.call_void("missing", vec![]);
        f.ret(None);
        f.finish();
        let err = link_objects(vec![a.finish()]).unwrap_err();
        assert!(matches!(err, LinkError::Undefined { ref name, .. } if name == "missing"));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn duplicate_export_is_reported() {
        let make = |module: &str| {
            let mut b = IlObjectBuilder::new(module);
            let mut f = b.routine("clash", Signature::default());
            f.ret(None);
            f.finish();
            b.finish()
        };
        let err = link_objects(vec![make("a"), make("b")]).unwrap_err();
        assert!(matches!(err, LinkError::DuplicateExport { ref name, .. } if name == "clash"));
    }

    #[test]
    fn internal_symbols_do_not_clash_across_modules() {
        let make = |module: &str| {
            let mut b = IlObjectBuilder::new(module);
            let mut f = b.internal_routine("local_helper", Signature::default());
            f.ret(None);
            f.finish();
            let mut m = b.routine(&format!("entry_{module}"), Signature::default());
            m.call_void("local_helper", vec![]);
            m.ret(None);
            m.finish();
            b.finish()
        };
        let unit = link_objects(vec![make("a"), make("b")]).unwrap();
        // Each entry resolves to its own module's internal helper.
        let entry_a = unit.program.find_routine("entry_a").unwrap();
        let entry_b = unit.program.find_routine("entry_b").unwrap();
        let callee_of = |rid: RoutineId| -> RoutineId {
            let body = &unit.bodies[rid.index()];
            for block in &body.blocks {
                for instr in &block.instrs {
                    if let Instr::Call { callee, .. } = instr {
                        return callee.id();
                    }
                }
            }
            panic!("no call found");
        };
        let ca = callee_of(entry_a);
        let cb = callee_of(entry_b);
        assert_ne!(ca, cb);
        assert_eq!(unit.program.routine(ca).module.index(), 0);
        assert_eq!(unit.program.routine(cb).module.index(), 1);
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let mut a = IlObjectBuilder::new("a");
        let mut f = a.routine("main", Signature::default());
        let x = f.const_i64(1);
        f.call_void("callee", vec![x]);
        f.ret(None);
        f.finish();
        let mut b = IlObjectBuilder::new("b");
        let g = b.routine("callee", Signature::new(vec![], None));
        g.finish();
        let err = link_objects(vec![a.finish(), b.finish()]).unwrap_err();
        assert!(matches!(
            err,
            LinkError::ArityMismatch {
                expected: 0,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn array_scalar_mismatch_is_reported() {
        let mut a = IlObjectBuilder::new("a");
        a.global(
            "table",
            VarTy::array(Ty::I64, 8),
            Linkage::Export,
            GlobalInit::Zero,
        );
        let mut f = a.routine("main", Signature::default());
        let _ = f.load_global("table"); // scalar access to an array
        f.ret(None);
        f.finish();
        let err = link_objects(vec![a.finish()]).unwrap_err();
        assert!(matches!(err, LinkError::KindMismatch { .. }));
    }
}
