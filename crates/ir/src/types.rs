//! Scalar types, variable types, constants, and routine signatures.

use std::fmt;

/// Scalar value types of the IL.
///
/// The IL is deliberately small — a 64-bit integer and a 64-bit float —
/// because the paper's techniques are insensitive to the richness of the
/// type system; what matters is code volume and call structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Ty {
    /// 64-bit signed integer (also used for booleans: 0 / 1).
    I64,
    /// 64-bit IEEE float.
    F64,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::I64 => f.write_str("i64"),
            Ty::F64 => f.write_str("f64"),
        }
    }
}

/// The type of a variable: a scalar or a fixed-length array of scalars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarTy {
    /// Element scalar type.
    pub scalar: Ty,
    /// `Some(n)` for an `n`-element array, `None` for a plain scalar.
    pub elems: Option<u32>,
}

impl VarTy {
    /// A scalar variable of type `scalar`.
    #[must_use]
    pub const fn scalar(scalar: Ty) -> Self {
        VarTy {
            scalar,
            elems: None,
        }
    }

    /// An array variable of `n` elements of `scalar`.
    #[must_use]
    pub const fn array(scalar: Ty, n: u32) -> Self {
        VarTy {
            scalar,
            elems: Some(n),
        }
    }

    /// Number of scalar slots this variable occupies.
    #[must_use]
    pub fn slots(self) -> u32 {
        self.elems.unwrap_or(1)
    }

    /// Returns `true` for array variables.
    #[must_use]
    pub fn is_array(self) -> bool {
        self.elems.is_some()
    }
}

impl fmt::Display for VarTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.elems {
            Some(n) => write!(f, "{}[{}]", self.scalar, n),
            None => write!(f, "{}", self.scalar),
        }
    }
}

/// A compile-time constant value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Const {
    /// Integer constant.
    I(i64),
    /// Float constant.
    F(f64),
}

impl Const {
    /// The scalar type of this constant.
    #[must_use]
    pub fn ty(self) -> Ty {
        match self {
            Const::I(_) => Ty::I64,
            Const::F(_) => Ty::F64,
        }
    }

    /// Integer payload, if integral.
    #[must_use]
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Const::I(v) => Some(v),
            Const::F(_) => None,
        }
    }

    /// Returns `true` when this constant is the integer zero or float
    /// positive zero (used as "false" by conditional branches).
    #[must_use]
    pub fn is_zero(self) -> bool {
        match self {
            Const::I(v) => v == 0,
            Const::F(v) => v == 0.0,
        }
    }

    /// Bit-level equality: float payloads compare by bit pattern so that
    /// optimization decisions are deterministic even for NaNs.
    #[must_use]
    pub fn bits_eq(self, other: Const) -> bool {
        match (self, other) {
            (Const::I(a), Const::I(b)) => a == b,
            (Const::F(a), Const::F(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::I(v) => write!(f, "{v}"),
            Const::F(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<i64> for Const {
    fn from(v: i64) -> Self {
        Const::I(v)
    }
}

impl From<f64> for Const {
    fn from(v: f64) -> Self {
        Const::F(v)
    }
}

/// A routine signature: parameter types and optional return type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Signature {
    /// Parameter scalar types, in order.
    pub params: Vec<Ty>,
    /// Return scalar type; `None` for procedures.
    pub ret: Option<Ty>,
}

impl Signature {
    /// Creates a signature from parts.
    #[must_use]
    pub fn new(params: Vec<Ty>, ret: Option<Ty>) -> Self {
        Signature { params, ret }
    }

    /// Number of parameters.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.params.len()
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{p}")?;
        }
        f.write_str(")")?;
        if let Some(r) = self.ret {
            write!(f, " -> {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_ty_slots() {
        assert_eq!(VarTy::scalar(Ty::I64).slots(), 1);
        assert_eq!(VarTy::array(Ty::F64, 16).slots(), 16);
        assert!(VarTy::array(Ty::I64, 4).is_array());
    }

    #[test]
    fn const_zero_detection() {
        assert!(Const::I(0).is_zero());
        assert!(Const::F(0.0).is_zero());
        assert!(!Const::I(-1).is_zero());
    }

    #[test]
    fn const_bits_eq_distinguishes_nan_payloads() {
        let a = Const::F(f64::NAN);
        let b = Const::F(f64::NAN);
        assert!(a.bits_eq(b));
        assert!(!Const::I(1).bits_eq(Const::F(1.0)));
    }

    #[test]
    fn signature_display() {
        let sig = Signature::new(vec![Ty::I64, Ty::F64], Some(Ty::I64));
        assert_eq!(format!("{sig}"), "(i64, f64) -> i64");
        assert_eq!(format!("{}", Signature::default()), "()");
    }
}
