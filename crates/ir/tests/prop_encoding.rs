//! Property tests: the relocatable encoding (§4.2) is a faithful
//! bijection on arbitrary well-formed IR, and corrupt images never
//! panic.

use cmo_ir::{
    BinOp, Block, BlockData, CallSiteId, Const, GlobalId, GlobalInit, GlobalRef, GlobalVar, Instr,
    Linkage, Local, MemBase, ModuleSymbols, RoutineBody, RoutineId, Sym, Terminator, Transitory,
    Ty, UnOp, VReg, VarTy,
};
use cmo_naim::{Decoder, Encoder, Relocatable};
use proptest::prelude::*;

fn arb_const() -> impl Strategy<Value = Const> {
    prop_oneof![
        any::<i64>().prop_map(Const::I),
        any::<f64>().prop_map(Const::F),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::FAdd),
        Just(BinOp::FSub),
        Just(BinOp::FMul),
        Just(BinOp::FDiv),
        Just(BinOp::FLt),
        Just(BinOp::FEq),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![
        Just(UnOp::Neg),
        Just(UnOp::Not),
        Just(UnOp::FNeg),
        Just(UnOp::I2F),
        Just(UnOp::F2I),
    ]
}

fn arb_global_ref() -> impl Strategy<Value = GlobalRef> {
    prop_oneof![
        (0u32..1000).prop_map(|i| GlobalRef::Name(Sym(i))),
        (0u32..1000).prop_map(|i| GlobalRef::Id(GlobalId(i))),
    ]
}

fn arb_mem_base() -> impl Strategy<Value = MemBase> {
    prop_oneof![
        (0u32..64).prop_map(|i| MemBase::Local(Local(i))),
        arb_global_ref().prop_map(MemBase::Global),
    ]
}

fn vreg() -> impl Strategy<Value = VReg> {
    (0u32..256).prop_map(VReg)
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (vreg(), arb_const()).prop_map(|(dst, value)| Instr::Const { dst, value }),
        (vreg(), arb_binop(), vreg(), vreg()).prop_map(|(dst, op, lhs, rhs)| Instr::Bin {
            dst,
            op,
            lhs,
            rhs
        }),
        (vreg(), arb_unop(), vreg()).prop_map(|(dst, op, src)| Instr::Un { dst, op, src }),
        (vreg(), vreg()).prop_map(|(dst, src)| Instr::Mov { dst, src }),
        (vreg(), 0u32..64).prop_map(|(dst, l)| Instr::LoadLocal {
            dst,
            local: Local(l)
        }),
        (0u32..64, vreg()).prop_map(|(l, src)| Instr::StoreLocal {
            local: Local(l),
            src
        }),
        (vreg(), arb_global_ref()).prop_map(|(dst, global)| Instr::LoadGlobal { dst, global }),
        (arb_global_ref(), vreg()).prop_map(|(global, src)| Instr::StoreGlobal { global, src }),
        (vreg(), arb_mem_base(), vreg()).prop_map(|(dst, base, index)| Instr::LoadElem {
            dst,
            base,
            index
        }),
        (arb_mem_base(), vreg(), vreg()).prop_map(|(base, index, src)| Instr::StoreElem {
            base,
            index,
            src
        }),
        (
            proptest::option::of(vreg()),
            0u32..500,
            proptest::collection::vec(vreg(), 0..6),
            0u32..64
        )
            .prop_map(|(dst, callee, args, site)| Instr::Call {
                dst,
                callee: cmo_ir::CalleeRef::Id(RoutineId(callee)),
                args,
                site: CallSiteId(site),
            }),
        vreg().prop_map(|dst| Instr::Input { dst }),
        vreg().prop_map(|src| Instr::Output { src }),
    ]
}

fn arb_term(n_blocks: u32) -> impl Strategy<Value = Terminator> {
    prop_oneof![
        (0..n_blocks).prop_map(|b| Terminator::Jump(Block(b))),
        (vreg(), 0..n_blocks, 0..n_blocks).prop_map(|(cond, t, e)| Terminator::Branch {
            cond,
            then_bb: Block(t),
            else_bb: Block(e),
        }),
        proptest::option::of(vreg()).prop_map(Terminator::Return),
    ]
}

prop_compose! {
    fn arb_body()(n_blocks in 1u32..8)(
        blocks in proptest::collection::vec(
            (proptest::collection::vec(arb_instr(), 0..12), arb_term(n_blocks)),
            n_blocks as usize..=n_blocks as usize,
        ),
        locals in proptest::collection::vec(
            prop_oneof![
                Just(VarTy::scalar(Ty::I64)),
                Just(VarTy::scalar(Ty::F64)),
                (1u32..32).prop_map(|n| VarTy::array(Ty::I64, n)),
                (1u32..32).prop_map(|n| VarTy::array(Ty::F64, n)),
            ],
            0..8,
        ),
    ) -> RoutineBody {
        let mut body = RoutineBody::new();
        for ty in locals {
            body.new_local(ty, false);
        }
        for (instrs, term) in blocks {
            body.blocks.push(BlockData { instrs, term });
        }
        body.n_vregs = 256;
        body.next_site = 64;
        body
    }
}

fn arb_symtab() -> impl Strategy<Value = ModuleSymbols> {
    proptest::collection::vec(
        (
            0u32..1000,
            prop_oneof![
                Just(GlobalInit::Zero),
                arb_const().prop_map(GlobalInit::Scalar),
                proptest::collection::vec(any::<i64>(), 0..20).prop_map(GlobalInit::IntArray),
                proptest::collection::vec(any::<f64>(), 0..20).prop_map(GlobalInit::FloatArray),
            ],
            any::<bool>(),
        ),
        0..10,
    )
    .prop_map(|entries| ModuleSymbols {
        globals: entries
            .into_iter()
            .map(|(name, init, exported)| {
                let ty = match &init {
                    GlobalInit::IntArray(v) => VarTy::array(Ty::I64, v.len().max(1) as u32),
                    GlobalInit::FloatArray(v) => VarTy::array(Ty::F64, v.len().max(1) as u32),
                    GlobalInit::Scalar(Const::F(_)) => VarTy::scalar(Ty::F64),
                    _ => VarTy::scalar(Ty::I64),
                };
                GlobalVar {
                    name: Sym(name),
                    ty,
                    linkage: if exported {
                        Linkage::Export
                    } else {
                        Linkage::Internal
                    },
                    init,
                }
            })
            .collect(),
    })
}

fn bits_eq(a: &Transitory, b: &Transitory) -> bool {
    // Float payloads must survive bit-exactly (NaN included), which
    // `PartialEq` on f64 does not capture; compare via re-encoding.
    let mut ea = Encoder::new();
    let mut eb = Encoder::new();
    a.compact(&mut ea);
    b.compact(&mut eb);
    ea.into_bytes() == eb.into_bytes()
}

proptest! {
    #[test]
    fn routine_bodies_round_trip(body in arb_body()) {
        let t = Transitory::Routine(body);
        let mut enc = Encoder::new();
        t.compact(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = Transitory::uncompact(&mut dec).expect("decode");
        prop_assert!(dec.is_at_end(), "trailing bytes after decode");
        prop_assert!(bits_eq(&t, &back));
    }

    #[test]
    fn symbol_tables_round_trip(st in arb_symtab()) {
        let t = Transitory::SymTab(st);
        let mut enc = Encoder::new();
        t.compact(&mut enc);
        let bytes = enc.into_bytes();
        let back = Transitory::uncompact(&mut Decoder::new(&bytes)).expect("decode");
        prop_assert!(bits_eq(&t, &back));
    }

    #[test]
    fn truncated_images_error_instead_of_panicking(
        body in arb_body(),
        cut in 0usize..200,
    ) {
        let t = Transitory::Routine(body);
        let mut enc = Encoder::new();
        t.compact(&mut enc);
        let mut bytes = enc.into_bytes();
        if cut < bytes.len() {
            bytes.truncate(cut);
            // Must return Err or Ok (if the prefix happens to decode),
            // never panic.
            let _ = Transitory::uncompact(&mut Decoder::new(&bytes));
        }
    }

    #[test]
    fn random_bytes_never_panic_the_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Transitory::uncompact(&mut Decoder::new(&bytes));
    }

    #[test]
    fn expanded_form_never_beats_compact_form(body in arb_body()) {
        // The §4.2.2 claim: compaction shrinks. Guarantee at least
        // no-growth for arbitrary IR (typical IR shrinks 2-4x).
        let t = Transitory::Routine(body);
        let mut enc = Encoder::new();
        t.compact(&mut enc);
        prop_assert!(enc.len() <= t.expanded_bytes().max(64));
    }
}
