//! End-to-end tests of the `cmocc` command-line driver: the developer
//! workflow of §3/§6.1 run through a real process — separate
//! compilation to object files, an instrumented run producing a
//! profile database on disk, and a profile-guided CMO link.

use std::path::PathBuf;
use std::process::Command;

fn cmocc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cmocc"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cmocc-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const LIB: &str = "fn triple(x: int) -> int { return x * 3; }\n";
const APP: &str = r#"
extern fn triple(x: int) -> int;
fn main() -> int {
    var n: int = input();
    var acc: int = 0;
    var i: int = 0;
    while (i < n) { acc = acc + triple(i); i = i + 1; }
    output(acc);
    return acc % 1000;
}
"#;

#[test]
fn full_workflow_through_the_cli() {
    let dir = workdir("flow");
    let lib = dir.join("lib.mlc");
    let app = dir.join("app.mlc");
    std::fs::write(&lib, LIB).unwrap();
    std::fs::write(&app, APP).unwrap();

    // 1. Separate compilation: -c writes .cmo object files.
    let out = cmocc().args(["-c"]).arg(&lib).arg(&app).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("lib.cmo").exists());
    assert!(dir.join("app.cmo").exists());

    // 2. Instrumented build + training run straight from the objects,
    //    writing the profile database.
    let db = dir.join("train.db");
    let out = cmocc()
        .args(["+I", "--run", "500", "--profile-out"])
        .arg(&db)
        .arg(dir.join("lib.cmo"))
        .arg(dir.join("app.cmo"))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(db.exists());

    // 3. +O4 +P link with report; run and compare against +O2.
    let run = |extra: &[&str]| -> String {
        let mut cmd = cmocc();
        cmd.args(extra);
        cmd.arg(dir.join("lib.cmo")).arg(dir.join("app.cmo"));
        let out = cmd.output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let o2 = run(&["+O2", "--run", "500"]);
    let o4 = run(&[
        "+O4",
        "+P",
        db.to_str().unwrap(),
        "--run",
        "500",
        "--report",
    ]);
    let checksum = |s: &str| {
        s.lines()
            .find(|l| l.contains("checksum"))
            .unwrap()
            .split("checksum ")
            .nth(1)
            .unwrap()
            .to_owned()
    };
    assert_eq!(checksum(&o2), checksum(&o4), "CMO changed behaviour");
    assert!(o4.contains("inlines"), "report missing: {o4}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn emit_asm_lists_routines() {
    let dir = workdir("asm");
    let app = dir.join("solo.mlc");
    std::fs::write(&app, "fn main() -> int { return 42; }\n").unwrap();
    let out = cmocc().args(["--emit-asm"]).arg(&app).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("main:"));
    assert!(text.contains("ret"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn diagnostics_and_exit_codes() {
    // Unknown option.
    let out = cmocc().args(["--bogus", "x.mlc"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    // Frontend error carries the file and position.
    let dir = workdir("err");
    let bad = dir.join("bad.mlc");
    std::fs::write(&bad, "fn main( { }").unwrap();
    let out = cmocc().arg(&bad).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("bad.mlc"), "{err}");

    // Missing main.
    let lonely = dir.join("lonely.mlc");
    std::fs::write(&lonely, "fn f() -> int { return 1; }").unwrap();
    let out = cmocc().arg(&lonely).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn report_json_and_trace_are_versioned_and_reproducible() {
    let dir = workdir("telemetry");
    let lib = dir.join("lib.mlc");
    let app = dir.join("app.mlc");
    std::fs::write(&lib, LIB).unwrap();
    std::fs::write(&app, APP).unwrap();

    // Train a profile so the +O4 +P pipeline (selectivity, hot-site
    // inlining) actually runs.
    let db = dir.join("train.db");
    let out = cmocc()
        .args(["+I", "--run", "200", "--profile-out"])
        .arg(&db)
        .arg(&lib)
        .arg(&app)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let emit = |tag: &str| -> (String, String) {
        let report = dir.join(format!("report-{tag}.json"));
        let trace = dir.join(format!("trace-{tag}.jsonl"));
        let out = cmocc()
            .args(["+O4", "+P"])
            .arg(&db)
            .args(["--budget", "1", "--report-json"])
            .arg(&report)
            .arg("--trace")
            .arg(&trace)
            .arg(&lib)
            .arg(&app)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            std::fs::read_to_string(&report).unwrap(),
            std::fs::read_to_string(&trace).unwrap(),
        )
    };
    let (report_a, trace_a) = emit("a");
    let (report_b, trace_b) = emit("b");
    assert_eq!(
        report_a, report_b,
        "report must be byte-identical across runs"
    );
    assert_eq!(trace_a, trace_b, "trace must be byte-identical across runs");
    assert!(
        report_a.contains("\"schema\": \"cmo.report.v1\""),
        "{report_a}"
    );
    for section in ["\"selection\"", "\"hlo\"", "\"loader\"", "\"phases\""] {
        assert!(report_a.contains(section), "missing {section}: {report_a}");
    }
    assert!(
        trace_a.starts_with("{\"schema\":\"cmo.trace.v1\"}\n"),
        "{trace_a}"
    );
    // The CLI's extra "parse" phase wraps source loading.
    assert!(report_a.contains("\"name\": \"parse\""), "{report_a}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bad_flag_values_are_diagnosed_not_panicked() {
    // Every case must exit 2 with a diagnostic on stderr — no panic
    // backtraces, no silently ignored options.
    let cases: &[&[&str]] = &[
        // --sel must be a finite percentage in [0, 100].
        &["--sel", "NaN", "x.mlc"],
        &["--sel", "inf", "x.mlc"],
        &["--sel", "-3", "x.mlc"],
        &["--sel", "250", "x.mlc"],
        // --budget in MiB must not overflow the byte count (this used
        // to hit a `mib << 20` debug-mode panic).
        &["--budget", "99999999999999999999", "x.mlc"],
        &["--budget", "18446744073709551615", "x.mlc"],
        // Worker and shard counts must be positive.
        &["-j", "0", "x.mlc"],
        &["--jobs", "nope", "x.mlc"],
        &["--shards", "0", "x.mlc"],
        // -c builds no image, so image-consuming flags conflict.
        &["-c", "--run", "1", "x.mlc"],
        &["-c", "--emit-asm", "x.mlc"],
        &["-c", "--report", "x.mlc"],
        &["-c", "--report-json", "r.json", "x.mlc"],
        &["-c", "--trace", "t.jsonl", "x.mlc"],
        // A profile database can only come out of a run.
        &["--profile-out", "p.db", "x.mlc"],
        // Flags that expect a value must say so when it is missing.
        &["--sel"],
        &["--budget"],
        &["-j"],
    ];
    for args in cases {
        let out = cmocc().args(*args).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "expected usage error for {args:?}, got {:?}\nstderr: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(!err.is_empty(), "no diagnostic for {args:?}");
        assert!(
            !err.contains("panicked"),
            "panic instead of diagnostic for {args:?}: {err}"
        );
    }

    // A missing input file is a runtime failure (exit 1), not a crash.
    let out = cmocc().arg("no-such-file.mlc").output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no-such-file.mlc"), "{err}");
}

#[test]
fn jobs_flag_reproduces_report_and_trace_byte_for_byte() {
    let dir = workdir("jobs");
    let lib = dir.join("lib.mlc");
    let app = dir.join("app.mlc");
    std::fs::write(&lib, LIB).unwrap();
    std::fs::write(&app, APP).unwrap();

    let emit = |tag: &str, jflag: &str| -> (String, String) {
        let report = dir.join(format!("report-{tag}.json"));
        let trace = dir.join(format!("trace-{tag}.jsonl"));
        let out = cmocc()
            .args([
                "+O4",
                jflag,
                "--shards",
                "2",
                "--budget",
                "1",
                "--report-json",
            ])
            .arg(&report)
            .arg("--trace")
            .arg(&trace)
            .arg(&lib)
            .arg(&app)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            std::fs::read_to_string(&report).unwrap(),
            std::fs::read_to_string(&trace).unwrap(),
        )
    };
    let (report_1, trace_1) = emit("j1", "-j1");
    let (report_4, trace_4) = emit("j4", "-j4");
    assert_eq!(report_1, report_4, "-j4 report differs from -j1");
    assert_eq!(trace_1, trace_4, "-j4 trace differs from -j1");
    assert!(trace_1.contains("\"worker\":"), "{trace_1}");

    // The spaced `--jobs N` spelling is accepted too.
    let out = cmocc()
        .args(["--jobs", "4", "--run", "10"])
        .arg(&lib)
        .arg(&app)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The memory-mapped read path is a pure transport optimization: cold
/// and warm cached builds produce byte-identical reports with mmap on
/// and off, at -j1 and -j4 (the cost model charges fetches by length,
/// never by how the bytes arrived).
#[test]
fn mmap_toggle_reproduces_reports_byte_for_byte() {
    let dir = workdir("mmap");
    let lib = dir.join("lib.mlc");
    let app = dir.join("app.mlc");
    std::fs::write(&lib, LIB).unwrap();
    std::fs::write(&app, APP).unwrap();

    let emit = |tag: &str, cache: &str, jflag: &str, extra: &[&str], envs: &[(&str, &str)]| {
        let report = dir.join(format!("report-{tag}.json"));
        let cache = dir.join(format!("cache-{cache}"));
        let mut cmd = cmocc();
        cmd.args(["+O4", jflag, "--budget", "0", "--cache-dir"])
            .arg(&cache)
            .args(extra)
            .arg("--report-json")
            .arg(&report)
            .arg(&lib)
            .arg(&app);
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let out = cmd.output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(&report).unwrap()
    };

    let on_cold = emit("on-cold", "on", "-j1", &[], &[]);
    let on_warm = emit("on-warm", "on", "-j4", &[], &[]);
    let off_cold = emit("off-cold", "off", "-j1", &["--no-mmap"], &[]);
    let off_warm = emit("off-warm", "off", "-j4", &["--no-mmap"], &[]);
    assert_eq!(on_cold, on_warm, "warm report differs from cold (mmap on)");
    assert_eq!(
        off_cold, off_warm,
        "warm report differs from cold (mmap off)"
    );
    assert_eq!(on_cold, off_cold, "--no-mmap changed the report");

    // `CMO_NO_MMAP=1` forces the decline-to-map arm that non-unix
    // builds always take (`DiskStorage::map` answers `Ok(None)` before
    // reaching the platform mmap), so unix CI exercises that path
    // without a cross build. Byte-identity must hold there too, with
    // mmap nominally *on*.
    let declined_cold = emit(
        "declined-cold",
        "declined",
        "-j1",
        &[],
        &[("CMO_NO_MMAP", "1")],
    );
    let declined_warm = emit(
        "declined-warm",
        "declined",
        "-j4",
        &[],
        &[("CMO_NO_MMAP", "1")],
    );
    assert_eq!(
        declined_cold, declined_warm,
        "warm report differs from cold (map declined)"
    );
    assert_eq!(on_cold, declined_cold, "CMO_NO_MMAP=1 changed the report");

    // --no-mmap is a cache-transport switch; alone it is an error.
    let out = cmocc().arg("--no-mmap").arg(&app).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compile_only_messages_follow_input_order_at_any_jobs() {
    let dir = workdir("corder");
    let mut paths = Vec::new();
    for i in 0..6 {
        let p = dir.join(format!("m{i}.mlc"));
        let body = if i == 0 {
            "fn main() -> int { return 0; }\n".to_owned()
        } else {
            format!("fn f{i}(x: int) -> int {{ return x + {i}; }}\n")
        };
        std::fs::write(&p, body).unwrap();
        paths.push(p);
    }
    let run = |jobs: &str| -> String {
        let out = cmocc()
            .args(["-c", "-j", jobs])
            .args(&paths)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    assert_eq!(run("1"), run("4"), "-c progress output depends on -j");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn builds_under_memory_pressure() {
    let dir = workdir("pressure");
    let mut src = String::from("fn main() -> int {\n var acc: int = 0;\n");
    for i in 0..300 {
        src.push_str(&format!(" acc = acc + {i};\n"));
    }
    src.push_str(" return acc; }\n");
    let f = dir.join("big.mlc");
    std::fs::write(&f, src).unwrap();
    let out = cmocc()
        .args(["+O4", "--budget", "1"])
        .arg(&f)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
