//! Remote-tier fault-injection tests: a cached build running through
//! the two-tier stack must survive a wire fault at *every* remote
//! exchange — dropped connections, stalls, garbage replies, mid-stream
//! disconnects, and a daemon that dies and never comes back. The local
//! tier owns correctness: whatever the remote does, the image is
//! byte-identical, the local cache is never poisoned, and identical
//! fault schedules replay identical traces and reports at every `-j`.

use std::sync::Arc;

use cmo::{
    BuildCache, BuildOptions, Compiler, FlakyTransport, LoopbackTransport, MemStorage, OptLevel,
    RemoteStorage, RemoteTransport, RetryPolicy, Storage, Telemetry, TieredStorage, WireFault,
};

const UTIL: &str = r#"
global factor: int = 3;
fn scale(x: int) -> int { return x * factor; }
"#;

const APP: &str = r#"
extern fn scale(x: int) -> int;
fn main() -> int {
    var i: int = 0;
    var acc: int = 0;
    while (i < 50) { acc = acc + scale(i); i = i + 1; }
    return acc % 1000;
}
"#;

/// Worker counts under test: 1 and 4, plus whatever CI asks for
/// through `CMO_TEST_JOBS`.
fn jobs_levels() -> Vec<usize> {
    let mut levels = vec![1, 4];
    if let Some(n) = std::env::var("CMO_TEST_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n >= 1 && !levels.contains(&n) {
            levels.push(n);
        }
    }
    levels
}

fn compiler() -> Compiler {
    let mut cc = Compiler::new();
    cc.add_source("util", UTIL).unwrap();
    cc.add_source("app", APP).unwrap();
    cc
}

fn image_string(out: &cmo::BuildOutput) -> String {
    out.image.code.iter().map(|w| format!("{w:?};")).collect()
}

/// Strips one `"name": {` object (at the given line prefix) from a
/// report JSON. The cache and remote counters legitimately depend on
/// the fault schedule; everything else must be byte-identical.
fn mask_obj(json: &str, open_prefix: &str, close_prefix: &str) -> String {
    let mut out = String::new();
    let mut skipping = false;
    for line in json.lines() {
        if line.starts_with(open_prefix) {
            skipping = true;
            continue;
        }
        if skipping {
            if line.starts_with(close_prefix) {
                skipping = false;
            }
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    assert!(out.len() < json.len(), "{open_prefix} not found: {json}");
    out
}

fn mask_variable_sections(json: &str) -> String {
    let masked = mask_obj(json, "  \"cache\": {", "  }");
    mask_obj(&masked, "    \"remote\": {", "    }")
}

/// One `+O4` build of `util` + `app` through a two-tier cache: `local`
/// in front, a [`RemoteStorage`] over `transport` behind it. Returns
/// (image code, report JSON, trace).
fn tiered_build(
    local: Arc<dyn Storage>,
    transport: Arc<dyn RemoteTransport>,
    jobs: usize,
) -> (String, String, String) {
    let tel = Telemetry::enabled();
    let remote = RemoteStorage::new(transport, RetryPolicy::default()).with_telemetry(tel.clone());
    let tiered: Arc<dyn Storage> = Arc::new(TieredStorage::new(local, Arc::new(remote)));
    let mut bcache = BuildCache::open_on(tiered, &tel).expect("open tiered cache");
    let mut opts = BuildOptions::new(OptLevel::O4).with_jobs(jobs);
    opts.telemetry = tel.clone();
    let out = compiler()
        .build_cached(&opts, &mut bcache)
        .expect("a remote fault must never fail the build");
    (
        image_string(&out),
        out.compile_report().to_json(),
        tel.render_trace(),
    )
}

fn fresh_local() -> Arc<dyn Storage> {
    Arc::new(MemStorage::new()) as Arc<dyn Storage>
}

fn loopback_over(daemon: &Arc<MemStorage>) -> Arc<dyn RemoteTransport> {
    Arc::new(LoopbackTransport::over(
        Arc::new(daemon.snapshot()) as Arc<dyn Storage>
    ))
}

/// A healthy daemon store warmed by one cold build, plus that build's
/// reference output.
fn warmed_daemon() -> (Arc<MemStorage>, String, String) {
    let daemon = Arc::new(MemStorage::new());
    let transport = Arc::new(LoopbackTransport::over(
        Arc::clone(&daemon) as Arc<dyn Storage>
    ));
    let (code, report, _) = tiered_build(fresh_local(), transport, 1);
    (daemon, code, report)
}

/// Remote-warm replay: a cold build through a healthy tier populates
/// the daemon; a *fresh machine* (empty local tier) against that warm
/// daemon must replay the image byte-for-byte and the report
/// byte-for-byte outside the live cache counters — the replayed report
/// carries the cold build's fault section (remote counters included)
/// verbatim.
#[test]
fn remote_warm_replay_is_byte_identical_to_cold() {
    let (daemon, cold_code, cold_report) = warmed_daemon();
    let cold_masked = mask_obj(&cold_report, "  \"cache\": {", "  }");
    let mut per_jobs = Vec::new();
    for jobs in jobs_levels() {
        let (code, report, trace) = tiered_build(fresh_local(), loopback_over(&daemon), jobs);
        assert_eq!(code, cold_code, "-j{jobs}: remote-warm image diverged");
        assert_eq!(
            mask_obj(&report, "  \"cache\": {", "  }"),
            cold_masked,
            "-j{jobs}: remote-warm report diverged"
        );
        assert!(
            trace.contains(r#""event":"remote","action":"hit""#),
            "-j{jobs}: warm replay never hit the remote tier: {trace}"
        );
        per_jobs.push((jobs, trace));
    }
    for (jobs, trace) in &per_jobs[1..] {
        assert_eq!(&per_jobs[0].1, trace, "trace differs at -j{jobs}");
    }
}

/// The tentpole acceptance sweep: inject every wire-fault kind at every
/// remote exchange of a fresh-machine build against a warm daemon. The
/// build must always succeed with a byte-identical image, the report
/// must match the reference outside the cache/remote counters, and the
/// local tier must come out clean — a follow-up replay on the same
/// local cache with the daemon *gone* still produces the reference
/// image.
#[test]
fn wire_fault_sweep_never_breaks_the_build_or_poisons_the_local_cache() {
    let (daemon, ref_code, ref_report) = warmed_daemon();
    let ref_masked = mask_variable_sections(&ref_report);

    // Probe: count the remote exchanges of the fresh-machine build.
    let probe = Arc::new(FlakyTransport::new(loopback_over(&daemon)));
    tiered_build(
        fresh_local(),
        Arc::clone(&probe) as Arc<dyn RemoteTransport>,
        1,
    );
    let total_ops = probe.ops();
    assert!(
        total_ops > 4,
        "suspiciously few remote exchanges: {total_ops}"
    );

    let faults = [
        WireFault::Drop,
        WireFault::Stall,
        WireFault::Garbage,
        WireFault::Disconnect,
    ];
    for k in 0..total_ops {
        for fault in faults {
            let mut per_jobs = Vec::new();
            for jobs in jobs_levels() {
                let local = fresh_local();
                let flaky =
                    Arc::new(FlakyTransport::new(loopback_over(&daemon)).with_fault(k, fault));
                let (code, report, trace) = tiered_build(
                    Arc::clone(&local),
                    Arc::clone(&flaky) as Arc<dyn RemoteTransport>,
                    jobs,
                );
                assert!(flaky.ops() > k, "{fault:?}@{k} -j{jobs}: fault never fired");
                assert_eq!(code, ref_code, "{fault:?}@{k} -j{jobs}: image diverged");
                assert_eq!(
                    mask_variable_sections(&report),
                    ref_masked,
                    "{fault:?}@{k} -j{jobs}: report diverged"
                );

                // The local tier absorbed whatever the wire did: a
                // local-warm replay with the daemon gone still serves
                // the reference image from an unpoisoned cache.
                let dead = Arc::new(FlakyTransport::new(loopback_over(&daemon)).kill_at(0));
                let (replay_code, _, _) = tiered_build(local, dead, jobs);
                assert_eq!(
                    replay_code, ref_code,
                    "{fault:?}@{k} -j{jobs}: local cache poisoned"
                );
                per_jobs.push((jobs, trace));
            }
            // Satellite: an identical fault schedule yields an
            // identical trace at every worker count.
            for (jobs, trace) in &per_jobs[1..] {
                assert_eq!(
                    &per_jobs[0].1, trace,
                    "{fault:?}@{k}: trace differs at -j{jobs}"
                );
            }
        }
    }
}

/// A daemon that dies at exchange `k` and never recovers: the retry
/// budget drains and the build demotes to local-only — it still
/// succeeds with the reference image at every kill point and every
/// `-j`. A daemon dead from the very first exchange additionally trips
/// the circuit breaker early enough to show in the report, alongside
/// the breaker-open and degraded trace events.
#[test]
fn daemon_death_at_every_exchange_demotes_to_local_only() {
    let (daemon, ref_code, _) = warmed_daemon();

    let probe = Arc::new(FlakyTransport::new(loopback_over(&daemon)));
    tiered_build(
        fresh_local(),
        Arc::clone(&probe) as Arc<dyn RemoteTransport>,
        1,
    );
    let total_ops = probe.ops();

    for k in 0..total_ops {
        let mut per_jobs = Vec::new();
        for jobs in jobs_levels() {
            let flaky = Arc::new(FlakyTransport::new(loopback_over(&daemon)).kill_at(k));
            let (code, report, trace) = tiered_build(
                fresh_local(),
                Arc::clone(&flaky) as Arc<dyn RemoteTransport>,
                jobs,
            );
            assert_eq!(code, ref_code, "kill {k} -j{jobs}: image diverged");
            if k == 0 {
                // Every exchange fails, so by the report snapshot the
                // breaker has tripped and the demotion is on record.
                assert!(
                    report.contains("\"breaker_open\": true"),
                    "kill 0 -j{jobs}: breaker never tripped: {report}"
                );
                assert!(
                    trace.contains(r#""event":"remote","action":"open""#),
                    "kill 0 -j{jobs}: missing breaker-open event: {trace}"
                );
                assert!(
                    trace.contains(r#""event":"degraded","component":"remote""#),
                    "kill 0 -j{jobs}: missing degraded event: {trace}"
                );
            }
            per_jobs.push((jobs, trace));
        }
        for (jobs, trace) in &per_jobs[1..] {
            assert_eq!(&per_jobs[0].1, trace, "kill {k}: trace differs at -j{jobs}");
        }
    }
}

/// Determinism at the integration level: running the *same* faulted
/// build twice yields byte-identical traces and reports, including the
/// remote counters.
#[test]
fn identical_fault_schedules_replay_identical_outputs() {
    let (daemon, _, _) = warmed_daemon();
    let build = || {
        let flaky =
            Arc::new(FlakyTransport::new(loopback_over(&daemon)).with_fault(2, WireFault::Garbage));
        tiered_build(fresh_local(), flaky, 4)
    };
    let (code_a, report_a, trace_a) = build();
    let (code_b, report_b, trace_b) = build();
    assert_eq!(code_a, code_b);
    assert_eq!(report_a, report_b);
    assert_eq!(trace_a, trace_b);
}
