//! End-to-end language semantics: MLC constructs compiled at every
//! level produce the right values on the machine.

use cmo::{BuildOptions, Compiler, OptLevel};

fn run_main(src: &str, input: &[i64]) -> i64 {
    let mut cc = Compiler::new();
    cc.add_source("m", src).unwrap();
    let results: Vec<i64> = [
        BuildOptions::new(OptLevel::O1),
        BuildOptions::o2(),
        BuildOptions::new(OptLevel::O4),
    ]
    .iter()
    .map(|opts| cc.build(opts).unwrap().run(input).unwrap().returned)
    .collect();
    assert_eq!(results[0], results[1], "O1 vs O2 disagree");
    assert_eq!(results[1], results[2], "O2 vs O4 disagree");
    results[0]
}

#[test]
fn for_loop_sums() {
    let v = run_main(
        r#"
        fn main() -> int {
            var acc: int = 0;
            for (var i: int = 1; i <= 10; i = i + 1) { acc = acc + i; }
            return acc;
        }
        "#,
        &[],
    );
    assert_eq!(v, 55);
}

#[test]
fn break_exits_early() {
    let v = run_main(
        r#"
        fn main() -> int {
            var acc: int = 0;
            for (var i: int = 0; i < 1000; i = i + 1) {
                if (i == 5) { break; }
                acc = acc + i;
            }
            return acc;
        }
        "#,
        &[],
    );
    assert_eq!(v, 10); // 0+1+2+3+4
}

#[test]
fn continue_skips_and_still_steps() {
    let v = run_main(
        r#"
        fn main() -> int {
            var acc: int = 0;
            for (var i: int = 0; i < 10; i = i + 1) {
                if (i % 2 == 0) { continue; }
                acc = acc + i;
            }
            return acc;
        }
        "#,
        &[],
    );
    assert_eq!(v, 25); // 1+3+5+7+9
}

#[test]
fn continue_in_while_goes_to_header() {
    let v = run_main(
        r#"
        fn main() -> int {
            var i: int = 0;
            var acc: int = 0;
            while (i < 10) {
                i = i + 1;
                if (i == 3) { continue; }
                acc = acc + i;
            }
            return acc;
        }
        "#,
        &[],
    );
    assert_eq!(v, 52); // 55 - 3
}

#[test]
fn nested_loops_bind_innermost() {
    let v = run_main(
        r#"
        fn main() -> int {
            var acc: int = 0;
            for (var i: int = 0; i < 4; i = i + 1) {
                for (var j: int = 0; j < 100; j = j + 1) {
                    if (j == 2) { break; }
                    acc = acc + 1;
                }
            }
            return acc;
        }
        "#,
        &[],
    );
    assert_eq!(v, 8); // 4 outer × 2 inner
}

#[test]
fn break_outside_loop_is_an_error() {
    let mut cc = Compiler::new();
    let err = cc
        .add_source("m", "fn main() -> int { break; return 1; }")
        .unwrap_err();
    assert!(err.to_string().contains("outside of a loop"), "{err}");
}

#[test]
fn arrays_and_floats_mix() {
    let v = run_main(
        r#"
        static weights: float[4] = [0.5, 1.5, 2.5, 3.5];
        fn main() -> int {
            var sum: float = 0.0;
            for (var i: int = 0; i < 4; i = i + 1) {
                sum = sum + weights[i] * float(i);
            }
            return int(sum * 2.0);
        }
        "#,
        &[],
    );
    assert_eq!(v, 34); // (0 + 1.5 + 5 + 10.5) * 2
}

#[test]
fn input_stream_drives_control_flow() {
    let v = run_main(
        r#"
        fn main() -> int {
            var acc: int = 0;
            for (var i: int = 0; i < 5; i = i + 1) {
                var x: int = input();
                if (x < 0) { break; }
                acc = acc + x;
            }
            return acc;
        }
        "#,
        &[7, 8, -1, 100, 100],
    );
    assert_eq!(v, 15);
}
