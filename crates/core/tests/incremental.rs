//! End-to-end tests of the persistent incremental cache: cold vs warm
//! `cmocc --cache-dir` builds must be byte-identical at every `-j`,
//! clean modules must skip the front end and HLO on warm runs, and a
//! corrupted cache must fall back to a full recompile — with the same
//! bytes — instead of producing a garbage image.

use std::path::{Path, PathBuf};
use std::process::Command;

use cmo::{BuildCache, BuildOptions, Compiler, OptLevel, Telemetry};

fn cmocc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cmocc"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cmocc-incr-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const UTIL: &str = r#"
global factor: int = 3;
fn scale(x: int) -> int { return x * factor; }
"#;

const APP: &str = r#"
extern fn scale(x: int) -> int;
fn main() -> int {
    var i: int = 0;
    var acc: int = 0;
    while (i < 50) { acc = acc + scale(i); i = i + 1; }
    return acc % 1000;
}
"#;

fn write_sources(dir: &Path) -> (PathBuf, PathBuf) {
    let util = dir.join("util.mlc");
    let app = dir.join("app.mlc");
    std::fs::write(&util, UTIL).unwrap();
    std::fs::write(&app, APP).unwrap();
    (util, app)
}

/// Runs a `+O4` cached build writing report, trace, and disassembly;
/// returns (stdout, report json, trace). `code` is the expected exit
/// code: 0 for a clean build, 3 when the cache was found corrupted.
fn build_expecting(
    dir: &Path,
    cache: &Path,
    jobs: &str,
    tag: &str,
    code: i32,
) -> (String, String, String) {
    let json = dir.join(format!("{tag}.json"));
    let trace = dir.join(format!("{tag}.trace"));
    let out = cmocc()
        .args(["+O4", "-j", jobs, "--cache-dir"])
        .arg(cache)
        .args(["--report", "--report-json"])
        .arg(&json)
        .arg("--trace")
        .arg(&trace)
        .arg("--emit-asm")
        .args(["--run", "-"])
        .arg(dir.join("util.mlc"))
        .arg(dir.join("app.mlc"))
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(code),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        std::fs::read_to_string(&json).unwrap(),
        std::fs::read_to_string(&trace).unwrap(),
    )
}

/// [`build_expecting`] success.
fn build(dir: &Path, cache: &Path, jobs: &str, tag: &str) -> (String, String, String) {
    build_expecting(dir, cache, jobs, tag, 0)
}

/// Strips the "wrote ..." progress lines (temp paths) and the human
/// report's `cache:` line — the latter deliberately shows the *live*
/// hit/miss counters of each run, unlike the JSON report, whose cache
/// section replays the cold run's and stays byte-identical.
fn stable_output(stdout: &str) -> String {
    stdout
        .lines()
        .filter(|l| !l.starts_with("wrote ") && !l.trim_start().starts_with("cache: "))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn warm_build_replays_cold_build_byte_for_byte_at_any_jobs() {
    let dir = workdir("replay");
    write_sources(&dir);
    let cache = dir.join("cache");

    let (cold_out, cold_json, cold_trace) = build(&dir, &cache, "1", "cold");
    // Warm at a different job count: identical image (disassembly +
    // run checksum), identical report JSON.
    let (warm_out, warm_json, warm_trace) = build(&dir, &cache, "4", "warm");
    assert_eq!(
        stable_output(&cold_out),
        stable_output(&warm_out),
        "warm image or run output diverged from cold"
    );
    assert_eq!(cold_json, warm_json, "warm report JSON diverged from cold");

    // The cold run misses and stores; the warm run hits every module
    // and replays the whole build.
    assert!(cold_trace.contains(r#""action":"miss","scope":"module","name":"util""#));
    assert!(cold_trace.contains(r#""action":"store","scope":"build""#));
    for module in ["util", "app"] {
        assert!(
            warm_trace.contains(&format!(
                r#""action":"hit","scope":"module","name":"{module}""#
            )),
            "no module hit for {module} in warm trace: {warm_trace}"
        );
    }
    assert!(warm_trace.contains(r#""action":"hit","scope":"build""#));
    assert!(warm_trace.contains(r#""action":"replay","scope":"build""#));
    // A replayed build runs no optimizer: no pool traffic, no HLO
    // events in the warm trace.
    assert!(
        !warm_trace.contains(r#""event":"pool""#) && !warm_trace.contains(r#""phase":"hlo"#),
        "warm build still ran the optimizer: {warm_trace}"
    );
    // The human-readable report shows the hits.
    assert!(
        warm_out.contains("cache: 2 module hits, 0 misses, 0 invalidations, build replay: yes"),
        "missing cache line: {warm_out}"
    );
    // A third run, back at -j1, replays the same bytes again.
    let (_, third_json, third_trace) = build(&dir, &cache, "1", "third");
    assert_eq!(cold_json, third_json);
    assert_eq!(warm_trace, third_trace, "warm traces differ across -j");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn editing_one_module_recompiles_only_that_module() {
    let dir = workdir("dirty");
    let (util, _) = write_sources(&dir);
    let cache = dir.join("cache");

    build(&dir, &cache, "1", "cold");
    // Touching the file without changing content stays a full hit.
    std::fs::write(&util, UTIL).unwrap();
    let (_, _, clean_trace) = build(&dir, &cache, "1", "clean");
    assert!(clean_trace.contains(r#""action":"replay","scope":"build""#));

    // A real edit dirties util: its module entry misses, app still
    // hits, and the whole-build key changes so the build re-runs.
    std::fs::write(&util, UTIL.replace("factor: int = 3", "factor: int = 4")).unwrap();
    let (out, _, trace) = build(&dir, &cache, "1", "dirty");
    assert!(trace.contains(r#""action":"miss","scope":"module","name":"util""#));
    assert!(trace.contains(r#""action":"hit","scope":"module","name":"app""#));
    assert!(trace.contains(r#""action":"miss","scope":"build""#));
    assert!(!trace.contains(r#""action":"replay""#));
    assert!(
        out.contains("cache: 1 module hits, 1 misses"),
        "unexpected cache line: {out}"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_cache_falls_back_to_identical_full_recompile() {
    let dir = workdir("corrupt");
    write_sources(&dir);
    let cache = dir.join("cache");

    let (cold_out, _, _) = build(&dir, &cache, "1", "cold");

    // Flip one byte in the stored records region of the repository.
    let repo = cache.join("repo.naim");
    let mut bytes = std::fs::read(&repo).unwrap();
    let mid = bytes.len() / 3;
    bytes[mid] ^= 0xFF;
    std::fs::write(&repo, &bytes).unwrap();

    // The fallback succeeds but flags the corruption via exit code 3.
    let (hurt_out, _, hurt_trace) = build_expecting(&dir, &cache, "1", "hurt", 3);
    assert!(
        hurt_trace.contains(r#""action":"invalidate""#),
        "no diagnostic invalidate event: {hurt_trace}"
    );
    assert_eq!(
        stable_output(&cold_out),
        stable_output(&hurt_out),
        "corrupted cache changed the produced image or run output"
    );

    // The fallback also re-stored good entries: the next build replays.
    let (_, _, healed_trace) = build(&dir, &cache, "1", "healed");
    assert!(healed_trace.contains(r#""action":"replay","scope":"build""#));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn no_cache_conflicts_with_cache_dir() {
    let dir = workdir("conflict");
    let (util, _) = write_sources(&dir);
    let out = cmocc()
        .args(["--no-cache", "--cache-dir"])
        .arg(dir.join("cache"))
        .arg(&util)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--no-cache conflicts"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn api_level_cached_build_replays_and_counts_hits() {
    let dir = workdir("api");
    let cache_dir = dir.join("cache");
    let modules = vec![
        ("util".to_owned(), UTIL.to_owned()),
        ("app".to_owned(), APP.to_owned()),
    ];
    let options = BuildOptions::new(OptLevel::O4);

    let cold = {
        let mut cache = BuildCache::open(&cache_dir).unwrap();
        let mut cc = Compiler::new();
        let hits = cc
            .add_sources_cached(&modules, 1, &mut cache, &Telemetry::disabled())
            .unwrap();
        assert_eq!(hits, 0);
        cc.build_cached(&options, &mut cache).unwrap()
    };
    let warm = {
        let mut cache = BuildCache::open(&cache_dir).unwrap();
        let mut cc = Compiler::new();
        let hits = cc
            .add_sources_cached(&modules, 4, &mut cache, &Telemetry::disabled())
            .unwrap();
        assert_eq!(hits, 2, "both modules should hit on the warm run");
        cc.build_cached(&options, &mut cache).unwrap()
    };
    assert_eq!(
        cold.image.to_bytes(),
        warm.image.to_bytes(),
        "replayed image differs from the cold build's"
    );
    assert_eq!(
        cold.compile_report().to_json(),
        warm.compile_report().to_json(),
        "replayed report differs from the cold build's"
    );
    assert_eq!(warm.report.cache.build_hits, 1);
    assert_eq!(warm.report.cache.module_hits, 2);

    // An uncached build of the same modules produces the same image.
    let mut cc = Compiler::new();
    cc.add_sources(&modules, 1).unwrap();
    let uncached = cc.build(&options).unwrap();
    assert_eq!(uncached.image.to_bytes(), cold.image.to_bytes());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gc_cache_compacts_the_repository_and_keeps_warm_replay_byte_identical() {
    let dir = workdir("gccli");
    write_sources(&dir);
    let cache = dir.join("cache");

    let (cold_out, cold_json, _) = build(&dir, &cache, "1", "cold");
    // Each warm rebuild persists a fresh index segment, so the dead
    // share of the repository climbs well past 50%.
    for i in 0..20 {
        build(&dir, &cache, "1", &format!("bloat{i}"));
    }
    let repo = cache.join("repo.naim");
    let size_bloated = std::fs::metadata(&repo).unwrap().len();

    // Standalone compaction: no input files, just --gc-cache.
    let trace_path = dir.join("gc.trace");
    let out = cmocc()
        .args(["--gc-cache", "--cache-dir"])
        .arg(&cache)
        .arg("--trace")
        .arg(&trace_path)
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "{stderr}");
    assert!(
        stderr.contains("gc reclaimed") && stderr.contains("ms)"),
        "missing gc summary on stderr: {stderr}"
    );
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    assert!(
        trace.contains(r#""event":"cache","action":"gc""#),
        "no gc event in trace: {trace}"
    );
    let size_compacted = std::fs::metadata(&repo).unwrap().len();
    assert!(
        size_compacted * 2 <= size_bloated,
        "gc reclaimed less than half of the bloated repository: \
         {size_bloated} -> {size_compacted}"
    );

    // The compacted cache replays the cold build byte for byte.
    let (warm_out, warm_json, warm_trace) = build(&dir, &cache, "4", "warm");
    assert_eq!(stable_output(&cold_out), stable_output(&warm_out));
    assert_eq!(cold_json, warm_json);
    assert!(warm_trace.contains(r#""action":"replay","scope":"build""#));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gc_flags_validate_their_dependencies() {
    let dir = workdir("gcflags");
    let (util, _) = write_sources(&dir);

    // --gc-cache needs a cache to compact.
    let out = cmocc().arg("--gc-cache").arg(&util).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--gc-cache requires --cache-dir"));

    // So does --gc-threshold-bytes.
    let out = cmocc()
        .args(["--gc-threshold-bytes", "4096"])
        .arg(&util)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--gc-threshold-bytes requires --cache-dir")
    );

    // Standalone --gc-cache runs no build: build-output flags conflict.
    let out = cmocc()
        .args(["--gc-cache", "--cache-dir"])
        .arg(dir.join("cache"))
        .args(["--run", "-"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("conflicts with standalone --gc-cache"));

    // Without --gc-cache, an empty input list is still an error.
    let out = cmocc()
        .arg("--cache-dir")
        .arg(dir.join("cache"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no input files"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gc_threshold_compacts_during_cached_build_without_changing_output() {
    let dir = workdir("gcauto");
    let cache_dir = dir.join("cache");
    let modules = vec![
        ("util".to_owned(), UTIL.to_owned()),
        ("app".to_owned(), APP.to_owned()),
    ];
    let options = BuildOptions::new(OptLevel::O4);

    let run = |options: &BuildOptions| {
        let mut cache = BuildCache::open(&cache_dir).unwrap();
        let mut cc = Compiler::new();
        cc.add_sources_cached(&modules, 1, &mut cache, &Telemetry::disabled())
            .unwrap();
        cc.build_cached(options, &mut cache).unwrap()
    };
    let cold = run(&options);
    // Every cached build persists a fresh index segment, orphaning the
    // previous one: warm rebuilds steadily grow the dead-byte share.
    for _ in 0..20 {
        run(&options);
    }
    let repo = cache_dir.join("repo.naim");
    let size_bloated = std::fs::metadata(&repo).unwrap().len();

    // A threshold of 0 means "compact whenever any byte is dead".
    let tel = Telemetry::enabled();
    let gc_options = BuildOptions::new(OptLevel::O4)
        .with_gc_threshold_bytes(0)
        .with_telemetry(tel.clone());
    let compacted = run(&gc_options);
    let trace = tel.render_trace();
    assert!(
        trace.contains(r#""event":"cache","action":"gc""#),
        "no gc event in trace: {trace}"
    );
    assert!(
        trace.contains(r#""action":"replay","scope":"build""#),
        "the gc run should still replay the cold build: {trace}"
    );
    let size_compacted = std::fs::metadata(&repo).unwrap().len();
    assert!(
        size_compacted < size_bloated,
        "gc did not shrink the repository: {size_bloated} -> {size_compacted}"
    );

    // The compacted cache still replays byte-for-byte, during the gc
    // run itself and on the next plain warm build.
    assert_eq!(compacted.image.to_bytes(), cold.image.to_bytes());
    assert_eq!(
        compacted.compile_report().to_json(),
        cold.compile_report().to_json()
    );
    let warm = run(&options);
    assert_eq!(warm.image.to_bytes(), cold.image.to_bytes());

    std::fs::remove_dir_all(&dir).unwrap();
}
