//! Fault-injection integration tests: the build must survive a crash
//! at *every* storage I/O operation of a cached build (reopen, recover,
//! and rebuild byte-identical output), contain panicking front-end
//! workers behind `--keep-going`, and report failures through the
//! documented exit codes — 1 for diagnostics, 2 for usage errors,
//! 3 for recovered corruption, 101 for internal bugs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

use cmo::{
    BuildCache, BuildOptions, Compiler, FaultyStorage, MemStorage, OptLevel, Storage, Telemetry,
};

const UTIL_V1: &str = r#"
global factor: int = 3;
fn scale(x: int) -> int { return x * factor; }
"#;

const UTIL_V2: &str = r#"
global factor: int = 4;
fn scale(x: int) -> int { return x * factor; }
"#;

const APP: &str = r#"
extern fn scale(x: int) -> int;
fn main() -> int {
    var i: int = 0;
    var acc: int = 0;
    while (i < 50) { acc = acc + scale(i); i = i + 1; }
    return acc % 1000;
}
"#;

/// Worker counts under test: 1 and 4, plus whatever CI asks for
/// through `CMO_TEST_JOBS`.
fn jobs_levels() -> Vec<usize> {
    let mut levels = vec![1, 4];
    if let Some(n) = std::env::var("CMO_TEST_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n >= 1 && !levels.contains(&n) {
            levels.push(n);
        }
    }
    levels
}

fn compiler(util: &str) -> Compiler {
    let mut cc = Compiler::new();
    cc.add_source("util", util).unwrap();
    cc.add_source("app", APP).unwrap();
    cc
}

/// Renders the image's code words for byte-for-byte comparison.
fn image_string(out: &cmo::BuildOutput) -> String {
    out.image.code.iter().map(|w| format!("{w:?};")).collect()
}

/// Strips the `"cache"` object from a report JSON. The cache counters
/// legitimately depend on how much cached state survived a crash;
/// everything else in the report must be byte-identical.
fn mask_cache(json: &str) -> String {
    let mut out = String::new();
    let mut skipping = false;
    for line in json.lines() {
        if line.starts_with("  \"cache\": {") {
            skipping = true;
            continue;
        }
        if skipping {
            if line.starts_with("  }") {
                skipping = false;
            }
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    assert!(out.len() < json.len(), "cache section not found: {json}");
    out
}

/// One `+O4` cached build of `util` + `app` against `storage`,
/// returning (image code, report JSON, trace, recovery count).
fn cached_build(
    storage: Arc<dyn Storage>,
    util: &str,
    jobs: usize,
) -> (String, String, String, u64) {
    let tel = Telemetry::enabled();
    let mut bcache = BuildCache::open_on(storage, &tel).expect("open on healthy storage");
    let mut opts = BuildOptions::new(OptLevel::O4).with_jobs(jobs);
    opts.telemetry = tel.clone();
    let out = compiler(util)
        .build_cached(&opts, &mut bcache)
        .expect("build on healthy storage");
    (
        image_string(&out),
        out.compile_report().to_json(),
        tel.render_trace(),
        bcache.recovered(),
    )
}

/// The tentpole acceptance test: commit generation 1, then crash an
/// incremental rebuild at every single storage I/O operation. After
/// each crash the store must reopen without panicking and the rebuild
/// must produce byte-identical output at every `-j` level — never
/// stale generation-1 bytes, never garbage.
#[test]
fn kill_point_sweep_recovers_at_every_io_op() {
    // Generation 1: a committed cache of the v1 sources.
    let gen1 = Arc::new(MemStorage::new());
    cached_build(Arc::clone(&gen1) as Arc<dyn Storage>, UTIL_V1, 1);

    // Reference: the v2 incremental build on a pristine copy of gen 1.
    let (ref_code, ref_report, _, _) =
        cached_build(Arc::new(gen1.snapshot()) as Arc<dyn Storage>, UTIL_V2, 1);
    let ref_masked = mask_cache(&ref_report);

    // Probe: count the storage ops of that same incremental build.
    let probe_inner = Arc::new(gen1.snapshot());
    let probe = Arc::new(FaultyStorage::new(
        Arc::clone(&probe_inner) as Arc<dyn Storage>
    ));
    cached_build(Arc::clone(&probe) as Arc<dyn Storage>, UTIL_V2, 1);
    let total_ops = probe.ops();
    assert!(total_ops > 10, "suspiciously few storage ops: {total_ops}");

    let mut recoveries = 0u64;
    for k in 0..total_ops {
        // Crash the incremental build at op k.
        let inner = Arc::new(gen1.snapshot());
        let faulty =
            Arc::new(FaultyStorage::new(Arc::clone(&inner) as Arc<dyn Storage>).kill_at(k));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let tel = Telemetry::disabled();
            let Ok(mut bcache) = BuildCache::open_on(Arc::clone(&faulty) as Arc<dyn Storage>, &tel)
            else {
                return; // the kill landed inside open: acceptable
            };
            // The build itself must absorb storage failure (the cache
            // degrades to cold); only the image matters here and the
            // process "dies" at the kill point regardless.
            let _ = compiler(UTIL_V2).build_cached(&BuildOptions::new(OptLevel::O4), &mut bcache);
        }));
        assert!(outcome.is_ok(), "build panicked at kill point {k}");
        assert!(faulty.crashed(), "kill point {k} never fired");

        // Reopen the post-crash state and rebuild at every -j level.
        let mut per_jobs = Vec::new();
        for jobs in jobs_levels() {
            let state = Arc::new(inner.snapshot()) as Arc<dyn Storage>;
            let (code, report, trace, recovered) = cached_build(state, UTIL_V2, jobs);
            assert_eq!(code, ref_code, "kill {k} -j{jobs}: image diverged");
            assert_eq!(
                mask_cache(&report),
                ref_masked,
                "kill {k} -j{jobs}: report diverged"
            );
            recoveries += recovered;
            per_jobs.push((jobs, code, report, trace));
        }
        let (_, code1, report1, trace1) = &per_jobs[0];
        for (jobs, code, report, trace) in &per_jobs[1..] {
            assert_eq!(code1, code, "kill {k}: image differs at -j{jobs}");
            assert_eq!(report1, report, "kill {k}: report differs at -j{jobs}");
            assert_eq!(trace1, trace, "kill {k}: trace differs at -j{jobs}");
        }
    }
    // At least one kill point must land between the repository fsync
    // and the journal commit, forcing an actual rollback recovery.
    assert!(
        recoveries > 0,
        "no kill point exercised recovery across {total_ops} ops"
    );
}

/// GC crash-safety: compaction killed at *every* storage I/O operation
/// must leave `repo.naim` byte-identical to either the pre-GC or the
/// post-GC generation — never a mix of the two — and a reopened cache
/// must still replay the reference build at every `-j` level.
#[test]
fn gc_kill_point_sweep_leaves_old_or_new_generation_never_a_mix() {
    const REPO: &str = "repo.naim";

    // A committed cache with plenty of dead bytes: the v1 build's util
    // record dies when v2 supersedes it, and every extra build appends
    // another stale index segment.
    let base = Arc::new(MemStorage::new());
    cached_build(Arc::clone(&base) as Arc<dyn Storage>, UTIL_V1, 1);
    cached_build(Arc::clone(&base) as Arc<dyn Storage>, UTIL_V2, 1);
    cached_build(Arc::clone(&base) as Arc<dyn Storage>, UTIL_V2, 1);
    let pre_bytes = base.read(REPO).unwrap();

    // Reference warm output on the uncompacted cache.
    let (ref_code, ref_report, _, _) =
        cached_build(Arc::new(base.snapshot()) as Arc<dyn Storage>, UTIL_V2, 1);
    let ref_masked = mask_cache(&ref_report);

    // The post-GC generation: a clean, uninterrupted compaction.
    let post = Arc::new(base.snapshot());
    {
        let tel = Telemetry::disabled();
        let mut bcache = BuildCache::open_on(Arc::clone(&post) as Arc<dyn Storage>, &tel).unwrap();
        let stats = bcache.gc(&tel).unwrap();
        assert!(stats.reclaimed_bytes > 0, "setup produced no dead bytes");
    }
    let post_bytes = post.read(REPO).unwrap();
    assert_ne!(pre_bytes, post_bytes, "gc was a no-op");

    // Probe: count the storage ops of open + gc.
    let probe = Arc::new(FaultyStorage::new(
        Arc::new(base.snapshot()) as Arc<dyn Storage>
    ));
    {
        let tel = Telemetry::disabled();
        let mut bcache = BuildCache::open_on(Arc::clone(&probe) as Arc<dyn Storage>, &tel).unwrap();
        bcache.gc(&tel).unwrap();
    }
    let total_ops = probe.ops();
    assert!(total_ops > 10, "suspiciously few storage ops: {total_ops}");

    let (mut pre_survivals, mut post_survivals) = (0u64, 0u64);
    for k in 0..total_ops {
        let inner = Arc::new(base.snapshot());
        let faulty =
            Arc::new(FaultyStorage::new(Arc::clone(&inner) as Arc<dyn Storage>).kill_at(k));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let tel = Telemetry::disabled();
            let Ok(mut bcache) = BuildCache::open_on(Arc::clone(&faulty) as Arc<dyn Storage>, &tel)
            else {
                return; // the kill landed inside open: acceptable
            };
            let _ = bcache.gc(&tel);
        }));
        assert!(outcome.is_ok(), "gc panicked at kill point {k}");
        assert!(faulty.crashed(), "kill point {k} never fired");

        // Atomicity: the surviving repository is one generation or the
        // other, byte for byte.
        let crashed_bytes = inner.read(REPO).unwrap();
        if crashed_bytes == pre_bytes {
            pre_survivals += 1;
        } else if crashed_bytes == post_bytes {
            post_survivals += 1;
        } else {
            panic!("kill {k}: repo.naim is a mix of generations");
        }

        // Recovery: a reopened cache replays the reference build at
        // every -j level, identically across levels.
        let mut per_jobs = Vec::new();
        for jobs in jobs_levels() {
            let state = Arc::new(inner.snapshot()) as Arc<dyn Storage>;
            let (code, report, trace, _) = cached_build(state, UTIL_V2, jobs);
            assert_eq!(code, ref_code, "kill {k} -j{jobs}: image diverged");
            assert_eq!(
                mask_cache(&report),
                ref_masked,
                "kill {k} -j{jobs}: report diverged"
            );
            per_jobs.push((jobs, code, report, trace));
        }
        let (_, code1, report1, trace1) = &per_jobs[0];
        for (jobs, code, report, trace) in &per_jobs[1..] {
            assert_eq!(code1, code, "kill {k}: image differs at -j{jobs}");
            assert_eq!(report1, report, "kill {k}: report differs at -j{jobs}");
            assert_eq!(trace1, trace, "kill {k}: trace differs at -j{jobs}");
        }
    }
    // The sweep must land on both sides of the atomic swap, or it is
    // not exercising the interesting window.
    assert!(
        pre_survivals > 0 && post_survivals > 0,
        "sweep never crossed the swap: {pre_survivals} pre, {post_survivals} post"
    );
}

// ---------------------------------------------------------------- CLI

fn cmocc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cmocc"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cmocc-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_sources(dir: &Path, app: &str) -> (PathBuf, PathBuf) {
    let util = dir.join("util.mlc");
    let app_path = dir.join("app.mlc");
    std::fs::write(&util, UTIL_V1).unwrap();
    std::fs::write(&app_path, app).unwrap();
    (util, app_path)
}

/// `--keep-going` with one broken module: diagnostics for the broken
/// one, objects for the rest, exit 1, the failure recorded in the JSON
/// report, and a byte-identical trace at every `-j`.
#[test]
fn keep_going_skips_broken_module_and_reports_it() {
    let dir = workdir("keep-going");
    write_sources(&dir, "fn main( -> int { return 0; }"); // syntax error
    let mut traces = Vec::new();
    for jobs in jobs_levels() {
        let json = dir.join(format!("report-{jobs}.json"));
        let trace = dir.join(format!("trace-{jobs}.jsonl"));
        let out = cmocc()
            .args(["+O4", "--keep-going", "-j", &jobs.to_string()])
            .args(["--report-json"])
            .arg(&json)
            .arg("--trace")
            .arg(&trace)
            .arg(dir.join("util.mlc"))
            .arg(dir.join("app.mlc"))
            .output()
            .unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
        assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
        assert!(
            stderr.contains("--keep-going: skipping `app`"),
            "missing skip diagnostic: {stderr}"
        );
        assert!(
            stderr.contains("1 of 2 modules failed; image not linked"),
            "missing summary: {stderr}"
        );
        let report = std::fs::read_to_string(&json).unwrap();
        assert!(
            report.contains("\"degraded\": [\n      \"app\"\n    ]")
                || report.contains("\"degraded\": [\"app\"]"),
            "report does not record the degraded module: {report}"
        );
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        assert!(
            trace_text.contains(r#""event":"degraded","component":"frontend","name":"app""#),
            "missing degraded event: {trace_text}"
        );
        traces.push((jobs, trace_text));
    }
    for (jobs, trace) in &traces[1..] {
        assert_eq!(&traces[0].1, trace, "trace differs at -j{jobs}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `--keep-going -c` still writes the surviving objects.
#[test]
fn keep_going_compile_only_writes_surviving_objects() {
    let dir = workdir("keep-going-c");
    write_sources(&dir, "fn main( -> int { return 0; }");
    let out = cmocc()
        .args(["-c", "--keep-going"])
        .arg(dir.join("util.mlc"))
        .arg(dir.join("app.mlc"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        dir.join("util.cmo").exists(),
        "surviving object not written"
    );
    assert!(
        !dir.join("app.cmo").exists(),
        "broken module wrote an object"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A worker panic without `--keep-going` is an internal bug: exit 101.
#[test]
fn worker_panic_without_keep_going_exits_101() {
    let dir = workdir("panic-101");
    write_sources(&dir, APP);
    for jobs in jobs_levels() {
        let out = cmocc()
            .env("CMOCC_PANIC_ON", "util")
            .args(["+O4", "-j", &jobs.to_string()])
            .arg(dir.join("util.mlc"))
            .arg(dir.join("app.mlc"))
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(101),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The same panic under `--keep-going` is contained: exit 1, a
/// `job-panic` trace event, and `job_panics` counted in the report.
#[test]
fn worker_panic_with_keep_going_is_contained() {
    let dir = workdir("panic-contained");
    write_sources(&dir, APP);
    for jobs in jobs_levels() {
        let json = dir.join(format!("report-{jobs}.json"));
        let trace = dir.join(format!("trace-{jobs}.jsonl"));
        let out = cmocc()
            .env("CMOCC_PANIC_ON", "util")
            .args(["+O4", "--keep-going", "-j", &jobs.to_string()])
            .args(["--report-json"])
            .arg(&json)
            .arg("--trace")
            .arg(&trace)
            .arg(dir.join("util.mlc"))
            .arg(dir.join("app.mlc"))
            .output()
            .unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
        assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
        assert!(
            stderr.contains("panicked the compiler"),
            "missing panic diagnostic: {stderr}"
        );
        let report = std::fs::read_to_string(&json).unwrap();
        assert!(
            report.contains("\"job_panics\": 1"),
            "panic not counted: {report}"
        );
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        assert!(
            trace_text.contains(r#""event":"job-panic""#),
            "missing job-panic event: {trace_text}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `--isolate` flag rules are usage errors (exit 2); a healthy program
/// isolates nothing (exit 0).
#[test]
fn isolate_validates_flags_and_runs_clean() {
    let dir = workdir("isolate");
    write_sources(&dir, APP);
    // Missing --run: usage error.
    let out = cmocc()
        .args(["+O4", "--isolate"])
        .arg(dir.join("util.mlc"))
        .arg(dir.join("app.mlc"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Wrong level: usage error.
    let out = cmocc()
        .args(["+O2", "--isolate", "--run", "-"])
        .arg(dir.join("util.mlc"))
        .arg(dir.join("app.mlc"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Healthy +O4 program: the search clears every inline op.
    let out = cmocc()
        .args(["+O4", "--isolate", "--run", "-"])
        .arg(dir.join("util.mlc"))
        .arg(dir.join("app.mlc"))
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("isolated: all"),
        "missing isolation verdict: {stdout}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A plain front-end diagnostic (no panic, no keep-going) stays exit 1.
#[test]
fn compile_diagnostic_exits_1() {
    let dir = workdir("diag");
    write_sources(&dir, "fn main( -> int { return 0; }");
    let out = cmocc()
        .arg(dir.join("util.mlc"))
        .arg(dir.join("app.mlc"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(!String::from_utf8_lossy(&out.stderr).is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}
