//! The compilation driver: HP-UX-style option levels over the full
//! pipeline.

use crate::cache::{self, BuildCache, CacheStats};
use crate::parallel::run_jobs;
use crate::report::{CompileReport, FaultStats};
use crate::slices::{ModuleScope, SliceGranularity, SlicePlan};
use cmo_frontend::FrontendError;
use cmo_hlo::{
    fold_globals, merge_outcomes, plan_clusters, run_cluster, run_clusters_seq, CallGraph,
    GlobalFacts, HloSession, HloStats, InlineOptions, PartitionStats,
};
use cmo_ir::{link_objects, IlObject, LinkError, Program, RoutineBody, RoutineId};
use cmo_link::{assemble, CallArc, LinkOptions};
use cmo_llo::{
    lower_routine, shape_of, GlobalLayout, LloOptions, LoweredRoutine, OptEffort, OptEffortOpt,
};
use cmo_naim::{LoaderStats, MemorySnapshot, NaimConfig, NaimError};
use cmo_profile::{Freshness, ProfileDb};
use cmo_select::{coarse_select_traced, layered_levels, OptLayer, SelectError};
use cmo_telemetry::{PhaseRecord, Telemetry, TraceEvent};
use cmo_vm::{profile_from_run, run, ExecResult, MachineImage, RunConfig};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// Optimization level, mirroring the paper's option set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptLevel {
    /// Optimize only within basic blocks (the Mcad3 baseline).
    O1,
    /// Full intraprocedural optimization (the default baseline, `-O`).
    O2,
    /// Cross-module optimization: IL objects routed through HLO.
    O4,
}

/// A build failure.
#[derive(Debug)]
pub enum BuildError {
    /// A source module failed to compile.
    Frontend(FrontendError),
    /// IL linking failed (undefined/duplicate symbols, interface
    /// mismatches).
    Link(LinkError),
    /// The optimizer ran out of memory or the repository failed — the
    /// paper's 1 GB-heap compile failures surface here.
    Naim(NaimError),
    /// The selectivity request was invalid (e.g. a NaN percentage).
    Select(SelectError),
    /// The program defines no `main`.
    NoMain,
    /// `run_for_profile` was called on an uninstrumented image.
    NotInstrumented,
    /// Program execution failed.
    Exec(cmo_vm::ExecError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Frontend(e) => write!(f, "frontend error: {e}"),
            BuildError::Link(e) => write!(f, "link error: {e}"),
            BuildError::Naim(e) => write!(f, "optimizer resource failure: {e}"),
            BuildError::Select(e) => write!(f, "selectivity error: {e}"),
            BuildError::NoMain => f.write_str("program defines no `main` routine"),
            BuildError::NotInstrumented => {
                f.write_str("image carries no probes; build with instrumentation (+I)")
            }
            BuildError::Exec(e) => write!(f, "execution failure: {e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Frontend(e) => Some(e),
            BuildError::Link(e) => Some(e),
            BuildError::Naim(e) => Some(e),
            BuildError::Select(e) => Some(e),
            BuildError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrontendError> for BuildError {
    fn from(e: FrontendError) -> Self {
        BuildError::Frontend(e)
    }
}

impl From<LinkError> for BuildError {
    fn from(e: LinkError) -> Self {
        BuildError::Link(e)
    }
}

impl From<NaimError> for BuildError {
    fn from(e: NaimError) -> Self {
        BuildError::Naim(e)
    }
}

impl From<SelectError> for BuildError {
    fn from(e: SelectError) -> Self {
        BuildError::Select(e)
    }
}

/// Options for one build.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Optimization level.
    pub level: OptLevel,
    /// Use profile data (`+P`). Requires [`BuildOptions::profile`].
    pub pbo: bool,
    /// Insert profiling probes (`+I`).
    pub instrument: bool,
    /// The profile database from earlier instrumented runs.
    pub profile: Option<ProfileDb>,
    /// Coarse-grained selectivity: percentage of call sites to select
    /// (§5). `None` at `+O4` optimizes every module (the expensive
    /// non-selective mode).
    pub selectivity: Option<f64>,
    /// NAIM loader configuration (memory budget, thresholds, level).
    pub naim: NaimConfig,
    /// Inliner heuristics.
    pub inline: InlineOptions,
    /// Enable the §8 multi-layered strategy: cold routines drop to
    /// `+O1` treatment.
    pub layered: bool,
    /// Worker threads for the parallel pipeline sections (front-end
    /// lowering and per-routine LLO; `cmocc -j N`). 1 (the default)
    /// runs everything inline on the calling thread. Output is
    /// byte-identical at every job count: results are keyed by module
    /// or routine index and merged in index order.
    pub jobs: usize,
    /// Auto-trigger for cache compaction (`cmocc
    /// --gc-threshold-bytes N`): when a cache is attached and its
    /// repository carries more than this many dead bytes, the build
    /// runs a mark-and-sweep compaction before probing. `None` (the
    /// default) never compacts. Excluded from the options signature —
    /// when the GC policy changed, the outputs did not.
    pub gc_threshold_bytes: Option<u64>,
    /// How wide each module's profile-slice scope reaches when a
    /// profile database is attached (`cmocc
    /// --profile-slice-granularity`). Excluded from the options
    /// signature: granularity only decides *which* database projection
    /// keys an entry, and identical slice fingerprints imply identical
    /// observable counts regardless of how the scope was drawn.
    pub slice_granularity: SliceGranularity,
    /// Telemetry sink threaded through the whole pipeline (loader,
    /// HLO, selection, final link). Disabled (no-op) by default;
    /// enable it to collect phase timers and trace events for the
    /// `--report-json` / `--trace` outputs.
    pub telemetry: Telemetry,
}

impl BuildOptions {
    /// Options for `level` with everything else at defaults.
    #[must_use]
    pub fn new(level: OptLevel) -> Self {
        BuildOptions {
            level,
            pbo: false,
            instrument: false,
            profile: None,
            selectivity: None,
            naim: NaimConfig::default(),
            inline: InlineOptions::default(),
            layered: false,
            jobs: 1,
            gc_threshold_bytes: None,
            slice_granularity: SliceGranularity::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// The default optimization level (`+O2`), the Figure 1 baseline.
    #[must_use]
    pub fn o2() -> Self {
        BuildOptions::new(OptLevel::O2)
    }

    /// An instrumented `+O2 +I` build for profile collection.
    #[must_use]
    pub fn instrumented() -> Self {
        BuildOptions {
            instrument: true,
            ..BuildOptions::new(OptLevel::O2)
        }
    }

    /// Attaches a profile database and enables PBO (`+P`).
    #[must_use]
    pub fn with_profile_db(mut self, db: ProfileDb) -> Self {
        self.profile = Some(db);
        self.pbo = true;
        self
    }

    /// Sets the coarse-grained selectivity percentage.
    #[must_use]
    pub fn with_selectivity(mut self, percent: f64) -> Self {
        self.selectivity = Some(percent);
        self
    }

    /// Sets the NAIM configuration.
    #[must_use]
    pub fn with_naim(mut self, naim: NaimConfig) -> Self {
        self.naim = naim;
        self
    }

    /// Sets the inliner options.
    #[must_use]
    pub fn with_inline(mut self, inline: InlineOptions) -> Self {
        self.inline = inline;
        self
    }

    /// Attaches a telemetry sink.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Sets the worker-thread count for the parallel pipeline sections.
    /// Values below 1 are clamped to 1 (fully inline).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Compacts an attached cache before the build whenever its
    /// repository carries more than `bytes` dead bytes.
    #[must_use]
    pub fn with_gc_threshold_bytes(mut self, bytes: u64) -> Self {
        self.gc_threshold_bytes = Some(bytes);
        self
    }

    /// Sets the profile-slice scope granularity.
    #[must_use]
    pub fn with_slice_granularity(mut self, granularity: SliceGranularity) -> Self {
        self.slice_granularity = granularity;
        self
    }
}

/// What the build did, for diagnostics and the paper's experiments.
#[derive(Debug, Clone, Default)]
pub struct BuildReport {
    /// Modules compiled with CMO.
    pub cmo_modules: usize,
    /// Total modules.
    pub total_modules: usize,
    /// Source lines in CMO modules (Figure 6 x-axis).
    pub cmo_loc: u64,
    /// Total source lines.
    pub total_loc: u64,
    /// HLO transformation counters.
    pub hlo: HloStats,
    /// Cluster partition counters from the parallel HLO fan-out
    /// (zeros below `+O4`).
    pub clusters: PartitionStats,
    /// NAIM loader counters.
    pub loader: LoaderStats,
    /// Peak optimizer memory (Figures 4/5).
    pub peak_memory: MemorySnapshot,
    /// Largest per-routine LLO working set.
    pub llo_peak_bytes: usize,
    /// Simulated compile effort in abstract work units: NAIM traffic
    /// plus per-routine analysis/lowering costs. Wall-clock time tracks
    /// this closely; benches report both.
    pub compile_work: u64,
    /// Final image size in instructions.
    pub image_instrs: usize,
    /// Incremental-cache counters for this build (zeros when no cache
    /// was attached).
    pub cache: CacheStats,
    /// Faults contained during the build: worker panics absorbed by
    /// the job pool and modules skipped under `--keep-going`.
    pub faults: FaultStats,
    /// Hierarchical phase timers recorded by the build's telemetry
    /// sink. Empty when telemetry was disabled.
    pub phases: Vec<PhaseRecord>,
    /// On a warm whole-build cache hit, the cold run's stored unified
    /// report, replayed verbatim so `--report-json` output is
    /// byte-identical between cold and warm builds.
    pub replayed: Option<CompileReport>,
}

/// A finished build: the executable image plus its report.
#[derive(Debug, Clone)]
pub struct BuildOutput {
    /// The linked executable.
    pub image: MachineImage,
    /// Build diagnostics.
    pub report: BuildReport,
}

impl BuildOutput {
    /// Runs the image on `input` with default limits.
    ///
    /// # Errors
    ///
    /// Propagates machine faults (fuel, stack).
    pub fn run(&self, input: &[i64]) -> Result<ExecResult, BuildError> {
        run(&self.image, input, &RunConfig::default()).map_err(BuildError::Exec)
    }

    /// Runs an instrumented image and returns the resulting profile
    /// database (§3: "when this specially instrumented program is run,
    /// a profile database is generated").
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::NotInstrumented`] if the image carries no
    /// probes.
    pub fn run_for_profile(&self, input: &[i64]) -> Result<ProfileDb, BuildError> {
        if !self.image.is_instrumented() {
            return Err(BuildError::NotInstrumented);
        }
        let result = self.run(input)?;
        Ok(profile_from_run(&self.image, &result.probe_counts))
    }

    /// The unified, versioned view of this build's statistics — the
    /// surface benches and external tooling should consume instead of
    /// the per-crate stats structs.
    #[must_use]
    pub fn compile_report(&self) -> crate::CompileReport {
        if let Some(replayed) = &self.report.replayed {
            return replayed.clone();
        }
        crate::CompileReport::from_build(&self.report)
    }
}

/// The compiler driver: collects modules, builds at any option level.
#[derive(Debug, Clone, Default)]
pub struct Compiler {
    objects: Vec<IlObject>,
    /// Per-module content fingerprints, parallel to `objects`, used as
    /// incremental-cache keys.
    fingerprints: Vec<String>,
}

impl Compiler {
    /// An empty driver.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles an MLC source module and adds its IL object.
    ///
    /// # Errors
    ///
    /// Returns frontend diagnostics.
    pub fn add_source(&mut self, module: &str, source: &str) -> Result<(), BuildError> {
        let obj = cmo_frontend::compile_module(module, source)?;
        self.fingerprints
            .push(cache::module_fingerprint(module, source));
        self.objects.push(obj);
        Ok(())
    }

    /// Compiles a batch of MLC source modules, fanning front-end
    /// lowering out over `jobs` worker threads, and adds their IL
    /// objects in batch order. Modules are independent compilation
    /// units, so this parallelizes trivially; with multiple failures
    /// the reported error is the first by batch position, independent
    /// of scheduling.
    ///
    /// # Errors
    ///
    /// Returns frontend diagnostics.
    pub fn add_sources(
        &mut self,
        modules: &[(String, String)],
        jobs: usize,
    ) -> Result<(), BuildError> {
        let objects = run_jobs(modules.len(), jobs.max(1), |_, i| {
            cmo_frontend::compile_module(&modules[i].0, &modules[i].1)
        });
        for (obj, (module, source)) in objects.into_iter().zip(modules) {
            self.fingerprints
                .push(cache::module_fingerprint(module, source));
            self.objects.push(obj?);
        }
        Ok(())
    }

    /// Like [`Compiler::add_sources`], but consults `cache` first:
    /// modules whose fingerprint hits skip the front end entirely and
    /// reuse the cached IL object; misses compile over `jobs` workers
    /// and are stored for next time. All cache traffic happens on the
    /// calling thread in batch order, so traces stay deterministic at
    /// every job count. Returns the number of cache hits.
    ///
    /// # Errors
    ///
    /// Returns frontend diagnostics for the recompiled modules.
    pub fn add_sources_cached(
        &mut self,
        modules: &[(String, String)],
        jobs: usize,
        bcache: &mut BuildCache,
        tel: &Telemetry,
    ) -> Result<usize, BuildError> {
        let base = self.objects.len();
        let mut slots: Vec<Option<IlObject>> = Vec::with_capacity(modules.len());
        let mut misses: Vec<usize> = Vec::new();
        for (i, (module, source)) in modules.iter().enumerate() {
            let fp = cache::module_fingerprint(module, source);
            match bcache.get_module(module, &fp, tel) {
                Some(obj) => slots.push(Some(obj)),
                None => {
                    slots.push(None);
                    misses.push(i);
                }
            }
            self.fingerprints.push(fp);
        }
        let hits = modules.len() - misses.len();
        let compiled = run_jobs(misses.len(), jobs.max(1), |_, k| {
            let (module, source) = &modules[misses[k]];
            cmo_frontend::compile_module(module, source)
        });
        for (k, obj) in compiled.into_iter().enumerate() {
            slots[misses[k]] = Some(obj?);
        }
        for (i, slot) in slots.into_iter().enumerate() {
            let obj = slot.expect("every slot filled by hit or compile");
            if misses.binary_search(&i).is_ok() {
                let (module, _) = &modules[i];
                bcache.put_module(module, &self.fingerprints[base + i], &obj, tel);
            }
            self.objects.push(obj);
        }
        Ok(hits)
    }

    /// Like [`Compiler::add_sources_cached`], but profile-slice aware:
    /// when `options` carries a profile database, module entries are
    /// probed and stored under *composed* keys — the source
    /// fingerprint plus the module's profile-slice fingerprint — so a
    /// retrain re-keys only the modules whose observable counts moved.
    /// A hit under a composed key is a **retained hit**
    /// ([`CacheStats::profile_retained_hits`]).
    ///
    /// Slices are planned from [`ModuleScope`] sidecars stored next to
    /// each object under the source fingerprint alone. When any
    /// module's sidecar is missing (a cold cache, or a cache written
    /// before slicing existed), no module-tier probes happen at all:
    /// every module compiles, scopes are derived from the fresh
    /// objects, and entries plus sidecars are stored for next time —
    /// the all-or-nothing rule that keeps composed keys identical
    /// between sidecar-planned and object-derived runs.
    ///
    /// Without a profile database this is exactly
    /// [`Compiler::add_sources_cached`].
    ///
    /// # Errors
    ///
    /// Returns frontend diagnostics for the recompiled modules.
    pub fn add_sources_cached_with(
        &mut self,
        modules: &[(String, String)],
        options: &BuildOptions,
        bcache: &mut BuildCache,
    ) -> Result<usize, BuildError> {
        let tel = &options.telemetry;
        let Some(db) = options.profile.as_ref() else {
            return self.add_sources_cached(modules, options.jobs, bcache, tel);
        };
        let fps: Vec<String> = modules
            .iter()
            .map(|(module, source)| cache::module_fingerprint(module, source))
            .collect();
        let sidecars: Option<Vec<ModuleScope>> =
            fps.iter().map(|fp| bcache.get_scope(fp)).collect();
        let hits = if let Some(scopes) = sidecars {
            // Every sidecar present: plan slices up front and probe
            // composed keys, all on the calling thread in input order.
            let plan = SlicePlan::compute(&scopes, db, options.slice_granularity, &options.inline);
            emit_slices(&plan, bcache, tel);
            let mut slots: Vec<Option<IlObject>> = Vec::with_capacity(modules.len());
            let mut misses: Vec<usize> = Vec::new();
            for (i, (module, _)) in modules.iter().enumerate() {
                let composed = plan.composed_fp(i, &fps[i]);
                match bcache.get_module(module, &composed, tel) {
                    Some(obj) => {
                        bcache.record_retained_hit();
                        slots.push(Some(obj));
                    }
                    None => {
                        slots.push(None);
                        misses.push(i);
                    }
                }
            }
            let hits = modules.len() - misses.len();
            let compiled = run_jobs(misses.len(), options.jobs.max(1), |_, k| {
                let (module, source) = &modules[misses[k]];
                cmo_frontend::compile_module(module, source)
            });
            for (k, obj) in compiled.into_iter().enumerate() {
                slots[misses[k]] = Some(obj?);
            }
            for (i, slot) in slots.into_iter().enumerate() {
                let obj = slot.expect("every slot filled by hit or compile");
                if misses.binary_search(&i).is_ok() {
                    let composed = plan.composed_fp(i, &fps[i]);
                    bcache.put_module(&modules[i].0, &composed, &obj, tel);
                }
                self.objects.push(obj);
            }
            hits
        } else {
            // At least one sidecar is missing: compile everything,
            // derive scopes from the fresh objects, and seed both the
            // composed entries and the sidecars.
            let compiled = run_jobs(modules.len(), options.jobs.max(1), |_, i| {
                cmo_frontend::compile_module(&modules[i].0, &modules[i].1)
            });
            let mut objects = Vec::with_capacity(modules.len());
            for obj in compiled {
                objects.push(obj?);
            }
            let scopes: Vec<ModuleScope> = objects.iter().map(ModuleScope::of_object).collect();
            let plan = SlicePlan::compute(&scopes, db, options.slice_granularity, &options.inline);
            emit_slices(&plan, bcache, tel);
            for (i, obj) in objects.into_iter().enumerate() {
                bcache.put_scope(&fps[i], &scopes[i]);
                let composed = plan.composed_fp(i, &fps[i]);
                bcache.put_module(&modules[i].0, &composed, &obj, tel);
                self.objects.push(obj);
            }
            0
        };
        self.fingerprints.extend(fps);
        Ok(hits)
    }

    /// Adds a pre-compiled IL object (e.g. read back from disk, the
    /// `make` flow of §6.1).
    pub fn add_object(&mut self, obj: IlObject) {
        self.fingerprints
            .push(cache::object_fingerprint(&obj.module_name, &obj.to_bytes()));
        self.objects.push(obj);
    }

    /// Number of modules added.
    #[must_use]
    pub fn n_modules(&self) -> usize {
        self.objects.len()
    }

    /// Builds the program at the requested options.
    ///
    /// # Errors
    ///
    /// Link errors, optimizer out-of-memory (hard NAIM limit), or a
    /// missing `main`.
    pub fn build(&self, options: &BuildOptions) -> Result<BuildOutput, BuildError> {
        build_objects(self.objects.clone(), options)
    }

    /// Like [`Compiler::build`], but consults `bcache` for a
    /// whole-build replay first and stores the result on a miss. See
    /// [`build_objects_cached`].
    ///
    /// # Errors
    ///
    /// See [`Compiler::build`]; additionally propagates cache
    /// persistence I/O failures.
    pub fn build_cached(
        &self,
        options: &BuildOptions,
        bcache: &mut BuildCache,
    ) -> Result<BuildOutput, BuildError> {
        build_objects_cached(
            self.objects.clone(),
            &self.fingerprints,
            options,
            Some(bcache),
        )
    }

    /// The per-module content fingerprints, parallel to the added
    /// objects.
    #[must_use]
    pub fn fingerprints(&self) -> &[String] {
        &self.fingerprints
    }
}

/// Emits one `profile_slice` trace event per planned slice (in module
/// input order, on the calling thread) and folds the slice counters
/// into the cache stats.
fn emit_slices(plan: &SlicePlan, bcache: &mut BuildCache, tel: &Telemetry) {
    for slice in &plan.slices {
        bcache.record_profile_slice(slice.stale);
        tel.emit(TraceEvent::ProfileSlice {
            module: slice.module.clone(),
            routines: slice.routines,
            stale: slice.stale,
            fp: slice.fp.clone(),
        });
    }
}

/// Correlates stored profile block counts with a body's current shape
/// (§6.2): fresh data is used as-is; stale data is clipped to the
/// current block count ("benefits diminish over time").
fn correlated_counts(db: &ProfileDb, name: &str, body: &RoutineBody) -> Option<Vec<u64>> {
    let current = shape_of(body);
    match db.lookup(name, current) {
        (Freshness::Missing, _) => None,
        (_, Some(p)) => {
            let mut counts = p.blocks.clone();
            counts.resize(body.blocks.len(), 0);
            Some(counts)
        }
        (_, None) => None,
    }
}

/// Aggregates per-site counts into caller→callee arcs for clustering.
fn arcs_from(
    program: &Program,
    bodies: &[RoutineBody],
    site_count: impl Fn(RoutineId, u32) -> u64,
) -> Vec<CallArc> {
    use std::collections::BTreeMap;
    let mut agg: BTreeMap<(RoutineId, RoutineId), u64> = BTreeMap::new();
    for (i, body) in bodies.iter().enumerate() {
        let caller = RoutineId::from_index(i);
        for block in &body.blocks {
            for instr in &block.instrs {
                if let cmo_ir::Instr::Call { callee, site, .. } = instr {
                    *agg.entry((caller, callee.id())).or_insert(0) += site_count(caller, site.0);
                }
            }
        }
    }
    let _ = program;
    agg.into_iter()
        .map(|((caller, callee), weight)| CallArc {
            caller,
            callee,
            weight,
        })
        .collect()
}

/// Builds a set of IL objects at the requested options. This is the
/// paper's "linker encounters IL objects and sends them to the
/// optimizer and code generator" flow.
///
/// # Errors
///
/// See [`Compiler::build`].
pub fn build_objects(
    objects: Vec<IlObject>,
    options: &BuildOptions,
) -> Result<BuildOutput, BuildError> {
    let tel = options.telemetry.clone();
    let unit = {
        let _p = tel.phase("link");
        link_objects(objects)?
    };
    if unit.program.main_routine().is_none() {
        return Err(BuildError::NoMain);
    }
    let mut report = BuildReport {
        total_modules: unit.program.modules().len(),
        total_loc: unit.program.total_source_lines(),
        ..BuildReport::default()
    };
    let db = options.profile.as_ref().filter(|_| options.pbo);

    // === The HLO stage (+O4 only). ===
    let (program, bodies, symtabs, maintained_counts, dead, o4_arcs) =
        if options.level == OptLevel::O4 {
            let _hlo_phase = tel.phase("hlo");
            // Coarse-grained selectivity (§5): pick CMO modules by ranked
            // call sites. Without PBO or a percentage, everything is CMO.
            let plan = match (db, options.selectivity) {
                (Some(db), Some(pct)) => {
                    let _p = tel.phase("select");
                    Some(coarse_select_traced(
                        &unit.program,
                        &unit.bodies,
                        db,
                        pct,
                        &tel,
                    )?)
                }
                _ => None,
            };
            let (targets, cmo_modules, cmo_loc): (Option<BTreeSet<RoutineId>>, usize, u64) =
                match &plan {
                    Some(plan) => {
                        let loc = plan
                            .cmo_modules
                            .iter()
                            .map(|&m| u64::from(unit.program.module(m).source_lines))
                            .sum();
                        (
                            Some(plan.hot_routines.iter().copied().collect()),
                            plan.cmo_modules.len(),
                            loc,
                        )
                    }
                    None => (None, unit.program.modules().len(), report.total_loc),
                };
            report.cmo_modules = cmo_modules;
            report.cmo_loc = cmo_loc;

            let mut session = {
                let _p = tel.phase("read_in");
                HloSession::new_with_telemetry(unit, options.naim.clone(), db, tel.clone())?
            };
            {
                let _p = tel.phase("ipa");
                // Read-in pass: whole-program facts need every routine (§5).
                let facts = GlobalFacts::build(&mut session)?;
                let fold_targets: Vec<RoutineId> = match &targets {
                    Some(t) => t.iter().copied().collect(),
                    None => (0..session.n_routines())
                        .map(RoutineId::from_index)
                        .collect(),
                };
                fold_globals(&mut session, &facts, &fold_targets)?;
                session.unload_all()?;
            }

            // Inlining. Without PBO the heuristics "drive the compiler to
            // thoroughly optimize all routines" (§5): every callee up to
            // the hot threshold becomes inlinable everywhere.
            let mut inline_opts = options.inline.clone();
            inline_opts.targets = targets;
            if db.is_none() {
                // "Our heuristics drive the compiler to thoroughly
                // optimize all routines" (§5): without profiles, medium
                // callees become inlinable everywhere, at real cost in
                // code growth, time, and memory.
                inline_opts.small_callee_il = inline_opts.small_callee_il.max(80);
            }
            // Cloning (when profiles justify the code growth) runs in
            // the same per-cluster fan-out, after each cluster's
            // inlining.
            let clone_opts = db.is_some().then(|| cmo_hlo::CloneOptions {
                min_callee_il: inline_opts.hot_callee_il,
                targets: inline_opts.targets.clone(),
                ..cmo_hlo::CloneOptions::default()
            });

            // WHOPR-style cluster partition: condense the call graph
            // into independent clusters and extract their inputs.
            let plan = {
                let _p = tel.phase("partition");
                plan_clusters(&mut session, Some(&inline_opts), clone_opts.as_ref())?
            };
            report.clusters = plan.stats();

            // Inline + clone, cluster by cluster. Clusters share no
            // mutable state, so they fan out over the worker pool —
            // except under an op limit, whose single global sequential
            // counter (§6.3 bisection) forces the sequential path. The
            // merge is keyed on cluster index, never completion order,
            // so stats, report, and trace are byte-identical at any -j.
            {
                let _p = tel.phase("inline");
                let config = session.loader_config();
                let workers = options.jobs.max(1);
                let outcomes = if inline_opts.op_limit.is_some() || workers <= 1 {
                    run_clusters_seq(
                        &session.program,
                        &plan,
                        &config,
                        Some(&inline_opts),
                        clone_opts.as_ref(),
                        &tel,
                    )?
                } else {
                    let program = &session.program;
                    let results = run_jobs(plan.inputs().len(), workers, |_, i| {
                        run_cluster(
                            program,
                            &plan,
                            i,
                            &config,
                            Some(&inline_opts),
                            clone_opts.as_ref(),
                            None,
                            &tel,
                        )
                    });
                    let mut outcomes = Vec::with_capacity(results.len());
                    for r in results {
                        outcomes.push(r?);
                    }
                    outcomes
                };
                let (inline_stats, clone_stats) = merge_outcomes(&mut session, &plan, outcomes)?;
                report.compile_work +=
                    inline_stats.inlines * 200 + inline_stats.considered + clone_stats.clones * 150;
            }

            // Post-inline call graph: dead-routine detection and cluster
            // arcs. The graph's edge counts are the *maintained* site
            // counts (scaled through inlining), not the raw database —
            // inlining created fresh sites the database has never seen.
            let _cg_phase = tel.phase("callgraph");
            let graph = CallGraph::build(&mut session)?;
            let main = session.program.main_routine().expect("checked above");
            let reach = graph.reachable_from(main);
            let dead: Vec<RoutineId> = (0..session.n_routines())
                .map(RoutineId::from_index)
                .filter(|r| !reach[r.index()])
                .collect();
            session.record_dead_routines(dead.len() as u64);
            if tel.is_enabled() {
                for &r in &dead {
                    let program = &session.program;
                    tel.emit(TraceEvent::DeadRoutine {
                        routine: program.name(program.routine(r).name).to_owned(),
                    });
                }
            }
            let maintained_arcs: Option<Vec<CallArc>> = options.pbo.then(|| {
                use std::collections::BTreeMap;
                let mut agg: BTreeMap<(RoutineId, RoutineId), u64> = BTreeMap::new();
                for e in &graph.edges {
                    *agg.entry((e.caller, e.callee)).or_insert(0) += e.count;
                }
                agg.into_iter()
                    .map(|((caller, callee), weight)| CallArc {
                        caller,
                        callee,
                        weight,
                    })
                    .collect()
            });
            session.unload_all()?;
            drop(_cg_phase);

            report.hlo = session.stats();
            report.loader = session.loader_stats();
            report.peak_memory = session.memory();
            report.compile_work += session.loader_stats().work_units;
            let (program, bodies, symtabs, counts) = {
                let _p = tel.phase("write_out");
                session.into_parts()?
            };
            (program, bodies, symtabs, counts, dead, maintained_arcs)
        } else {
            report.cmo_modules = 0;
            report.cmo_loc = 0;
            let n = unit.bodies.len();
            let counts = vec![None; n];
            (
                unit.program,
                unit.bodies,
                unit.symtabs,
                counts,
                Vec::new(),
                None,
            )
        };

    // === LLO + instrumentation. ===
    let layout = GlobalLayout::new(&program);
    let effort = match options.level {
        OptLevel::O1 => OptEffort::O1,
        _ => OptEffort::O2,
    };
    let layers = if options.layered {
        db.map(|db| layered_levels(&program, db, 0.95))
    } else {
        None
    };
    let dead_set: BTreeSet<usize> = dead.iter().map(|r| r.index()).collect();
    let llo_phase = tel.phase("llo");
    // Per-routine LLO is the pipeline's embarrassingly-parallel stage
    // (the LTRANS-style fan-out): each routine lowers independently
    // against shared read-only program state. Jobs are keyed by routine
    // index and merged in index order below, so the lowered code — and
    // every downstream byte — is identical at any `-j`. Workers tag
    // their telemetry handle with a worker id and advance only the
    // work clock (commutative adds); no events are emitted here, which
    // is what keeps traces byte-identical across job counts.
    let lowered: Vec<LoweredRoutine> = run_jobs(bodies.len(), options.jobs.max(1), |worker, i| {
        let body = &bodies[i];
        let rid = RoutineId::from_index(i);
        let name = program.name(program.routine(rid).name).to_owned();
        if dead_set.contains(&i) {
            // Dead routine elimination: skip all LLO work, emit a stub.
            return LoweredRoutine {
                name,
                code: vec![cmo_vm::MInstr::Ret { value: None }],
                frame_slots: 0,
                probes: Vec::new(),
                shape: shape_of(body),
                llo_work_bytes: 0,
                il_after_opt: 0,
            };
        }
        let block_counts = if options.pbo {
            match &maintained_counts[i] {
                Some(c) => Some(c.clone()),
                None => db.and_then(|db| correlated_counts(db, &name, body)),
            }
        } else {
            None
        };
        let routine_effort = match &layers {
            Some(layers) if layers.get(&rid) == Some(&OptLayer::Minimal) => OptEffort::O1,
            _ => effort,
        };
        let llo_opts = LloOptions {
            effort: OptEffortOpt(routine_effort),
            instrument: options.instrument,
            block_counts,
        };
        let lr = lower_routine(rid, body, &program, &layout, &llo_opts);
        tel.for_worker(worker)
            .work(u64::from(lr.il_after_opt) * 3 + (lr.llo_work_bytes as u64) / 256);
        lr
    });
    // Stable merge: fold per-routine results into the report in routine
    // order, regardless of which worker produced them.
    for lr in &lowered {
        report.llo_peak_bytes = report.llo_peak_bytes.max(lr.llo_work_bytes);
        report.compile_work += u64::from(lr.il_after_opt) * 3 + (lr.llo_work_bytes as u64) / 256;
    }
    drop(llo_phase);

    // === Final link: clustering + image assembly. ===
    let arcs = match o4_arcs {
        Some(arcs) => Some(arcs),
        None if options.pbo => db.map(|db| {
            arcs_from(&program, &bodies, |rid, site| {
                let name = program.name(program.routine(rid).name);
                db.site_count(name, site).unwrap_or(0)
            })
        }),
        None => None,
    };
    let image = {
        let _p = tel.phase("link_image");
        assemble(
            &program,
            lowered,
            &symtabs,
            &layout,
            &LinkOptions {
                arcs,
                dead,
                telemetry: tel.clone(),
            },
        )
    };
    report.image_instrs = image.code_size();
    report.phases = tel.phases();
    Ok(BuildOutput { image, report })
}

/// [`build_objects`] with an optional incremental cache.
///
/// With a cache attached, the driver derives a whole-build key from
/// the per-module fingerprints (`module_fps`, parallel to `objects`)
/// and the options signature. On a hit, the linked image and the cold
/// run's stored unified report come straight from the cache — HLO,
/// LLO, and linking are skipped entirely and a build-scope `"replay"`
/// trace event records the shortcut. On a miss the build runs
/// normally and its image and report are stored for next time.
///
/// Cached and uncached builds of the same inputs produce
/// byte-identical images; warm and cold `--report-json` documents are
/// byte-identical because the warm run replays the stored report
/// instead of recomputing one.
///
/// # Errors
///
/// See [`build_objects`]. Cache *persistence* failures (a full disk at
/// commit time) never fail the build: they degrade to a `degraded`
/// trace event and the next run starts colder.
pub fn build_objects_cached(
    objects: Vec<IlObject>,
    module_fps: &[String],
    options: &BuildOptions,
    bcache: Option<&mut BuildCache>,
) -> Result<BuildOutput, BuildError> {
    let Some(bcache) = bcache else {
        return build_objects(objects, options);
    };
    let tel = options.telemetry.clone();
    // Opportunistic compaction: when the caller set a dead-byte
    // threshold and the repository has crossed it, compact before the
    // probes. Like persistence, GC failures degrade rather than fail —
    // a build that compiles correctly must not die over cache hygiene.
    if let Some(threshold) = options.gc_threshold_bytes {
        let outcome = match bcache.dead_bytes() {
            Ok(dead) if dead > threshold => bcache.gc(&tel).map(|_| ()),
            Ok(_) => Ok(()),
            Err(e) => Err(e),
        };
        if let Err(e) = outcome {
            tel.emit(TraceEvent::Degraded {
                component: "cache",
                name: "gc".to_owned(),
                error: e.to_string(),
            });
        }
    }
    debug_assert_eq!(
        module_fps.len(),
        objects.len(),
        "one fingerprint per object"
    );
    // With a profile attached, the build tier keys on the vector of
    // per-module slice fingerprints (plus the residual) instead of the
    // monolithic database bytes; scopes re-derived from the objects in
    // hand are identical to the sidecar-planned ones, so the key is
    // stable across cold and warm runs.
    let key = match options.profile.as_ref() {
        Some(db) => {
            let scopes: Vec<ModuleScope> = objects.iter().map(ModuleScope::of_object).collect();
            let plan = SlicePlan::compute(&scopes, db, options.slice_granularity, &options.inline);
            cache::build_key_sliced(module_fps, &plan, options)
        }
        None => cache::build_key(module_fps, options),
    };
    if let Some((image, stored)) = bcache.get_build(&key, &tel) {
        tel.emit(TraceEvent::Cache {
            action: "replay",
            scope: "build",
            name: key.clone(),
            bytes: 0,
        });
        let report = BuildReport {
            cmo_modules: stored.cmo_modules,
            total_modules: stored.total_modules,
            cmo_loc: stored.cmo_loc,
            total_loc: stored.total_loc,
            hlo: stored.hlo,
            clusters: stored.clusters,
            loader: stored.loader,
            peak_memory: stored.memory,
            llo_peak_bytes: stored.llo_peak_bytes,
            compile_work: stored.compile_work,
            image_instrs: stored.image_instrs,
            cache: bcache.stats(),
            faults: stored.faults.clone(),
            phases: stored.phases.clone(),
            replayed: Some(stored),
        };
        persist_or_degrade(bcache, &tel);
        return Ok(BuildOutput { image, report });
    }
    let mut out = build_objects(objects, options)?;
    // Snapshot the cache counters *before* building the report that
    // gets stored, so the stored report equals the one this cold run
    // emits — the warm replay then matches byte for byte. The remote
    // tier's counters are snapshotted at the same point for the same
    // reason (the put/persist pushes below deliberately land after the
    // snapshot on every path).
    out.report.cache = bcache.stats();
    out.report.faults.remote = bcache.remote_stats();
    let stored = CompileReport::from_build(&out.report);
    bcache.put_build(&key, &out.image, &stored, &tel);
    persist_or_degrade(bcache, &tel);
    Ok(out)
}

/// Commits the cache, downgrading a persist failure (full disk,
/// revoked permissions) to a `degraded` trace event: a build that
/// compiled correctly must not fail because its *cache* could not be
/// written — the next run simply starts colder.
fn persist_or_degrade(bcache: &mut BuildCache, tel: &Telemetry) {
    if let Err(e) = bcache.persist() {
        tel.emit(TraceEvent::Degraded {
            component: "cache",
            name: "persist".to_owned(),
            error: e.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_module_compiler() -> Compiler {
        let mut cc = Compiler::new();
        cc.add_source(
            "util",
            r#"
            global factor: int = 3;
            fn scale(x: int) -> int { return x * factor; }
            fn unused_export(x: int) -> int { return x - 1; }
            "#,
        )
        .unwrap();
        cc.add_source(
            "app",
            r#"
            extern fn scale(x: int) -> int;
            fn main() -> int {
                var i: int = 0;
                var acc: int = 0;
                while (i < 200) {
                    acc = acc + scale(i);
                    i = i + 1;
                }
                output(acc);
                return acc % 1000;
            }
            "#,
        )
        .unwrap();
        cc
    }

    #[test]
    fn all_levels_agree_on_semantics() {
        let cc = two_module_compiler();
        let o1 = cc.build(&BuildOptions::new(OptLevel::O1)).unwrap();
        let o2 = cc.build(&BuildOptions::o2()).unwrap();
        let o4 = cc.build(&BuildOptions::new(OptLevel::O4)).unwrap();
        let r1 = o1.run(&[]).unwrap();
        let r2 = o2.run(&[]).unwrap();
        let r4 = o4.run(&[]).unwrap();
        assert_eq!(r1.checksum, r2.checksum);
        assert_eq!(r2.checksum, r4.checksum);
        assert!(r2.cycles <= r1.cycles);
        assert!(
            r4.cycles < r2.cycles,
            "CMO must beat O2: {} vs {}",
            r4.cycles,
            r2.cycles
        );
    }

    #[test]
    fn full_pbo_pipeline_beats_o2() {
        let cc = two_module_compiler();
        let train = cc.build(&BuildOptions::instrumented()).unwrap();
        let db = train.run_for_profile(&[]).unwrap();
        let o2 = cc.build(&BuildOptions::o2()).unwrap();
        let best = cc
            .build(
                &BuildOptions::new(OptLevel::O4)
                    .with_profile_db(db)
                    .with_selectivity(100.0),
            )
            .unwrap();
        let r2 = o2.run(&[]).unwrap();
        let rb = best.run(&[]).unwrap();
        assert_eq!(r2.checksum, rb.checksum);
        assert!(rb.cycles < r2.cycles);
        assert!(best.report.hlo.inlines > 0);
    }

    #[test]
    fn dead_exports_are_stubbed_at_o4() {
        let cc = two_module_compiler();
        let o4 = cc.build(&BuildOptions::new(OptLevel::O4)).unwrap();
        assert!(o4.report.hlo.dead_routines >= 1, "unused_export is dead");
    }

    #[test]
    fn selectivity_reports_loc_fraction() {
        let cc = two_module_compiler();
        let train = cc.build(&BuildOptions::instrumented()).unwrap();
        let db = train.run_for_profile(&[]).unwrap();
        let half = cc
            .build(
                &BuildOptions::new(OptLevel::O4)
                    .with_profile_db(db)
                    .with_selectivity(50.0),
            )
            .unwrap();
        assert!(half.report.cmo_modules >= 1);
        assert!(half.report.cmo_loc <= half.report.total_loc);
    }

    #[test]
    fn missing_main_is_an_error() {
        let mut cc = Compiler::new();
        cc.add_source("lib", "fn f() -> int { return 1; }").unwrap();
        assert!(matches!(
            cc.build(&BuildOptions::o2()),
            Err(BuildError::NoMain)
        ));
    }

    #[test]
    fn profile_from_uninstrumented_image_is_an_error() {
        let cc = two_module_compiler();
        let o2 = cc.build(&BuildOptions::o2()).unwrap();
        assert!(matches!(
            o2.run_for_profile(&[]),
            Err(BuildError::NotInstrumented)
        ));
    }

    #[test]
    fn builds_are_deterministic() {
        let cc = two_module_compiler();
        let train = cc.build(&BuildOptions::instrumented()).unwrap();
        let db = train.run_for_profile(&[]).unwrap();
        let opts = BuildOptions::new(OptLevel::O4)
            .with_profile_db(db)
            .with_selectivity(40.0);
        let a = cc.build(&opts).unwrap();
        let b = cc.build(&opts).unwrap();
        assert_eq!(a.image.code, b.image.code, "same inputs, same image (§6.2)");
    }

    #[test]
    fn retrain_keeps_untouched_module_slices_warm() {
        use cmo_naim::{MemStorage, Storage};
        use cmo_profile::ProbeKey;
        use std::sync::Arc;
        let modules: Vec<(String, String)> = vec![
            (
                "util".to_owned(),
                "global factor: int = 3;
                 fn scale(x: int) -> int { return x * factor; }"
                    .to_owned(),
            ),
            (
                "app".to_owned(),
                "extern fn scale(x: int) -> int;
                 extern fn island(x: int) -> int;
                 fn main() -> int {
                     var i: int = 0;
                     var acc: int = 0;
                     while (i < 200) {
                         acc = acc + scale(i);
                         i = i + 1;
                     }
                     acc = acc + island(3);
                     return acc % 1000;
                 }"
                .to_owned(),
            ),
            (
                // Large (il > small_callee_il) and cold (one call):
                // couples with nobody, so its slice is its own.
                "isl".to_owned(),
                "fn island(x: int) -> int {
                     var a: int = x;
                     a = a + 1; a = a + 2; a = a + 3; a = a + 4;
                     a = a + 5; a = a + 6; a = a + 7; a = a + 8;
                     return a;
                 }"
                .to_owned(),
            ),
        ];
        let mut cc = Compiler::new();
        for (module, source) in &modules {
            cc.add_source(module, source).unwrap();
        }
        let train = cc.build(&BuildOptions::instrumented()).unwrap();
        let db1 = train.run_for_profile(&[]).unwrap();
        // The retrain: only the island's internal counts move.
        let island_shape = crate::slices::ModuleScope::of_object(&cc.objects[2])
            .routines
            .iter()
            .find(|r| r.name == "island")
            .expect("island defined")
            .shape;
        let mut db2 = db1.clone();
        db2.record(
            &[(ProbeKey::block("island", 0), 5_000)],
            &[("island".to_owned(), island_shape)],
        );

        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let tel = Telemetry::disabled();
        let opts = |db: &ProfileDb| BuildOptions::new(OptLevel::O4).with_profile_db(db.clone());

        // Cold profiled build: everything compiles, slices are seeded.
        let mut cache = BuildCache::open_on(Arc::clone(&storage), &tel).unwrap();
        let mut cold_cc = Compiler::new();
        let hits = cold_cc
            .add_sources_cached_with(&modules, &opts(&db1), &mut cache)
            .unwrap();
        assert_eq!(hits, 0);
        assert_eq!(cache.stats().profile_slices, 3);
        assert_eq!(cache.stats().profile_stale_slices, 0);
        cold_cc.build_cached(&opts(&db1), &mut cache).unwrap();

        // Warm build under the retrained database: only the perturbed
        // module re-keys; the other slices are retained hits.
        let mut warm_cache = BuildCache::open_on(Arc::clone(&storage), &tel).unwrap();
        let mut warm_cc = Compiler::new();
        let hits = warm_cc
            .add_sources_cached_with(&modules, &opts(&db2), &mut warm_cache)
            .unwrap();
        assert_eq!(hits, 2, "util and app slices survive the retrain");
        assert_eq!(warm_cache.stats().profile_retained_hits, 2);
        assert_eq!(warm_cache.stats().module_misses, 1);
        let warm = warm_cc.build_cached(&opts(&db2), &mut warm_cache).unwrap();
        assert!(
            warm.report.replayed.is_none(),
            "moved slice must re-key the build tier"
        );

        // Byte-identity bar: the retained-warm image equals a fresh
        // cold build of the same inputs under the same database.
        let fresh = cc.build(&opts(&db2)).unwrap();
        assert_eq!(warm.image.code, fresh.image.code);

        // Same retrain replayed at -j4: same hits, same bytes.
        let mut j4_cache = BuildCache::open_on(Arc::clone(&storage), &tel).unwrap();
        let mut j4_cc = Compiler::new();
        let hits = j4_cc
            .add_sources_cached_with(&modules, &opts(&db2).with_jobs(4), &mut j4_cache)
            .unwrap();
        assert_eq!(hits, 3, "second retrain build is fully warm");
        let j4 = j4_cc
            .build_cached(&opts(&db2).with_jobs(4), &mut j4_cache)
            .unwrap();
        assert!(j4.report.replayed.is_some(), "build tier replays");
        assert_eq!(j4.image.code, fresh.image.code);
    }

    #[test]
    fn hard_memory_limit_fails_unselective_cmo() {
        let cc = two_module_compiler();
        let tiny = NaimConfig::disabled().hard_limit(2_000);
        let result = cc.build(&BuildOptions::new(OptLevel::O4).with_naim(tiny));
        assert!(matches!(result, Err(BuildError::Naim(_))));
    }
}
