#![warn(missing_docs)]
//! Scalable cross-module optimization — the reproduction's public
//! facade.
//!
//! This crate is the "cc driver" of the framework described in *Scalable
//! Cross-Module Optimization* (Ayers, de Jong, Peyton, Schooler; PLDI
//! 1998): it wires the MLC frontend, IL linking, the NAIM-backed
//! high-level optimizer, the low-level optimizer, and the clustering
//! linker into the HP-UX-style option surface:
//!
//! | Option | Meaning |
//! |---|---|
//! | `+O1` | optimize only within basic blocks |
//! | `+O2` | full intraprocedural optimization (the baseline of Figure 1) |
//! | `+O2 +P` | PBO: profile-guided layout and clustering |
//! | `+O4` | CMO: cross-module interprocedural optimization |
//! | `+O4 +P` | CMO+PBO: hot-site inlining, selectivity |
//! | `+I` | instrument for profile collection |
//!
//! # Example
//!
//! ```
//! use cmo::{Compiler, BuildOptions, OptLevel};
//!
//! # fn main() -> Result<(), cmo::BuildError> {
//! let mut cc = Compiler::new();
//! cc.add_source("util", "fn inc(x: int) -> int { return x + 1; }")?;
//! cc.add_source(
//!     "app",
//!     r#"
//!     extern fn inc(x: int) -> int;
//!     fn main() -> int {
//!         var i: int = 0;
//!         while (i < 100) { i = inc(i); }
//!         return i;
//!     }
//!     "#,
//! )?;
//!
//! // Train: instrumented +O2 build, run, collect the profile.
//! let train = cc.build(&BuildOptions::instrumented())?;
//! let db = train.run_for_profile(&[])?;
//!
//! // Ship: +O4 +P.
//! let fast = cc.build(&BuildOptions::new(OptLevel::O4).with_profile_db(db))?;
//! let result = fast.run(&[])?;
//! assert_eq!(result.returned, 100);
//! # Ok(())
//! # }
//! ```

mod cache;
mod driver;
mod isolate;
mod parallel;
mod project;
mod report;
mod slices;

pub use cache::{
    build_key, build_key_sliced, module_fingerprint, object_fingerprint, options_signature,
    BuildCache, CacheEntry, CacheStats, GcStats, CACHE_FORMAT,
};
pub use driver::{
    build_objects, build_objects_cached, BuildError, BuildOptions, BuildOutput, BuildReport,
    Compiler, OptLevel,
};
pub use isolate::{isolate_faulty_op, isolate_inline_ops, InlineIsolation, IsolationReport};
pub use parallel::{default_jobs, run_jobs, try_run_jobs, JobError};
pub use project::Project;
pub use report::{CompileReport, FaultStats};
pub use slices::{ModuleScope, ModuleSlice, ScopeRoutine, SliceGranularity, SlicePlan};

// Re-export the pieces a downstream user composes with.
pub use cmo_frontend::compile_module;
pub use cmo_hlo::InlineOptions;
pub use cmo_ir::IlObject;
pub use cmo_naim::{
    CacheService, DiskStorage, Fault, FaultyStorage, FlakyTransport, LoopbackTransport, MemStorage,
    NaimConfig, NaimLevel, RemoteStats, RemoteStorage, RemoteTransport, RepoRecovery, RetryPolicy,
    Storage, StorageFile, TcpTransport, Thresholds, TieredStorage, WireFault,
};
pub use cmo_profile::ProfileDb;
pub use cmo_telemetry::{PhaseRecord, Telemetry, TraceEvent};
pub use cmo_vm::{ExecResult, RunConfig};
