//! Per-module profile slices: project the profile database onto what
//! each module can observe, so retraining re-keys only the modules
//! whose observable counts actually moved.
//!
//! Before this module existed, every profile-sensitive cache entry was
//! keyed on the *whole* database's serialized contents (its epoch): one
//! `cmocc --run` retrain invalidated the entire warm tier. The GCC
//! LTO/WHOPR lineage solves this with partition-local profile
//! summaries; we do the same at module granularity (§6.2).
//!
//! A module's **scope** is the set of routine names whose profile data
//! can influence compilation work derived from that module: its own
//! defined routines plus, depending on
//! [`SliceGranularity`], the cross-module inline/clone candidates its
//! call sites couple with (mirroring the `may_couple` predicate the
//! cluster partitioner uses). The scope is computed from structure the
//! IL object already carries — routine names, IL sizes, and per-site
//! callee names — and cached next to the object as a
//! [`ModuleScope`] sidecar so warm builds can re-derive slices without
//! running the front end.
//!
//! The **slice fingerprint** is
//! [`ProfileDb::slice_fingerprint`] over the scope: a 128-bit content
//! hash of the database's projection onto those names. Composed with
//! the source fingerprint it keys the module tier; the vector of slice
//! fingerprints (plus a residual slice covering database routines no
//! module observes — they can still steer coarse selectivity) keys the
//! whole-build tier.
//!
//! Scope precision is a *hit-rate* lever, never a correctness one: IL
//! objects are profile-independent, and the build key covers the union
//! of every slice plus the residual, so an over- or under-coupled
//! scope can only cost recompilation, not wrong bytes.

use cmo_hlo::InlineOptions;
use cmo_ir::{CalleeRef, IlObject};
use cmo_llo::shape_of;
use cmo_naim::{DecodeError, Decoder, Encoder};
use cmo_profile::{Freshness, ProfileDb, RoutineShape};
use std::collections::{BTreeMap, BTreeSet};

/// How wide a module's profile-slice scope reaches
/// (`cmocc --profile-slice-granularity`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SliceGranularity {
    /// Defined routines plus direct inline/clone candidates only —
    /// tightest slices, may re-key a module whose cluster partner's
    /// counts moved only after the build-tier miss recompiles it.
    Module,
    /// Defined routines plus the transitive closure of coupled call
    /// edges (the cluster partitioner's `may_couple` predicate) — the
    /// default: slices align with the clusters HLO actually forms.
    #[default]
    Cluster,
    /// Every routine name in the program — one retrain re-keys
    /// everything, reproducing the pre-slice whole-profile behaviour.
    Whole,
}

impl SliceGranularity {
    /// The `--profile-slice-granularity` spelling of this variant.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SliceGranularity::Module => "module",
            SliceGranularity::Cluster => "cluster",
            SliceGranularity::Whole => "whole",
        }
    }

    /// Parses a `--profile-slice-granularity` value.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic listing the accepted spellings.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "module" => Ok(SliceGranularity::Module),
            "cluster" => Ok(SliceGranularity::Cluster),
            "whole" => Ok(SliceGranularity::Whole),
            other => Err(format!(
                "bad --profile-slice-granularity value: `{other}` (expected module, cluster, or whole)"
            )),
        }
    }
}

/// One routine's scope-relevant structure: enough to mirror the
/// cluster partitioner's coupling predicate and the §6.2 freshness
/// check without the body in hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeRoutine {
    /// The routine's name (object-file linkage name).
    pub name: String,
    /// IL size in instructions (the inline/clone size heuristics).
    pub il_size: u32,
    /// Current structural shape, compared against the database's
    /// recorded shape to detect stale slices.
    pub shape: RoutineShape,
    /// `(call-site id, callee name)` for every call whose callee is
    /// still a by-name reference (pre-link objects carry only those).
    pub callees: Vec<(u32, String)>,
}

/// The scope metadata of one module, derived from its IL object and
/// stored in the cache as a `scope:{fingerprint}` sidecar so warm
/// builds can plan slices before deciding what to recompile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleScope {
    /// The module's name.
    pub module: String,
    /// Scope-relevant structure per defined routine, in object order.
    pub routines: Vec<ScopeRoutine>,
}

impl ModuleScope {
    /// Derives the scope metadata from an IL object.
    #[must_use]
    pub fn of_object(obj: &IlObject) -> ModuleScope {
        let routines = obj
            .routines
            .iter()
            .map(|def| {
                let mut callees = Vec::new();
                for block in &def.body.blocks {
                    for instr in &block.instrs {
                        if let cmo_ir::Instr::Call {
                            callee: CalleeRef::Name(sym),
                            site,
                            ..
                        } = instr
                        {
                            callees.push((site.0, obj.strings.resolve(*sym).to_owned()));
                        }
                    }
                }
                ScopeRoutine {
                    name: obj.strings.resolve(def.name).to_owned(),
                    il_size: u32::try_from(def.body.instr_count()).unwrap_or(u32::MAX),
                    shape: shape_of(&def.body),
                    callees,
                }
            })
            .collect();
        ModuleScope {
            module: obj.module_name.clone(),
            routines,
        }
    }

    /// Serializes the scope for the cache sidecar.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.write_str(&self.module);
        enc.write_usize(self.routines.len());
        for r in &self.routines {
            enc.write_str(&r.name);
            enc.write_u32(r.il_size);
            enc.write_u32(r.shape.n_blocks);
            enc.write_u32(r.shape.n_sites);
            enc.write_u64(r.shape.fingerprint);
            enc.write_usize(r.callees.len());
            for (site, callee) in &r.callees {
                enc.write_u32(*site);
                enc.write_str(callee);
            }
        }
    }

    /// Rebuilds a scope written by [`ModuleScope::encode`].
    ///
    /// # Errors
    ///
    /// Returns a decode error for corrupt input.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let module = dec.read_str()?.to_owned();
        let n = dec.read_usize()?;
        let mut routines = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let name = dec.read_str()?.to_owned();
            let il_size = dec.read_u32()?;
            let shape = RoutineShape {
                n_blocks: dec.read_u32()?,
                n_sites: dec.read_u32()?,
                fingerprint: dec.read_u64()?,
            };
            let nc = dec.read_usize()?;
            let mut callees = Vec::with_capacity(nc.min(4096));
            for _ in 0..nc {
                let site = dec.read_u32()?;
                callees.push((site, dec.read_str()?.to_owned()));
            }
            routines.push(ScopeRoutine {
                name,
                il_size,
                shape,
                callees,
            });
        }
        Ok(ModuleScope { module, routines })
    }
}

/// One module's planned slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleSlice {
    /// The module's name (for trace events).
    pub module: String,
    /// Routine names in the slice's scope.
    pub routines: u64,
    /// Whether any in-scope routine's recorded shape no longer matches
    /// the current code — the §6.2 [`Freshness::Stale`] signal. Stale
    /// slices still key deterministically (the source fingerprint
    /// covers the current code, the slice fingerprint the recorded
    /// data), but they are surfaced in the report and trace because
    /// their counts are used with reduced confidence.
    pub stale: bool,
    /// Hex slice fingerprint, composed into cache keys.
    pub fp: String,
}

/// The per-build slice plan: one slice per module plus the residual.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlicePlan {
    /// One slice per module, in module order.
    pub slices: Vec<ModuleSlice>,
    /// Hex fingerprint of the database's projection onto routines *no*
    /// module observes. Such routines (from a profile trained on a
    /// different program version) still steer coarse selectivity's
    /// global site ranking, so the whole-build key must cover them.
    pub residual_fp: String,
}

/// Union-find over scope-name indices, mirroring the cluster
/// partitioner's merge structure (without its size cap — a superset
/// component can only widen a scope, never corrupt it).
struct NameSets {
    parent: Vec<usize>,
}

impl NameSets {
    fn new(n: usize) -> Self {
        NameSets {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

impl SlicePlan {
    /// Plans the slices for one build: mirrors the cluster
    /// partitioner's `may_couple` predicate over by-name call edges,
    /// closes each module's scope accordingly, and fingerprints every
    /// scope's database projection.
    ///
    /// `scopes` must be in module order (parallel to the objects /
    /// fingerprints the caller keys with); the plan's slices come back
    /// in the same order. The selectivity `targets` refinement is
    /// deliberately ignored — it is itself profile-derived, and a
    /// superset coupling only widens scopes.
    #[must_use]
    pub fn compute(
        scopes: &[ModuleScope],
        db: &ProfileDb,
        granularity: SliceGranularity,
        inline: &InlineOptions,
    ) -> SlicePlan {
        // Index every name we may talk about: defined routines first
        // (they carry sizes), then any callee names left over.
        let mut index: BTreeMap<&str, usize> = BTreeMap::new();
        let mut defined_il: BTreeMap<&str, u32> = BTreeMap::new();
        for scope in scopes {
            for r in &scope.routines {
                let next = index.len();
                index.entry(&r.name).or_insert(next);
                defined_il.entry(&r.name).or_insert(r.il_size);
            }
        }
        for scope in scopes {
            for r in &scope.routines {
                for (_, callee) in &r.callees {
                    let next = index.len();
                    index.entry(callee).or_insert(next);
                }
            }
        }
        // The cluster partitioner only considers cloning when profiles
        // are present, with `min_callee_il` raised to the hot-inline
        // bound; mirror that construction (slices exist only when a
        // profile is attached).
        let clone_min_count = cmo_hlo::CloneOptions::default().min_count;
        let may_couple = |caller: &str, site: u32, callee_il: u32| {
            let count = db.site_count(caller, site).unwrap_or(0);
            let inline_couples = callee_il <= inline.small_callee_il
                || (count >= inline.hot_site_min_count && callee_il <= inline.hot_callee_il);
            let clone_couples = count >= clone_min_count && callee_il > inline.hot_callee_il;
            inline_couples || clone_couples
        };
        // Coupled-name components (used by Cluster; Module keeps only
        // the direct edges; Whole ignores the graph entirely).
        let mut sets = NameSets::new(index.len());
        if granularity == SliceGranularity::Cluster {
            for scope in scopes {
                for r in &scope.routines {
                    for (site, callee) in &r.callees {
                        let Some(&callee_il) = defined_il.get(callee.as_str()) else {
                            continue; // extern with no body: nothing to inline
                        };
                        if may_couple(&r.name, *site, callee_il) {
                            sets.union(index[r.name.as_str()], index[callee.as_str()]);
                        }
                    }
                }
            }
        }
        let mut members: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
        if granularity == SliceGranularity::Cluster {
            for (&name, &i) in &index {
                members.entry(sets.find(i)).or_default().push(name);
            }
        }
        let all_names: BTreeSet<&str> = index.keys().copied().collect();

        let mut union: BTreeSet<&str> = BTreeSet::new();
        let mut slices = Vec::with_capacity(scopes.len());
        for scope in scopes {
            let mut names: BTreeSet<&str> = BTreeSet::new();
            match granularity {
                SliceGranularity::Whole => {
                    names.extend(all_names.iter().copied());
                }
                SliceGranularity::Module => {
                    for r in &scope.routines {
                        names.insert(&r.name);
                        for (site, callee) in &r.callees {
                            if let Some(&callee_il) = defined_il.get(callee.as_str()) {
                                if may_couple(&r.name, *site, callee_il) {
                                    names.insert(callee);
                                }
                            }
                        }
                    }
                }
                SliceGranularity::Cluster => {
                    for r in &scope.routines {
                        names.extend(&members[&sets.find(index[r.name.as_str()])]);
                    }
                }
            }
            let stale = scope.routines.iter().any(|r| {
                names.contains(r.name.as_str()) && db.lookup(&r.name, r.shape).0 == Freshness::Stale
            });
            union.extend(names.iter().copied());
            slices.push(ModuleSlice {
                module: scope.module.clone(),
                routines: names.len() as u64,
                stale,
                fp: db.slice_fingerprint(names).to_hex(),
            });
        }
        let residual: Vec<&str> = db
            .iter()
            .map(|(name, _)| name)
            .filter(|name| !union.contains(name))
            .collect();
        SlicePlan {
            slices,
            residual_fp: db.slice_fingerprint(residual).to_hex(),
        }
    }

    /// The composed module-tier fingerprint: source fingerprint plus
    /// this module's slice fingerprint.
    #[must_use]
    pub fn composed_fp(&self, i: usize, source_fp: &str) -> String {
        format!("{source_fp}+p{}", self.slices[i].fp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmo_profile::{ProbeKey, ProfileDb};

    fn scopes_for(sources: &[(&str, &str)]) -> Vec<ModuleScope> {
        sources
            .iter()
            .map(|(module, source)| {
                ModuleScope::of_object(
                    &cmo_frontend::compile_module(module, source).expect("compiles"),
                )
            })
            .collect()
    }

    fn three_modules() -> Vec<ModuleScope> {
        scopes_for(&[
            ("util", "fn inc(x: int) -> int { return x + 1; }"),
            (
                "app",
                r#"
                extern fn inc(x: int) -> int;
                fn main() -> int {
                    var i: int = 0;
                    while (i < 100) { i = inc(i); }
                    return i;
                }
                "#,
            ),
            (
                "leaf",
                r#"
                fn island(x: int) -> int {
                    var a: int = x; a = a + 1; a = a + 2; a = a + 3;
                    a = a + 4; a = a + 5; a = a + 6; a = a + 7;
                    a = a + 8; a = a + 9; a = a + 10; a = a + 11;
                    return a;
                }
                "#,
            ),
        ])
    }

    fn db_training(scopes: &[ModuleScope], extra_island: u64) -> ProfileDb {
        let mut db = ProfileDb::new();
        let shapes: Vec<(String, cmo_profile::RoutineShape)> = scopes
            .iter()
            .flat_map(|s| s.routines.iter().map(|r| (r.name.clone(), r.shape)))
            .collect();
        db.record(
            &[
                (ProbeKey::block("inc", 0), 100),
                (ProbeKey::site("main", 0), 100),
                (ProbeKey::block("island", 0), 7 + extra_island),
            ],
            &shapes,
        );
        db
    }

    #[test]
    fn scope_derivation_matches_between_object_and_sidecar_codec() {
        for scope in three_modules() {
            let mut enc = Encoder::new();
            scope.encode(&mut enc);
            let bytes = enc.into_bytes();
            let back = ModuleScope::decode(&mut Decoder::new(&bytes)).expect("decodes");
            assert_eq!(back, scope);
        }
    }

    #[test]
    fn cluster_scope_couples_hot_cross_module_edges() {
        let scopes = three_modules();
        let db = db_training(&scopes, 0);
        let plan = SlicePlan::compute(
            &scopes,
            &db,
            SliceGranularity::Cluster,
            &InlineOptions::default(),
        );
        // `inc` is tiny: app couples with util, so both observe inc's
        // counts; the island module observes only itself.
        assert!(plan.slices[1].routines >= 2, "app sees inc");
        assert_eq!(plan.slices[2].routines, 1, "island is alone");
        // Perturbing island's counts moves only island's slice.
        let db2 = db_training(&scopes, 1000);
        let plan2 = SlicePlan::compute(
            &scopes,
            &db2,
            SliceGranularity::Cluster,
            &InlineOptions::default(),
        );
        assert_eq!(plan.slices[0].fp, plan2.slices[0].fp);
        assert_eq!(plan.slices[1].fp, plan2.slices[1].fp);
        assert_ne!(plan.slices[2].fp, plan2.slices[2].fp);
        assert_eq!(plan.residual_fp, plan2.residual_fp);
    }

    #[test]
    fn whole_granularity_moves_every_slice_together() {
        let scopes = three_modules();
        let a = db_training(&scopes, 0);
        let b = db_training(&scopes, 1000);
        let pa = SlicePlan::compute(
            &scopes,
            &a,
            SliceGranularity::Whole,
            &InlineOptions::default(),
        );
        let pb = SlicePlan::compute(
            &scopes,
            &b,
            SliceGranularity::Whole,
            &InlineOptions::default(),
        );
        for (sa, sb) in pa.slices.iter().zip(&pb.slices) {
            assert_ne!(sa.fp, sb.fp, "whole granularity re-keys everything");
        }
    }

    #[test]
    fn residual_covers_database_routines_no_module_observes() {
        let scopes = three_modules();
        let mut db = db_training(&scopes, 0);
        let plan = SlicePlan::compute(
            &scopes,
            &db,
            SliceGranularity::Cluster,
            &InlineOptions::default(),
        );
        // A routine from another program version: observable only
        // through the global selectivity ranking, so it must land in
        // the residual.
        db.record(
            &[(ProbeKey::site("ghost", 0), 9_999)],
            &[(
                "ghost".to_owned(),
                cmo_profile::RoutineShape {
                    n_blocks: 1,
                    n_sites: 1,
                    fingerprint: 42,
                },
            )],
        );
        let plan2 = SlicePlan::compute(
            &scopes,
            &db,
            SliceGranularity::Cluster,
            &InlineOptions::default(),
        );
        for (a, b) in plan.slices.iter().zip(&plan2.slices) {
            assert_eq!(a.fp, b.fp, "no module slice observes ghost");
        }
        assert_ne!(plan.residual_fp, plan2.residual_fp);
    }

    #[test]
    fn stale_shape_marks_the_slice() {
        let scopes = three_modules();
        let mut db = ProfileDb::new();
        // Train island under a *different* shape than the current code.
        db.record(
            &[(ProbeKey::block("island", 0), 7)],
            &[(
                "island".to_owned(),
                cmo_profile::RoutineShape {
                    n_blocks: 99,
                    n_sites: 0,
                    fingerprint: 1,
                },
            )],
        );
        let plan = SlicePlan::compute(
            &scopes,
            &db,
            SliceGranularity::Cluster,
            &InlineOptions::default(),
        );
        assert!(plan.slices[2].stale, "shape mismatch ⇒ stale slice");
        assert!(!plan.slices[0].stale);
    }
}
