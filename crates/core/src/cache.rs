//! Persistent incremental-compilation cache over the content-addressed
//! NAIM repository.
//!
//! The cache lives in a directory (`cmocc --cache-dir DIR`) holding two
//! files:
//!
//! * `repo.naim` — a versioned, checksummed [`Repository`] of
//!   relocatable pool images, each a compacted [`CacheEntry`]
//!   (a front-end IL object, a linked machine image, or a stored
//!   compile report);
//! * `manifest.tsv` — a text index mapping cache keys (module and
//!   build fingerprints) to the content hashes of their entries.
//!
//! Entries are rehydrated through the ordinary NAIM eager-swizzling
//! path: the cache registers the stored pool image with its private
//! [`Loader`] via [`Loader::insert_offloaded`] and fetches it like any
//! offloaded pool. Any repository error on the way back — a short
//! read, a CRC mismatch, a stale index — degrades to a cache miss with
//! an `"invalidate"` trace event and a full recompilation of the
//! affected module; a corrupt cache can cost time, never correctness.
//!
//! # Determinism
//!
//! All cache probes and stores happen on the driver's main thread in
//! module input order, so traces and reports stay byte-identical at
//! every `-j` worker count — and so is the *storage operation stream*,
//! which is what makes the kill-point fault sweep deterministic. A warm
//! full-build hit replays the *cold* run's stored [`CompileReport`]
//! verbatim, which is what makes `--report-json` byte-identical between
//! cold and warm builds.
//!
//! # Crash safety
//!
//! All I/O goes through the [`Storage`] trait (so tests can interpose
//! `FaultyStorage`), and [`BuildCache::persist`] commits a generation
//! in a fixed order:
//!
//! 1. append the repository index segment, then **fsync** `repo.naim`;
//! 2. atomically replace `commit.journal` (write temp → fsync →
//!    rename) recording the synced repository length;
//! 3. atomically replace `manifest.tsv` the same way.
//!
//! On open, the journal rolls an over-long repository back to its last
//! committed length (a crash between steps 1 and 2), the record-chain
//! scan truncates any remaining torn tail, and an unreadable store is
//! recreated from scratch. Each repair emits a `recover` trace event
//! and at worst forces recompilation — never a panic, never stale
//! bytes: manifest entries pointing at rolled-back records simply miss.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use cmo_ir::IlObject;
use cmo_naim::{
    ContentHash, DecodeError, Decoder, DiskStorage, Encoder, Loader, NaimConfig, NaimError,
    PoolKind, Relocatable, Repository, Storage, StorageFile,
};
use cmo_telemetry::{Telemetry, TraceEvent};
use cmo_vm::MachineImage;

use crate::driver::{BuildOptions, OptLevel};
use crate::report::CompileReport;

/// Cache format epoch. Bumped whenever fingerprint inputs, the entry
/// encoding, or the manifest layout change, so stale caches from
/// earlier compiler builds miss cleanly instead of decoding garbage.
pub const CACHE_FORMAT: u32 = 3;

/// First line of `manifest.tsv`.
const MANIFEST_SCHEMA: &str = "cmo.cache.v1";

/// First line of `commit.journal`.
const JOURNAL_SCHEMA: &str = "cmo.journal.v1";

/// Repository file name inside the cache directory.
const REPO_FILE: &str = "repo.naim";

/// Manifest file name inside the cache directory.
const MANIFEST_FILE: &str = "manifest.tsv";

/// Commit-journal file name inside the cache directory.
const JOURNAL_FILE: &str = "commit.journal";

/// Counters for cache activity during one build, surfaced in the
/// `cache` section of the unified report.
///
/// Only counters that are identical between a cold run and the warm
/// run that replays it *at the moment the report is stored* live here;
/// store events are visible in the trace instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Whether a cache directory was attached to this build at all.
    pub enabled: bool,
    /// Module-scope probes satisfied from the cache (front end skipped).
    pub module_hits: u64,
    /// Module-scope probes that missed and recompiled.
    pub module_misses: u64,
    /// Whole-build probes satisfied from the cache (image + report
    /// replayed, HLO/LLO/link skipped).
    pub build_hits: u64,
    /// Entries discarded because they could not be fetched back intact
    /// (truncation, CRC mismatch, dangling manifest line).
    pub invalidations: u64,
}

/// One value stored in the cache repository.
///
/// The discriminant byte leads the relocatable image so a manifest
/// line pointing at the wrong kind of record is detected and
/// invalidated rather than misinterpreted.
#[derive(Debug, Clone)]
pub enum CacheEntry {
    /// A front-end output: one module's IL object.
    Object(IlObject),
    /// A fully linked machine image for a whole build.
    Image(MachineImage),
    /// The unified compile report stored next to an image.
    Report(CompileReport),
}

const TAG_OBJECT: u8 = 1;
const TAG_IMAGE: u8 = 2;
const TAG_REPORT: u8 = 3;

impl Relocatable for CacheEntry {
    fn compact(&self, enc: &mut Encoder) {
        match self {
            CacheEntry::Object(obj) => {
                enc.write_u8(TAG_OBJECT);
                enc.write_bytes(&obj.to_bytes());
            }
            CacheEntry::Image(image) => {
                enc.write_u8(TAG_IMAGE);
                image.encode(enc);
            }
            CacheEntry::Report(report) => {
                enc.write_u8(TAG_REPORT);
                report.encode(enc);
            }
        }
    }

    fn uncompact(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let offset = dec.position();
        match dec.read_u8()? {
            TAG_OBJECT => {
                let bytes = dec.read_bytes()?;
                let obj = IlObject::from_bytes(bytes).map_err(|_| DecodeError::Corrupt {
                    what: "cached IL object failed to decode",
                })?;
                Ok(CacheEntry::Object(obj))
            }
            TAG_IMAGE => Ok(CacheEntry::Image(MachineImage::decode(dec)?)),
            TAG_REPORT => Ok(CacheEntry::Report(CompileReport::decode(dec)?)),
            tag => Err(DecodeError::BadTag { tag, offset }),
        }
    }

    fn expanded_bytes(&self) -> usize {
        match self {
            CacheEntry::Object(obj) => obj.to_bytes().len(),
            CacheEntry::Image(image) => image.approx_bytes(),
            CacheEntry::Report(report) => std::mem::size_of_val(report),
        }
    }
}

/// Outcome of a raw manifest + repository probe.
enum Fetched {
    /// Entry came back intact; payload size on disk in bytes.
    Hit(Box<CacheEntry>, u64),
    /// No manifest line for the key.
    Missing,
    /// Manifest line existed but the entry could not be fetched intact;
    /// the line has been dropped.
    Invalid,
}

/// A persistent build cache rooted at a directory.
///
/// Opened by `cmocc --cache-dir` (or [`BuildCache::open`] directly),
/// consulted by [`crate::Compiler::add_sources_cached`] for per-module
/// front-end reuse and by [`crate::build_objects_cached`] for
/// whole-build replay, and flushed with [`BuildCache::persist`].
#[derive(Debug)]
pub struct BuildCache {
    storage: Arc<dyn Storage>,
    loader: Loader<CacheEntry, StorageFile>,
    manifest: BTreeMap<String, ContentHash>,
    stats: CacheStats,
    /// Crash-recovery repairs performed while opening (rollbacks,
    /// truncations, recreations). Non-zero means persistent state was
    /// repaired and the build will recompile what was lost.
    recovered: u64,
}

impl BuildCache {
    /// Opens (or creates) the cache rooted at `dir`.
    ///
    /// A repository written by an older format version, or one whose
    /// header fails validation, is discarded and recreated fresh — an
    /// incompatible cache is worth nothing, and silently decoding it
    /// would be worse.
    ///
    /// # Errors
    ///
    /// Returns an error only for real I/O failures (unwritable
    /// directory, permission problems) — never for stale or corrupt
    /// cache *content*.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<BuildCache, NaimError> {
        BuildCache::open_traced(dir, &Telemetry::disabled())
    }

    /// [`BuildCache::open`] with a telemetry sink, so crash-recovery
    /// repairs show up as `recover` events in the trace.
    ///
    /// # Errors
    ///
    /// As [`BuildCache::open`].
    pub fn open_traced<P: AsRef<Path>>(dir: P, tel: &Telemetry) -> Result<BuildCache, NaimError> {
        BuildCache::open_on(Arc::new(DiskStorage::new(dir)?), tel)
    }

    /// Opens the cache over any [`Storage`] — the seam the fault-
    /// injection harnesses use to run real builds against in-memory or
    /// deliberately faulty stores.
    ///
    /// Recovery runs here: the commit journal rolls back a
    /// half-committed repository generation, the record-chain scan
    /// truncates a torn tail, and an unreadable repository is recreated
    /// fresh. Each repair emits a `recover` trace event and bumps
    /// [`BuildCache::recovered`].
    ///
    /// # Errors
    ///
    /// Returns an error only for live I/O failures, never for corrupt
    /// content.
    pub fn open_on(storage: Arc<dyn Storage>, tel: &Telemetry) -> Result<BuildCache, NaimError> {
        let mut recovered = 0u64;
        // A crash after the repository fsync but before the journal
        // commit leaves repo.naim longer than the last committed
        // generation: roll the uncommitted suffix back. (The converse
        // — journal ahead of the repository — means the journal itself
        // is the stale file; it is simply ignored.)
        if let Some(committed) = read_journal(storage.as_ref()) {
            if storage.exists(REPO_FILE) {
                let size = storage.size(REPO_FILE)?;
                if size > committed {
                    storage.truncate(REPO_FILE, committed)?;
                    recovered += 1;
                    tel.emit(TraceEvent::Recover {
                        component: "repository",
                        action: "rollback",
                        bytes: size - committed,
                    });
                }
            }
        }
        let backend = |storage: &Arc<dyn Storage>| StorageFile::new(Arc::clone(storage), REPO_FILE);
        let (repo, fresh) = if storage.exists(REPO_FILE) {
            match Repository::open_backend(backend(&storage)) {
                Ok(repo) => (repo, false),
                Err(NaimError::Repository(e)) => return Err(NaimError::Repository(e)),
                // Header/version/decode problems: the cache is from
                // another era (or shredded beyond record recovery).
                // Start over.
                Err(_) => {
                    let old = storage.size(REPO_FILE).unwrap_or(0);
                    recovered += 1;
                    tel.emit(TraceEvent::Recover {
                        component: "repository",
                        action: "recreate",
                        bytes: old,
                    });
                    (Repository::create_backend(backend(&storage))?, true)
                }
            }
        } else {
            (Repository::create_backend(backend(&storage))?, true)
        };
        if let Some(repair) = repo.recovery() {
            recovered += 1;
            tel.emit(TraceEvent::Recover {
                component: "repository",
                action: "truncate",
                bytes: repair.dropped_bytes,
            });
        }
        let manifest = if fresh {
            BTreeMap::new()
        } else {
            read_manifest(storage.as_ref())
        };
        Ok(BuildCache {
            storage,
            loader: Loader::with_repository(NaimConfig::disabled(), repo),
            manifest,
            stats: CacheStats {
                enabled: true,
                ..CacheStats::default()
            },
            recovered,
        })
    }

    /// Crash-recovery repairs performed while opening. Non-zero means
    /// the previous process died mid-commit (or the store was damaged)
    /// and this build starts from the last committed generation.
    #[must_use]
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// Snapshot of the per-build cache counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of records in the underlying repository (tests/bench).
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.loader.repository().record_count()
    }

    /// Probes the cache for a module's front-end output.
    ///
    /// Emits a module-scope `"hit"`, `"miss"`, or `"invalidate"` trace
    /// event; an invalidated entry also counts as a miss because the
    /// module will be recompiled.
    pub fn get_module(&mut self, module: &str, fp: &str, tel: &Telemetry) -> Option<IlObject> {
        match self.fetch(&format!("mod:{fp}")) {
            Fetched::Hit(entry, bytes) => match *entry {
                CacheEntry::Object(obj) => {
                    self.stats.module_hits += 1;
                    emit(tel, "hit", "module", module, bytes);
                    Some(obj)
                }
                _ => {
                    self.manifest.remove(&format!("mod:{fp}"));
                    self.stats.invalidations += 1;
                    self.stats.module_misses += 1;
                    emit(tel, "invalidate", "module", module, bytes);
                    None
                }
            },
            Fetched::Missing => {
                self.stats.module_misses += 1;
                emit(tel, "miss", "module", module, 0);
                None
            }
            Fetched::Invalid => {
                self.stats.invalidations += 1;
                self.stats.module_misses += 1;
                emit(tel, "invalidate", "module", module, 0);
                None
            }
        }
    }

    /// Stores a module's front-end output under its fingerprint.
    ///
    /// Storing never fails the build: an unwritable repository leaves
    /// the cache cold for the next run, nothing more.
    pub fn put_module(&mut self, module: &str, fp: &str, obj: &IlObject, tel: &Telemetry) {
        if let Some(bytes) = self.store(format!("mod:{fp}"), &CacheEntry::Object(obj.clone())) {
            emit(tel, "store", "module", module, bytes);
        }
    }

    /// Probes the cache for a whole build: the linked image plus the
    /// stored report. Both must come back intact for a hit.
    pub fn get_build(
        &mut self,
        key: &str,
        tel: &Telemetry,
    ) -> Option<(MachineImage, CompileReport)> {
        let image = match self.fetch(&format!("img:{key}")) {
            Fetched::Hit(entry, bytes) => match *entry {
                CacheEntry::Image(image) => Some((image, bytes)),
                _ => {
                    self.manifest.remove(&format!("img:{key}"));
                    self.stats.invalidations += 1;
                    emit(tel, "invalidate", "build", key, 0);
                    None
                }
            },
            Fetched::Invalid => {
                self.manifest.remove(&format!("img:{key}"));
                self.stats.invalidations += 1;
                emit(tel, "invalidate", "build", key, 0);
                None
            }
            Fetched::Missing => None,
        };
        let report = match self.fetch(&format!("rpt:{key}")) {
            Fetched::Hit(entry, bytes) => match *entry {
                CacheEntry::Report(report) => Some((report, bytes)),
                _ => {
                    self.manifest.remove(&format!("rpt:{key}"));
                    self.stats.invalidations += 1;
                    emit(tel, "invalidate", "build", key, 0);
                    None
                }
            },
            Fetched::Invalid => {
                self.manifest.remove(&format!("rpt:{key}"));
                self.stats.invalidations += 1;
                emit(tel, "invalidate", "build", key, 0);
                None
            }
            Fetched::Missing => None,
        };
        match (image, report) {
            (Some((image, ib)), Some((report, rb))) => {
                self.stats.build_hits += 1;
                emit(tel, "hit", "build", key, ib + rb);
                Some((image, report))
            }
            _ => {
                emit(tel, "miss", "build", key, 0);
                None
            }
        }
    }

    /// Stores a whole build's image and report under the build key.
    pub fn put_build(
        &mut self,
        key: &str,
        image: &MachineImage,
        report: &CompileReport,
        tel: &Telemetry,
    ) {
        let ib = self.store(format!("img:{key}"), &CacheEntry::Image(image.clone()));
        let rb = self.store(format!("rpt:{key}"), &CacheEntry::Report(report.clone()));
        if let (Some(ib), Some(rb)) = (ib, rb) {
            emit(tel, "store", "build", key, ib + rb);
        }
    }

    /// Commits the current generation: flushes the repository index
    /// segment, fsyncs `repo.naim`, journals the committed length, then
    /// atomically replaces the manifest (write temp → fsync → rename).
    /// A process killed at any point leaves either the previous
    /// generation or this one — never a mix.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the cache directory is no
    /// longer writable.
    pub fn persist(&mut self) -> Result<(), NaimError> {
        self.loader.repository_mut().flush_index()?;
        self.storage.sync(REPO_FILE)?;
        let committed = self.storage.size(REPO_FILE)?;
        write_atomic(
            self.storage.as_ref(),
            JOURNAL_FILE,
            format!("{JOURNAL_SCHEMA}\n{committed}\n").as_bytes(),
        )?;
        let mut text = String::with_capacity(64 * (1 + self.manifest.len()));
        text.push_str(MANIFEST_SCHEMA);
        text.push('\n');
        for (key, hash) in &self.manifest {
            text.push_str(key);
            text.push('\t');
            text.push_str(&hash.to_hex());
            text.push('\n');
        }
        write_atomic(self.storage.as_ref(), MANIFEST_FILE, text.as_bytes())?;
        Ok(())
    }

    fn fetch(&mut self, key: &str) -> Fetched {
        let Some(&hash) = self.manifest.get(key) else {
            return Fetched::Missing;
        };
        let Some(handle) = self.loader.repository().lookup(hash) else {
            self.manifest.remove(key);
            return Fetched::Invalid;
        };
        let bytes = handle.len() as u64;
        let pid = self.loader.insert_offloaded(handle, PoolKind::Ir);
        match self.loader.get(pid) {
            Ok(entry) => Fetched::Hit(Box::new(entry.clone()), bytes),
            Err(_) => {
                self.manifest.remove(key);
                // Unindex the corrupt record too, or a re-store of the
                // same payload would dedup right back onto it.
                self.loader.repository_mut().evict(hash);
                Fetched::Invalid
            }
        }
    }

    /// Compacts and stores `entry`, returning the payload size, or
    /// `None` when the repository refused the write.
    fn store(&mut self, key: String, entry: &CacheEntry) -> Option<u64> {
        let mut enc = Encoder::with_capacity(1024);
        entry.compact(&mut enc);
        let image = enc.into_bytes();
        let handle = self.loader.repository_mut().store(&image).ok()?;
        let hash = self.loader.repository().hash_of(handle)?;
        self.manifest.insert(key, hash);
        Some(handle.len() as u64)
    }
}

fn emit(tel: &Telemetry, action: &'static str, scope: &'static str, name: &str, bytes: u64) {
    tel.emit(TraceEvent::Cache {
        action,
        scope,
        name: name.to_owned(),
        bytes,
    });
}

/// Writes `name` via the temp → fsync → rename protocol, so the file
/// flips atomically from its previous content to `data` and the crash
/// model cannot leave a torn or unsynced-rename version behind.
fn write_atomic(storage: &dyn Storage, name: &str, data: &[u8]) -> std::io::Result<()> {
    let tmp = format!("{name}.tmp");
    storage.write(&tmp, data)?;
    storage.sync(&tmp)?;
    storage.rename(&tmp, name)
}

/// Reads the commit journal: the repository length of the last fully
/// committed generation. `None` when the journal is missing or
/// unreadable — recovery then relies on the record-chain scan alone.
fn read_journal(storage: &dyn Storage) -> Option<u64> {
    let bytes = storage.read(JOURNAL_FILE).ok()?;
    let text = std::str::from_utf8(&bytes).ok()?;
    let mut lines = text.lines();
    if lines.next() != Some(JOURNAL_SCHEMA) {
        return None;
    }
    lines.next()?.trim().parse().ok()
}

fn read_manifest(storage: &dyn Storage) -> BTreeMap<String, ContentHash> {
    let mut manifest = BTreeMap::new();
    let Ok(bytes) = storage.read(MANIFEST_FILE) else {
        return manifest;
    };
    let Ok(text) = std::str::from_utf8(&bytes) else {
        return manifest;
    };
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_SCHEMA) {
        return manifest;
    }
    for line in lines {
        let Some((key, hex)) = line.split_once('\t') else {
            continue;
        };
        let Some(hash) = ContentHash::from_hex(hex) else {
            continue;
        };
        manifest.insert(key.to_owned(), hash);
    }
    manifest
}

/// Fingerprint of an MLC source module: covers the module name, the
/// exact source text, and the cache format epoch.
#[must_use]
pub fn module_fingerprint(module: &str, source: &str) -> String {
    let mut enc = Encoder::with_capacity(source.len() + 64);
    enc.write_u32(CACHE_FORMAT);
    enc.write_str("mlc-src");
    enc.write_str(module);
    enc.write_str(source);
    ContentHash::of(&enc.into_bytes()).to_hex()
}

/// Fingerprint of a pre-compiled IL object: covers its serialized
/// bytes, so any front-end change that alters the object re-keys it.
#[must_use]
pub fn object_fingerprint(module: &str, bytes: &[u8]) -> String {
    let mut enc = Encoder::with_capacity(bytes.len() + 64);
    enc.write_u32(CACHE_FORMAT);
    enc.write_str("il-obj");
    enc.write_str(module);
    enc.write_bytes(bytes);
    ContentHash::of(&enc.into_bytes()).to_hex()
}

/// Digest of every build option that can change the produced image or
/// report.
///
/// `jobs` and NAIM `shards` are deliberately *excluded*: the pipeline
/// produces byte-identical output at every worker and shard count, so
/// a cache populated at `-j4` must hit at `-j1`. The profile database
/// participates through its full serialized content (its epoch), so
/// re-profiling invalidates every profile-sensitive entry.
#[must_use]
pub fn options_signature(options: &BuildOptions) -> String {
    let mut enc = Encoder::with_capacity(256);
    enc.write_u32(CACHE_FORMAT);
    enc.write_str("opts");
    enc.write_u8(match options.level {
        OptLevel::O1 => 1,
        OptLevel::O2 => 2,
        OptLevel::O4 => 4,
    });
    enc.write_bool(options.pbo);
    enc.write_bool(options.instrument);
    match options.selectivity {
        Some(pct) => {
            enc.write_bool(true);
            enc.write_f64(pct);
        }
        None => enc.write_bool(false),
    }
    enc.write_bool(options.layered);
    let i = &options.inline;
    enc.write_u32(i.small_callee_il);
    enc.write_u64(i.hot_site_min_count);
    enc.write_u32(i.hot_callee_il);
    enc.write_f64(i.hot_site_dominance);
    enc.write_u32(i.caller_growth_cap);
    enc.write_u32(i.max_passes);
    match i.op_limit {
        Some(limit) => {
            enc.write_bool(true);
            enc.write_u64(limit);
        }
        None => enc.write_bool(false),
    }
    match &i.targets {
        Some(targets) => {
            enc.write_bool(true);
            enc.write_usize(targets.len());
            for id in targets {
                enc.write_u32(id.0);
            }
        }
        None => enc.write_bool(false),
    }
    let n = &options.naim;
    enc.write_usize(n.budget_bytes);
    match n.hard_limit_bytes {
        Some(limit) => {
            enc.write_bool(true);
            enc.write_usize(limit);
        }
        None => enc.write_bool(false),
    }
    enc.write_u8(n.max_level as u8);
    enc.write_f64(n.thresholds.ir_compaction);
    enc.write_f64(n.thresholds.st_compaction);
    enc.write_f64(n.thresholds.offload);
    enc.write_usize(n.cache_pools);
    enc.write_u64(n.compact_cost_per_byte);
    enc.write_u64(n.disk_cost_per_byte);
    enc.write_u64(n.fetch_cost_per_byte);
    match &options.profile {
        Some(db) => {
            enc.write_bool(true);
            enc.write_bytes(&db.to_bytes());
        }
        None => enc.write_bool(false),
    }
    ContentHash::of(&enc.into_bytes()).to_hex()
}

/// Key for a whole build: the ordered module fingerprints plus the
/// options signature. Any dirty module, added module, removed module,
/// reordering, option change, or profile change produces a new key.
#[must_use]
pub fn build_key(module_fps: &[String], options: &BuildOptions) -> String {
    let mut enc = Encoder::with_capacity(64 + module_fps.len() * 36);
    enc.write_u32(CACHE_FORMAT);
    enc.write_str("build");
    enc.write_usize(module_fps.len());
    for fp in module_fps {
        enc.write_str(fp);
    }
    enc.write_str(&options_signature(options));
    ContentHash::of(&enc.into_bytes()).to_hex()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cmo-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_object() -> IlObject {
        cmo_frontend::compile_module("m", "fn main() -> int { return 7; }").expect("compiles")
    }

    #[test]
    fn module_round_trip_survives_reopen() {
        let dir = tmpdir("module-rt");
        let tel = Telemetry::disabled();
        let obj = small_object();
        let fp = module_fingerprint("m", "fn main() -> int { return 7; }");
        {
            let mut cache = BuildCache::open(&dir).expect("open");
            assert!(cache.get_module("m", &fp, &tel).is_none());
            cache.put_module("m", &fp, &obj, &tel);
            cache.persist().expect("persist");
        }
        let mut cache = BuildCache::open(&dir).expect("reopen");
        let back = cache.get_module("m", &fp, &tel).expect("warm hit");
        assert_eq!(back.to_bytes(), obj.to_bytes());
        assert_eq!(cache.stats().module_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprints_separate_source_name_and_options() {
        let a = module_fingerprint("m", "fn f() -> int { return 1; }");
        let b = module_fingerprint("m", "fn f() -> int { return 2; }");
        let c = module_fingerprint("n", "fn f() -> int { return 1; }");
        assert_ne!(a, b);
        assert_ne!(a, c);

        let o1 = BuildOptions::new(OptLevel::O4);
        let mut o2 = BuildOptions::new(OptLevel::O4);
        o2.inline.small_callee_il += 1;
        assert_ne!(options_signature(&o1), options_signature(&o2));
        // jobs must NOT participate: warm hits work across -j.
        let mut o3 = BuildOptions::new(OptLevel::O4);
        o3.jobs = 4;
        assert_eq!(options_signature(&o1), options_signature(&o3));
    }

    #[test]
    fn corrupt_entry_invalidates_and_misses() {
        let dir = tmpdir("corrupt");
        let tel = Telemetry::disabled();
        let obj = small_object();
        let fp = module_fingerprint("m", "src");
        {
            let mut cache = BuildCache::open(&dir).expect("open");
            cache.put_module("m", &fp, &obj, &tel);
            cache.persist().expect("persist");
        }
        // Flip a byte in the stored payload (past the header region).
        let repo = dir.join("repo.naim");
        let mut bytes = std::fs::read(&repo).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&repo, &bytes).expect("write");

        let mut cache = BuildCache::open(&dir).expect("reopen");
        assert!(cache.get_module("m", &fp, &tel).is_none());
        let stats = cache.stats();
        assert_eq!(stats.invalidations + stats.module_misses, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatched_cache_is_recreated() {
        let dir = tmpdir("version");
        let tel = Telemetry::disabled();
        {
            let mut cache = BuildCache::open(&dir).expect("open");
            cache.put_module("m", "fp", &small_object(), &tel);
            cache.persist().expect("persist");
        }
        let repo = dir.join("repo.naim");
        let mut bytes = std::fs::read(&repo).expect("read");
        bytes[8] = 0xEE; // clobber the format version field
        std::fs::write(&repo, &bytes).expect("write");

        let mut cache = BuildCache::open(&dir).expect("recreate");
        assert_eq!(cache.record_count(), 0);
        assert!(cache.get_module("m", "fp", &tel).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_repository_suffix_rolls_back_on_open() {
        use cmo_naim::MemStorage;
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let tel = Telemetry::disabled();
        let obj = small_object();
        let fp = module_fingerprint("m", "src");
        {
            let mut cache = BuildCache::open_on(Arc::clone(&storage), &tel).unwrap();
            cache.put_module("m", &fp, &obj, &tel);
            cache.persist().unwrap();
        }
        let committed = storage.size(REPO_FILE).unwrap();
        // A successor process appended a new generation but died before
        // committing it to the journal.
        storage.append(REPO_FILE, &[0xAB; 64]).unwrap();
        let traced = Telemetry::enabled();
        let mut cache = BuildCache::open_on(Arc::clone(&storage), &traced).unwrap();
        assert_eq!(cache.recovered(), 1);
        assert_eq!(
            storage.size(REPO_FILE).unwrap(),
            committed,
            "uncommitted suffix must be rolled back"
        );
        assert!(
            cache.get_module("m", &fp, &tel).is_some(),
            "committed generation must survive the rollback"
        );
        let trace = traced.render_trace();
        assert!(
            trace.contains(
                r#""event":"recover","component":"repository","action":"rollback","bytes":64"#
            ),
            "trace: {trace}"
        );
    }

    #[test]
    fn clean_open_reports_no_recovery() {
        use cmo_naim::MemStorage;
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let tel = Telemetry::disabled();
        {
            let mut cache = BuildCache::open_on(Arc::clone(&storage), &tel).unwrap();
            cache.put_module("m", "fp", &small_object(), &tel);
            cache.persist().unwrap();
        }
        let cache = BuildCache::open_on(storage, &tel).unwrap();
        assert_eq!(cache.recovered(), 0);
    }

    #[test]
    fn identical_builds_share_one_record() {
        let dir = tmpdir("dedup");
        let tel = Telemetry::disabled();
        let obj = small_object();
        let mut cache = BuildCache::open(&dir).expect("open");
        cache.put_module("m", "fp1", &obj, &tel);
        cache.put_module("m", "fp2", &obj, &tel);
        assert_eq!(cache.record_count(), 1, "content-addressing dedups");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
