//! Persistent incremental-compilation cache over the content-addressed
//! NAIM repository.
//!
//! The cache lives in a directory (`cmocc --cache-dir DIR`) holding two
//! files:
//!
//! * `repo.naim` — a versioned, checksummed [`Repository`] of
//!   relocatable pool images, each a compacted [`CacheEntry`]
//!   (a front-end IL object, a linked machine image, or a stored
//!   compile report);
//! * `manifest.tsv` — a text index mapping cache keys (module and
//!   build fingerprints) to the content hashes of their entries.
//!
//! Entries are rehydrated through the ordinary NAIM eager-swizzling
//! path: the cache registers the stored pool image with its private
//! [`Loader`] via [`Loader::insert_offloaded`] and fetches it like any
//! offloaded pool. Any repository error on the way back — a short
//! read, a CRC mismatch, a stale index — degrades to a cache miss with
//! an `"invalidate"` trace event and a full recompilation of the
//! affected module; a corrupt cache can cost time, never correctness.
//!
//! # Determinism
//!
//! All cache probes and stores happen on the driver's main thread in
//! module input order, so traces and reports stay byte-identical at
//! every `-j` worker count. A warm full-build hit replays the *cold*
//! run's stored [`CompileReport`] verbatim, which is what makes
//! `--report-json` byte-identical between cold and warm builds.

use std::collections::BTreeMap;
use std::fs::File;
use std::path::{Path, PathBuf};

use cmo_ir::IlObject;
use cmo_naim::{
    ContentHash, DecodeError, Decoder, Encoder, Loader, NaimConfig, NaimError, PoolKind,
    Relocatable, Repository,
};
use cmo_telemetry::{Telemetry, TraceEvent};
use cmo_vm::MachineImage;

use crate::driver::{BuildOptions, OptLevel};
use crate::report::CompileReport;

/// Cache format epoch. Bumped whenever fingerprint inputs, the entry
/// encoding, or the manifest layout change, so stale caches from
/// earlier compiler builds miss cleanly instead of decoding garbage.
pub const CACHE_FORMAT: u32 = 1;

/// First line of `manifest.tsv`.
const MANIFEST_SCHEMA: &str = "cmo.cache.v1";

/// Counters for cache activity during one build, surfaced in the
/// `cache` section of the unified report.
///
/// Only counters that are identical between a cold run and the warm
/// run that replays it *at the moment the report is stored* live here;
/// store events are visible in the trace instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Whether a cache directory was attached to this build at all.
    pub enabled: bool,
    /// Module-scope probes satisfied from the cache (front end skipped).
    pub module_hits: u64,
    /// Module-scope probes that missed and recompiled.
    pub module_misses: u64,
    /// Whole-build probes satisfied from the cache (image + report
    /// replayed, HLO/LLO/link skipped).
    pub build_hits: u64,
    /// Entries discarded because they could not be fetched back intact
    /// (truncation, CRC mismatch, dangling manifest line).
    pub invalidations: u64,
}

/// One value stored in the cache repository.
///
/// The discriminant byte leads the relocatable image so a manifest
/// line pointing at the wrong kind of record is detected and
/// invalidated rather than misinterpreted.
#[derive(Debug, Clone)]
pub enum CacheEntry {
    /// A front-end output: one module's IL object.
    Object(IlObject),
    /// A fully linked machine image for a whole build.
    Image(MachineImage),
    /// The unified compile report stored next to an image.
    Report(CompileReport),
}

const TAG_OBJECT: u8 = 1;
const TAG_IMAGE: u8 = 2;
const TAG_REPORT: u8 = 3;

impl Relocatable for CacheEntry {
    fn compact(&self, enc: &mut Encoder) {
        match self {
            CacheEntry::Object(obj) => {
                enc.write_u8(TAG_OBJECT);
                enc.write_bytes(&obj.to_bytes());
            }
            CacheEntry::Image(image) => {
                enc.write_u8(TAG_IMAGE);
                image.encode(enc);
            }
            CacheEntry::Report(report) => {
                enc.write_u8(TAG_REPORT);
                report.encode(enc);
            }
        }
    }

    fn uncompact(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let offset = dec.position();
        match dec.read_u8()? {
            TAG_OBJECT => {
                let bytes = dec.read_bytes()?;
                let obj = IlObject::from_bytes(bytes).map_err(|_| DecodeError::Corrupt {
                    what: "cached IL object failed to decode",
                })?;
                Ok(CacheEntry::Object(obj))
            }
            TAG_IMAGE => Ok(CacheEntry::Image(MachineImage::decode(dec)?)),
            TAG_REPORT => Ok(CacheEntry::Report(CompileReport::decode(dec)?)),
            tag => Err(DecodeError::BadTag { tag, offset }),
        }
    }

    fn expanded_bytes(&self) -> usize {
        match self {
            CacheEntry::Object(obj) => obj.to_bytes().len(),
            CacheEntry::Image(image) => image.approx_bytes(),
            CacheEntry::Report(report) => std::mem::size_of_val(report),
        }
    }
}

/// Outcome of a raw manifest + repository probe.
enum Fetched {
    /// Entry came back intact; payload size on disk in bytes.
    Hit(Box<CacheEntry>, u64),
    /// No manifest line for the key.
    Missing,
    /// Manifest line existed but the entry could not be fetched intact;
    /// the line has been dropped.
    Invalid,
}

/// A persistent build cache rooted at a directory.
///
/// Opened by `cmocc --cache-dir` (or [`BuildCache::open`] directly),
/// consulted by [`crate::Compiler::add_sources_cached`] for per-module
/// front-end reuse and by [`crate::build_objects_cached`] for
/// whole-build replay, and flushed with [`BuildCache::persist`].
#[derive(Debug)]
pub struct BuildCache {
    dir: PathBuf,
    loader: Loader<CacheEntry, File>,
    manifest: BTreeMap<String, ContentHash>,
    stats: CacheStats,
}

impl BuildCache {
    /// Opens (or creates) the cache rooted at `dir`.
    ///
    /// A repository written by an older format version, or one whose
    /// header fails validation, is discarded and recreated fresh — an
    /// incompatible cache is worth nothing, and silently decoding it
    /// would be worse.
    ///
    /// # Errors
    ///
    /// Returns an error only for real I/O failures (unwritable
    /// directory, permission problems) — never for stale or corrupt
    /// cache *content*.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<BuildCache, NaimError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let repo_path = dir.join("repo.naim");
        let (repo, fresh) = match Repository::open_or_create(&repo_path) {
            Ok(repo) => (repo, false),
            Err(NaimError::Repository(e)) => return Err(NaimError::Repository(e)),
            // Header/version/decode problems: the cache is from another
            // era. Start over.
            Err(_) => (Repository::create(&repo_path)?, true),
        };
        let manifest = if fresh {
            BTreeMap::new()
        } else {
            read_manifest(&dir.join("manifest.tsv"))
        };
        Ok(BuildCache {
            dir,
            loader: Loader::with_repository(NaimConfig::disabled(), repo),
            manifest,
            stats: CacheStats {
                enabled: true,
                ..CacheStats::default()
            },
        })
    }

    /// The directory this cache lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Snapshot of the per-build cache counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of records in the underlying repository (tests/bench).
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.loader.repository().record_count()
    }

    /// Probes the cache for a module's front-end output.
    ///
    /// Emits a module-scope `"hit"`, `"miss"`, or `"invalidate"` trace
    /// event; an invalidated entry also counts as a miss because the
    /// module will be recompiled.
    pub fn get_module(&mut self, module: &str, fp: &str, tel: &Telemetry) -> Option<IlObject> {
        match self.fetch(&format!("mod:{fp}")) {
            Fetched::Hit(entry, bytes) => match *entry {
                CacheEntry::Object(obj) => {
                    self.stats.module_hits += 1;
                    emit(tel, "hit", "module", module, bytes);
                    Some(obj)
                }
                _ => {
                    self.manifest.remove(&format!("mod:{fp}"));
                    self.stats.invalidations += 1;
                    self.stats.module_misses += 1;
                    emit(tel, "invalidate", "module", module, bytes);
                    None
                }
            },
            Fetched::Missing => {
                self.stats.module_misses += 1;
                emit(tel, "miss", "module", module, 0);
                None
            }
            Fetched::Invalid => {
                self.stats.invalidations += 1;
                self.stats.module_misses += 1;
                emit(tel, "invalidate", "module", module, 0);
                None
            }
        }
    }

    /// Stores a module's front-end output under its fingerprint.
    ///
    /// Storing never fails the build: an unwritable repository leaves
    /// the cache cold for the next run, nothing more.
    pub fn put_module(&mut self, module: &str, fp: &str, obj: &IlObject, tel: &Telemetry) {
        if let Some(bytes) = self.store(format!("mod:{fp}"), &CacheEntry::Object(obj.clone())) {
            emit(tel, "store", "module", module, bytes);
        }
    }

    /// Probes the cache for a whole build: the linked image plus the
    /// stored report. Both must come back intact for a hit.
    pub fn get_build(
        &mut self,
        key: &str,
        tel: &Telemetry,
    ) -> Option<(MachineImage, CompileReport)> {
        let image = match self.fetch(&format!("img:{key}")) {
            Fetched::Hit(entry, bytes) => match *entry {
                CacheEntry::Image(image) => Some((image, bytes)),
                _ => {
                    self.manifest.remove(&format!("img:{key}"));
                    self.stats.invalidations += 1;
                    emit(tel, "invalidate", "build", key, 0);
                    None
                }
            },
            Fetched::Invalid => {
                self.manifest.remove(&format!("img:{key}"));
                self.stats.invalidations += 1;
                emit(tel, "invalidate", "build", key, 0);
                None
            }
            Fetched::Missing => None,
        };
        let report = match self.fetch(&format!("rpt:{key}")) {
            Fetched::Hit(entry, bytes) => match *entry {
                CacheEntry::Report(report) => Some((report, bytes)),
                _ => {
                    self.manifest.remove(&format!("rpt:{key}"));
                    self.stats.invalidations += 1;
                    emit(tel, "invalidate", "build", key, 0);
                    None
                }
            },
            Fetched::Invalid => {
                self.manifest.remove(&format!("rpt:{key}"));
                self.stats.invalidations += 1;
                emit(tel, "invalidate", "build", key, 0);
                None
            }
            Fetched::Missing => None,
        };
        match (image, report) {
            (Some((image, ib)), Some((report, rb))) => {
                self.stats.build_hits += 1;
                emit(tel, "hit", "build", key, ib + rb);
                Some((image, report))
            }
            _ => {
                emit(tel, "miss", "build", key, 0);
                None
            }
        }
    }

    /// Stores a whole build's image and report under the build key.
    pub fn put_build(
        &mut self,
        key: &str,
        image: &MachineImage,
        report: &CompileReport,
        tel: &Telemetry,
    ) {
        let ib = self.store(format!("img:{key}"), &CacheEntry::Image(image.clone()));
        let rb = self.store(format!("rpt:{key}"), &CacheEntry::Report(report.clone()));
        if let (Some(ib), Some(rb)) = (ib, rb) {
            emit(tel, "store", "build", key, ib + rb);
        }
    }

    /// Flushes the repository index segment and rewrites the manifest
    /// atomically (write to a temp file, then rename into place), so a
    /// process killed mid-persist leaves the previous manifest intact.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the cache directory is no
    /// longer writable.
    pub fn persist(&mut self) -> Result<(), NaimError> {
        self.loader.repository_mut().flush_index()?;
        let mut text = String::with_capacity(64 * (1 + self.manifest.len()));
        text.push_str(MANIFEST_SCHEMA);
        text.push('\n');
        for (key, hash) in &self.manifest {
            text.push_str(key);
            text.push('\t');
            text.push_str(&hash.to_hex());
            text.push('\n');
        }
        let tmp = self.dir.join("manifest.tsv.tmp");
        std::fs::write(&tmp, &text)?;
        std::fs::rename(&tmp, self.dir.join("manifest.tsv"))?;
        Ok(())
    }

    fn fetch(&mut self, key: &str) -> Fetched {
        let Some(&hash) = self.manifest.get(key) else {
            return Fetched::Missing;
        };
        let Some(handle) = self.loader.repository().lookup(hash) else {
            self.manifest.remove(key);
            return Fetched::Invalid;
        };
        let bytes = handle.len() as u64;
        let pid = self.loader.insert_offloaded(handle, PoolKind::Ir);
        match self.loader.get(pid) {
            Ok(entry) => Fetched::Hit(Box::new(entry.clone()), bytes),
            Err(_) => {
                self.manifest.remove(key);
                Fetched::Invalid
            }
        }
    }

    /// Compacts and stores `entry`, returning the payload size, or
    /// `None` when the repository refused the write.
    fn store(&mut self, key: String, entry: &CacheEntry) -> Option<u64> {
        let mut enc = Encoder::with_capacity(1024);
        entry.compact(&mut enc);
        let image = enc.into_bytes();
        let handle = self.loader.repository_mut().store(&image).ok()?;
        let hash = self.loader.repository().hash_of(handle)?;
        self.manifest.insert(key, hash);
        Some(handle.len() as u64)
    }
}

fn emit(tel: &Telemetry, action: &'static str, scope: &'static str, name: &str, bytes: u64) {
    tel.emit(TraceEvent::Cache {
        action,
        scope,
        name: name.to_owned(),
        bytes,
    });
}

fn read_manifest(path: &Path) -> BTreeMap<String, ContentHash> {
    let mut manifest = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return manifest;
    };
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_SCHEMA) {
        return manifest;
    }
    for line in lines {
        let Some((key, hex)) = line.split_once('\t') else {
            continue;
        };
        let Some(hash) = ContentHash::from_hex(hex) else {
            continue;
        };
        manifest.insert(key.to_owned(), hash);
    }
    manifest
}

/// Fingerprint of an MLC source module: covers the module name, the
/// exact source text, and the cache format epoch.
#[must_use]
pub fn module_fingerprint(module: &str, source: &str) -> String {
    let mut enc = Encoder::with_capacity(source.len() + 64);
    enc.write_u32(CACHE_FORMAT);
    enc.write_str("mlc-src");
    enc.write_str(module);
    enc.write_str(source);
    ContentHash::of(&enc.into_bytes()).to_hex()
}

/// Fingerprint of a pre-compiled IL object: covers its serialized
/// bytes, so any front-end change that alters the object re-keys it.
#[must_use]
pub fn object_fingerprint(module: &str, bytes: &[u8]) -> String {
    let mut enc = Encoder::with_capacity(bytes.len() + 64);
    enc.write_u32(CACHE_FORMAT);
    enc.write_str("il-obj");
    enc.write_str(module);
    enc.write_bytes(bytes);
    ContentHash::of(&enc.into_bytes()).to_hex()
}

/// Digest of every build option that can change the produced image or
/// report.
///
/// `jobs` and NAIM `shards` are deliberately *excluded*: the pipeline
/// produces byte-identical output at every worker and shard count, so
/// a cache populated at `-j4` must hit at `-j1`. The profile database
/// participates through its full serialized content (its epoch), so
/// re-profiling invalidates every profile-sensitive entry.
#[must_use]
pub fn options_signature(options: &BuildOptions) -> String {
    let mut enc = Encoder::with_capacity(256);
    enc.write_u32(CACHE_FORMAT);
    enc.write_str("opts");
    enc.write_u8(match options.level {
        OptLevel::O1 => 1,
        OptLevel::O2 => 2,
        OptLevel::O4 => 4,
    });
    enc.write_bool(options.pbo);
    enc.write_bool(options.instrument);
    match options.selectivity {
        Some(pct) => {
            enc.write_bool(true);
            enc.write_f64(pct);
        }
        None => enc.write_bool(false),
    }
    enc.write_bool(options.layered);
    let i = &options.inline;
    enc.write_u32(i.small_callee_il);
    enc.write_u64(i.hot_site_min_count);
    enc.write_u32(i.hot_callee_il);
    enc.write_f64(i.hot_site_dominance);
    enc.write_u32(i.caller_growth_cap);
    enc.write_u32(i.max_passes);
    match i.op_limit {
        Some(limit) => {
            enc.write_bool(true);
            enc.write_u64(limit);
        }
        None => enc.write_bool(false),
    }
    match &i.targets {
        Some(targets) => {
            enc.write_bool(true);
            enc.write_usize(targets.len());
            for id in targets {
                enc.write_u32(id.0);
            }
        }
        None => enc.write_bool(false),
    }
    let n = &options.naim;
    enc.write_usize(n.budget_bytes);
    match n.hard_limit_bytes {
        Some(limit) => {
            enc.write_bool(true);
            enc.write_usize(limit);
        }
        None => enc.write_bool(false),
    }
    enc.write_u8(n.max_level as u8);
    enc.write_f64(n.thresholds.ir_compaction);
    enc.write_f64(n.thresholds.st_compaction);
    enc.write_f64(n.thresholds.offload);
    enc.write_usize(n.cache_pools);
    enc.write_u64(n.compact_cost_per_byte);
    enc.write_u64(n.disk_cost_per_byte);
    match &options.profile {
        Some(db) => {
            enc.write_bool(true);
            enc.write_bytes(&db.to_bytes());
        }
        None => enc.write_bool(false),
    }
    ContentHash::of(&enc.into_bytes()).to_hex()
}

/// Key for a whole build: the ordered module fingerprints plus the
/// options signature. Any dirty module, added module, removed module,
/// reordering, option change, or profile change produces a new key.
#[must_use]
pub fn build_key(module_fps: &[String], options: &BuildOptions) -> String {
    let mut enc = Encoder::with_capacity(64 + module_fps.len() * 36);
    enc.write_u32(CACHE_FORMAT);
    enc.write_str("build");
    enc.write_usize(module_fps.len());
    for fp in module_fps {
        enc.write_str(fp);
    }
    enc.write_str(&options_signature(options));
    ContentHash::of(&enc.into_bytes()).to_hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cmo-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_object() -> IlObject {
        cmo_frontend::compile_module("m", "fn main() -> int { return 7; }").expect("compiles")
    }

    #[test]
    fn module_round_trip_survives_reopen() {
        let dir = tmpdir("module-rt");
        let tel = Telemetry::disabled();
        let obj = small_object();
        let fp = module_fingerprint("m", "fn main() -> int { return 7; }");
        {
            let mut cache = BuildCache::open(&dir).expect("open");
            assert!(cache.get_module("m", &fp, &tel).is_none());
            cache.put_module("m", &fp, &obj, &tel);
            cache.persist().expect("persist");
        }
        let mut cache = BuildCache::open(&dir).expect("reopen");
        let back = cache.get_module("m", &fp, &tel).expect("warm hit");
        assert_eq!(back.to_bytes(), obj.to_bytes());
        assert_eq!(cache.stats().module_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprints_separate_source_name_and_options() {
        let a = module_fingerprint("m", "fn f() -> int { return 1; }");
        let b = module_fingerprint("m", "fn f() -> int { return 2; }");
        let c = module_fingerprint("n", "fn f() -> int { return 1; }");
        assert_ne!(a, b);
        assert_ne!(a, c);

        let o1 = BuildOptions::new(OptLevel::O4);
        let mut o2 = BuildOptions::new(OptLevel::O4);
        o2.inline.small_callee_il += 1;
        assert_ne!(options_signature(&o1), options_signature(&o2));
        // jobs must NOT participate: warm hits work across -j.
        let mut o3 = BuildOptions::new(OptLevel::O4);
        o3.jobs = 4;
        assert_eq!(options_signature(&o1), options_signature(&o3));
    }

    #[test]
    fn corrupt_entry_invalidates_and_misses() {
        let dir = tmpdir("corrupt");
        let tel = Telemetry::disabled();
        let obj = small_object();
        let fp = module_fingerprint("m", "src");
        {
            let mut cache = BuildCache::open(&dir).expect("open");
            cache.put_module("m", &fp, &obj, &tel);
            cache.persist().expect("persist");
        }
        // Flip a byte in the stored payload (past the header region).
        let repo = dir.join("repo.naim");
        let mut bytes = std::fs::read(&repo).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&repo, &bytes).expect("write");

        let mut cache = BuildCache::open(&dir).expect("reopen");
        assert!(cache.get_module("m", &fp, &tel).is_none());
        let stats = cache.stats();
        assert_eq!(stats.invalidations + stats.module_misses, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatched_cache_is_recreated() {
        let dir = tmpdir("version");
        let tel = Telemetry::disabled();
        {
            let mut cache = BuildCache::open(&dir).expect("open");
            cache.put_module("m", "fp", &small_object(), &tel);
            cache.persist().expect("persist");
        }
        let repo = dir.join("repo.naim");
        let mut bytes = std::fs::read(&repo).expect("read");
        bytes[8] = 0xEE; // clobber the format version field
        std::fs::write(&repo, &bytes).expect("write");

        let mut cache = BuildCache::open(&dir).expect("recreate");
        assert_eq!(cache.record_count(), 0);
        assert!(cache.get_module("m", "fp", &tel).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_builds_share_one_record() {
        let dir = tmpdir("dedup");
        let tel = Telemetry::disabled();
        let obj = small_object();
        let mut cache = BuildCache::open(&dir).expect("open");
        cache.put_module("m", "fp1", &obj, &tel);
        cache.put_module("m", "fp2", &obj, &tel);
        assert_eq!(cache.record_count(), 1, "content-addressing dedups");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
