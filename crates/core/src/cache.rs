//! Persistent incremental-compilation cache over the content-addressed
//! NAIM repository.
//!
//! The cache lives in a directory (`cmocc --cache-dir DIR`) holding two
//! files:
//!
//! * `repo.naim` — a versioned, checksummed [`Repository`] of
//!   relocatable pool images, each a compacted [`CacheEntry`]
//!   (a front-end IL object, a linked machine image, or a stored
//!   compile report);
//! * `manifest.tsv` — a text index mapping cache keys (module and
//!   build fingerprints) to the content hashes of their entries.
//!
//! Entries are rehydrated through the ordinary NAIM eager-swizzling
//! path: the cache registers the stored pool image with its private
//! [`Loader`] via [`Loader::insert_offloaded`] and fetches it like any
//! offloaded pool. Any repository error on the way back — a short
//! read, a CRC mismatch, a stale index — degrades to a cache miss with
//! an `"invalidate"` trace event and a full recompilation of the
//! affected module; a corrupt cache can cost time, never correctness.
//!
//! # Determinism
//!
//! All cache probes and stores happen on the driver's main thread in
//! module input order, so traces and reports stay byte-identical at
//! every `-j` worker count — and so is the *storage operation stream*,
//! which is what makes the kill-point fault sweep deterministic. A warm
//! full-build hit replays the *cold* run's stored [`CompileReport`]
//! verbatim, which is what makes `--report-json` byte-identical between
//! cold and warm builds.
//!
//! # Crash safety
//!
//! All I/O goes through the [`Storage`] trait (so tests can interpose
//! `FaultyStorage`), and [`BuildCache::persist`] commits a generation
//! in a fixed order:
//!
//! 1. append the repository index segment, then **fsync** `repo.naim`;
//! 2. atomically replace `commit.journal` (write temp → fsync →
//!    rename) recording the synced repository length;
//! 3. atomically replace `manifest.tsv` the same way.
//!
//! On open, the journal rolls an over-long repository back to its last
//! committed length (a crash between steps 1 and 2), the record-chain
//! scan truncates any remaining torn tail, and an unreadable store is
//! recreated from scratch. Each repair emits a `recover` trace event
//! and at worst forces recompilation — never a panic, never stale
//! bytes: manifest entries pointing at rolled-back records simply miss.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::Arc;

use cmo_ir::IlObject;
use cmo_naim::{
    ContentHash, DecodeError, Decoder, DiskStorage, Encoder, Loader, NaimConfig, NaimError,
    PoolKind, Relocatable, Repository, Storage, StorageFile,
};
use cmo_telemetry::{Telemetry, TraceEvent};
use cmo_vm::MachineImage;

use crate::driver::{BuildOptions, OptLevel};
use crate::report::CompileReport;
use crate::slices::{ModuleScope, SlicePlan};

/// Cache format epoch. Bumped whenever fingerprint inputs, the entry
/// encoding, or the manifest layout change, so stale caches from
/// earlier compiler builds miss cleanly instead of decoding garbage.
/// (4: the report codec gained the `cache.gc` counters.)
/// (5: the report codec gained the `hlo.clusters` partition counters.)
/// (6: the report codec gained the `faults.remote` tier counters.)
/// (7: profile-slice keys — module entries compose per-module profile
/// slice fingerprints, the build tier keys on the slice vector plus a
/// residual slice, and scope sidecars joined the entry encoding.)
pub const CACHE_FORMAT: u32 = 7;

/// First line of `manifest.tsv`.
const MANIFEST_SCHEMA: &str = "cmo.cache.v1";

/// First line of `commit.journal`.
const JOURNAL_SCHEMA: &str = "cmo.journal.v1";

/// Repository file name inside the cache directory.
const REPO_FILE: &str = "repo.naim";

/// Manifest file name inside the cache directory.
const MANIFEST_FILE: &str = "manifest.tsv";

/// Commit-journal file name inside the cache directory.
const JOURNAL_FILE: &str = "commit.journal";

/// Temp name the garbage collector builds a new repository generation
/// under before atomically renaming it onto [`REPO_FILE`]. An orphan
/// (a GC that died before its swap) is removed on the next open.
const GC_TEMP_FILE: &str = "repo.naim.gc";

/// Counters for cache activity during one build, surfaced in the
/// `cache` section of the unified report.
///
/// Only counters that are identical between a cold run and the warm
/// run that replays it *at the moment the report is stored* live here;
/// store events are visible in the trace instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Whether a cache directory was attached to this build at all.
    pub enabled: bool,
    /// Module-scope probes satisfied from the cache (front end skipped).
    pub module_hits: u64,
    /// Module-scope probes that missed and recompiled.
    pub module_misses: u64,
    /// Whole-build probes satisfied from the cache (image + report
    /// replayed, HLO/LLO/link skipped).
    pub build_hits: u64,
    /// Entries discarded because they could not be fetched back intact
    /// (truncation, CRC mismatch, dangling manifest line).
    pub invalidations: u64,
    /// Mark-and-sweep compactions run during this build
    /// (`--gc-threshold-bytes` auto-trigger or an explicit
    /// [`BuildCache::gc`]).
    pub gc_runs: u64,
    /// Bytes reclaimed across those compactions.
    pub gc_reclaimed_bytes: u64,
    /// Live records copied by the most recent compaction.
    pub gc_live_records: u64,
    /// Dangling manifest lines pruned across those compactions.
    pub gc_pruned_lines: u64,
    /// Profile slices planned for this build (one per module when a
    /// profile database is attached; zero otherwise).
    pub profile_slices: u64,
    /// Slices containing at least one routine whose recorded shape no
    /// longer matches the current code ([`Freshness::Stale`] §6.2).
    /// Diagnostic: stale slices still key deterministically.
    ///
    /// [`Freshness::Stale`]: cmo_profile::Freshness::Stale
    pub profile_stale_slices: u64,
    /// Module-tier warm hits served under a *composed* (source +
    /// profile-slice) key — the modules whose observable counts did
    /// not move across a retrain.
    pub profile_retained_hits: u64,
}

impl CacheStats {
    /// Records one planned profile slice (and whether it was stale).
    /// Deliberately does *not* feed `invalidations`: a stale slice is
    /// a diagnostic, not a failed fetch, and must not flip `cmocc`'s
    /// cache-health exit code.
    pub fn record_profile_slice(&mut self, stale: bool) {
        self.profile_slices += 1;
        if stale {
            self.profile_stale_slices += 1;
        }
    }

    /// Records one module-tier hit under a composed profile-slice key.
    pub fn record_retained_hit(&mut self) {
        self.profile_retained_hits += 1;
    }
}

/// Outcome of one [`BuildCache::gc`] compaction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Bytes reclaimed by the generation swap (old size − new size).
    pub reclaimed_bytes: u64,
    /// Records copied into the new generation.
    pub live_records: u64,
    /// Dangling manifest lines pruned by the same atomic rewrite.
    pub pruned_lines: u64,
}

/// One value stored in the cache repository.
///
/// The discriminant byte leads the relocatable image so a manifest
/// line pointing at the wrong kind of record is detected and
/// invalidated rather than misinterpreted.
#[derive(Debug, Clone)]
pub enum CacheEntry {
    /// A front-end output: one module's IL object.
    Object(IlObject),
    /// A fully linked machine image for a whole build.
    Image(MachineImage),
    /// The unified compile report stored next to an image (boxed: the
    /// report struct dwarfs the other variants).
    Report(Box<CompileReport>),
    /// A module's profile-slice scope sidecar, keyed on the *source*
    /// fingerprint alone (the scope is profile-independent structure),
    /// so warm builds can plan slices before probing for objects.
    Scope(ModuleScope),
}

const TAG_OBJECT: u8 = 1;
const TAG_IMAGE: u8 = 2;
const TAG_REPORT: u8 = 3;
const TAG_SCOPE: u8 = 4;

impl Relocatable for CacheEntry {
    fn compact(&self, enc: &mut Encoder) {
        match self {
            CacheEntry::Object(obj) => {
                enc.write_u8(TAG_OBJECT);
                enc.write_bytes(&obj.to_bytes());
            }
            CacheEntry::Image(image) => {
                enc.write_u8(TAG_IMAGE);
                image.encode(enc);
            }
            CacheEntry::Report(report) => {
                enc.write_u8(TAG_REPORT);
                report.encode(enc);
            }
            CacheEntry::Scope(scope) => {
                enc.write_u8(TAG_SCOPE);
                scope.encode(enc);
            }
        }
    }

    fn uncompact(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let offset = dec.position();
        match dec.read_u8()? {
            TAG_OBJECT => {
                let bytes = dec.read_bytes()?;
                let obj = IlObject::from_bytes(bytes).map_err(|_| DecodeError::Corrupt {
                    what: "cached IL object failed to decode",
                })?;
                Ok(CacheEntry::Object(obj))
            }
            TAG_IMAGE => Ok(CacheEntry::Image(MachineImage::decode(dec)?)),
            TAG_REPORT => Ok(CacheEntry::Report(Box::new(CompileReport::decode(dec)?))),
            TAG_SCOPE => Ok(CacheEntry::Scope(ModuleScope::decode(dec)?)),
            tag => Err(DecodeError::BadTag { tag, offset }),
        }
    }

    fn expanded_bytes(&self) -> usize {
        match self {
            CacheEntry::Object(obj) => obj.to_bytes().len(),
            CacheEntry::Image(image) => image.approx_bytes(),
            CacheEntry::Report(report) => std::mem::size_of_val(report.as_ref()),
            CacheEntry::Scope(scope) => std::mem::size_of_val(scope),
        }
    }
}

/// Outcome of a raw manifest + repository probe.
enum Fetched {
    /// Entry came back intact; payload size on disk in bytes.
    Hit(Box<CacheEntry>, u64),
    /// No manifest line for the key.
    Missing,
    /// Manifest line existed but the entry could not be fetched intact;
    /// the line has been dropped.
    Invalid,
}

/// A persistent build cache rooted at a directory.
///
/// Opened by `cmocc --cache-dir` (or [`BuildCache::open`] directly),
/// consulted by [`crate::Compiler::add_sources_cached`] for per-module
/// front-end reuse and by [`crate::build_objects_cached`] for
/// whole-build replay, and flushed with [`BuildCache::persist`].
#[derive(Debug)]
pub struct BuildCache {
    storage: Arc<dyn Storage>,
    loader: Loader<CacheEntry, StorageFile>,
    manifest: BTreeMap<String, ContentHash>,
    stats: CacheStats,
    /// Crash-recovery repairs performed while opening (rollbacks,
    /// truncations, recreations). Non-zero means persistent state was
    /// repaired and the build will recompile what was lost.
    recovered: u64,
}

impl BuildCache {
    /// Opens (or creates) the cache rooted at `dir`.
    ///
    /// A repository written by an older format version, or one whose
    /// header fails validation, is discarded and recreated fresh — an
    /// incompatible cache is worth nothing, and silently decoding it
    /// would be worse.
    ///
    /// # Errors
    ///
    /// Returns an error only for real I/O failures (unwritable
    /// directory, permission problems) — never for stale or corrupt
    /// cache *content*.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<BuildCache, NaimError> {
        BuildCache::open_traced(dir, &Telemetry::disabled())
    }

    /// [`BuildCache::open`] with a telemetry sink, so crash-recovery
    /// repairs show up as `recover` events in the trace.
    ///
    /// # Errors
    ///
    /// As [`BuildCache::open`].
    pub fn open_traced<P: AsRef<Path>>(dir: P, tel: &Telemetry) -> Result<BuildCache, NaimError> {
        BuildCache::open_on(Arc::new(DiskStorage::new(dir)?), tel)
    }

    /// Opens the cache over any [`Storage`] — the seam the fault-
    /// injection harnesses use to run real builds against in-memory or
    /// deliberately faulty stores.
    ///
    /// Recovery runs here: the commit journal rolls back a
    /// half-committed repository generation, the record-chain scan
    /// truncates a torn tail, and an unreadable repository is recreated
    /// fresh. Each repair emits a `recover` trace event and bumps
    /// [`BuildCache::recovered`].
    ///
    /// # Errors
    ///
    /// Returns an error only for live I/O failures, never for corrupt
    /// content.
    pub fn open_on(storage: Arc<dyn Storage>, tel: &Telemetry) -> Result<BuildCache, NaimError> {
        let mut recovered = 0u64;
        // A GC that died before its generation swap leaves the new
        // generation under the temp name; it was never committed, so
        // drop it. (`exists` is not admit-counted by the fault
        // injector, so the probe never shifts a kill-point schedule.)
        if storage.exists(GC_TEMP_FILE) {
            let _ = storage.remove(GC_TEMP_FILE);
        }
        // A crash after the repository fsync but before the journal
        // commit leaves repo.naim longer than the last committed
        // generation: roll the uncommitted suffix back. (The converse
        // — journal ahead of the repository — means the journal itself
        // is the stale file; it is simply ignored.)
        if let Some(committed) = read_journal(storage.as_ref()) {
            if storage.exists(REPO_FILE) {
                let size = storage.size(REPO_FILE)?;
                if size > committed {
                    storage.truncate(REPO_FILE, committed)?;
                    recovered += 1;
                    tel.emit(TraceEvent::Recover {
                        component: "repository",
                        action: "rollback",
                        bytes: size - committed,
                    });
                }
            }
        }
        let backend = |storage: &Arc<dyn Storage>| StorageFile::new(Arc::clone(storage), REPO_FILE);
        let (repo, fresh) = if storage.exists(REPO_FILE) {
            match Repository::open_backend(backend(&storage)) {
                Ok(repo) => (repo, false),
                Err(NaimError::Repository(e)) => return Err(NaimError::Repository(e)),
                // Header/version/decode problems: the cache is from
                // another era (or shredded beyond record recovery).
                // Start over.
                Err(_) => {
                    let old = storage.size(REPO_FILE).unwrap_or(0);
                    recovered += 1;
                    tel.emit(TraceEvent::Recover {
                        component: "repository",
                        action: "recreate",
                        bytes: old,
                    });
                    (Repository::create_backend(backend(&storage))?, true)
                }
            }
        } else {
            (Repository::create_backend(backend(&storage))?, true)
        };
        if let Some(repair) = repo.recovery() {
            recovered += 1;
            tel.emit(TraceEvent::Recover {
                component: "repository",
                action: "truncate",
                bytes: repair.dropped_bytes,
            });
        }
        let manifest = if fresh {
            BTreeMap::new()
        } else {
            read_manifest(storage.as_ref())
        };
        Ok(BuildCache {
            storage,
            loader: Loader::with_repository(NaimConfig::disabled(), repo),
            manifest,
            stats: CacheStats {
                enabled: true,
                ..CacheStats::default()
            },
            recovered,
        })
    }

    /// Crash-recovery repairs performed while opening. Non-zero means
    /// the previous process died mid-commit (or the store was damaged)
    /// and this build starts from the last committed generation.
    #[must_use]
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// Snapshot of the per-build cache counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Remote-tier traffic of the storage stack this cache sits on
    /// (all zeros when no remote tier is attached). Snapshotted into
    /// the report's `faults.remote` section at the same point as
    /// [`BuildCache::stats`], so cold and warm reports stay
    /// byte-identical.
    #[must_use]
    pub fn remote_stats(&self) -> cmo_naim::RemoteStats {
        self.storage.remote_stats().unwrap_or_default()
    }

    /// Number of records in the underlying repository (tests/bench).
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.loader.repository().record_count()
    }

    /// Probes the cache for a module's front-end output.
    ///
    /// Emits a module-scope `"hit"`, `"miss"`, or `"invalidate"` trace
    /// event; an invalidated entry also counts as a miss because the
    /// module will be recompiled.
    pub fn get_module(&mut self, module: &str, fp: &str, tel: &Telemetry) -> Option<IlObject> {
        match self.fetch(&format!("mod:{fp}")) {
            Fetched::Hit(entry, bytes) => match *entry {
                CacheEntry::Object(obj) => {
                    self.stats.module_hits += 1;
                    emit(tel, "hit", "module", module, bytes);
                    Some(obj)
                }
                _ => {
                    self.manifest.remove(&format!("mod:{fp}"));
                    self.stats.invalidations += 1;
                    self.stats.module_misses += 1;
                    emit(tel, "invalidate", "module", module, bytes);
                    None
                }
            },
            Fetched::Missing => {
                self.stats.module_misses += 1;
                emit(tel, "miss", "module", module, 0);
                None
            }
            Fetched::Invalid => {
                self.stats.invalidations += 1;
                self.stats.module_misses += 1;
                emit(tel, "invalidate", "module", module, 0);
                None
            }
        }
    }

    /// Stores a module's front-end output under its fingerprint.
    ///
    /// Storing never fails the build: an unwritable repository leaves
    /// the cache cold for the next run, nothing more.
    pub fn put_module(&mut self, module: &str, fp: &str, obj: &IlObject, tel: &Telemetry) {
        if let Some(bytes) = self.store(format!("mod:{fp}"), &CacheEntry::Object(obj.clone())) {
            emit(tel, "store", "module", module, bytes);
        }
    }

    /// Probes the cache for a module's scope sidecar (keyed on the
    /// source fingerprint alone — scope is profile-independent).
    ///
    /// Silent by design: sidecars are planning metadata, not cached
    /// work, so they touch neither the hit/miss counters nor the
    /// trace. A missing or damaged sidecar just means this build
    /// cannot plan slices before compiling.
    pub fn get_scope(&mut self, fp: &str) -> Option<ModuleScope> {
        match self.fetch(&format!("scope:{fp}")) {
            Fetched::Hit(entry, _) => match *entry {
                CacheEntry::Scope(scope) => Some(scope),
                _ => {
                    self.manifest.remove(&format!("scope:{fp}"));
                    None
                }
            },
            Fetched::Missing | Fetched::Invalid => None,
        }
    }

    /// Stores a module's scope sidecar under its source fingerprint.
    pub fn put_scope(&mut self, fp: &str, scope: &ModuleScope) {
        self.store(format!("scope:{fp}"), &CacheEntry::Scope(scope.clone()));
    }

    /// Records one planned profile slice in this build's counters.
    pub fn record_profile_slice(&mut self, stale: bool) {
        self.stats.record_profile_slice(stale);
    }

    /// Records one module-tier hit under a composed profile-slice key.
    pub fn record_retained_hit(&mut self) {
        self.stats.record_retained_hit();
    }

    /// Probes the cache for a whole build: the linked image plus the
    /// stored report. Both must come back intact for a hit.
    pub fn get_build(
        &mut self,
        key: &str,
        tel: &Telemetry,
    ) -> Option<(MachineImage, CompileReport)> {
        let image = match self.fetch(&format!("img:{key}")) {
            Fetched::Hit(entry, bytes) => match *entry {
                CacheEntry::Image(image) => Some((image, bytes)),
                _ => {
                    self.manifest.remove(&format!("img:{key}"));
                    self.stats.invalidations += 1;
                    emit(tel, "invalidate", "build", key, 0);
                    None
                }
            },
            Fetched::Invalid => {
                self.manifest.remove(&format!("img:{key}"));
                self.stats.invalidations += 1;
                emit(tel, "invalidate", "build", key, 0);
                None
            }
            Fetched::Missing => None,
        };
        let report = match self.fetch(&format!("rpt:{key}")) {
            Fetched::Hit(entry, bytes) => match *entry {
                CacheEntry::Report(report) => Some((*report, bytes)),
                _ => {
                    self.manifest.remove(&format!("rpt:{key}"));
                    self.stats.invalidations += 1;
                    emit(tel, "invalidate", "build", key, 0);
                    None
                }
            },
            Fetched::Invalid => {
                self.manifest.remove(&format!("rpt:{key}"));
                self.stats.invalidations += 1;
                emit(tel, "invalidate", "build", key, 0);
                None
            }
            Fetched::Missing => None,
        };
        match (image, report) {
            (Some((image, ib)), Some((report, rb))) => {
                self.stats.build_hits += 1;
                emit(tel, "hit", "build", key, ib + rb);
                Some((image, report))
            }
            _ => {
                emit(tel, "miss", "build", key, 0);
                None
            }
        }
    }

    /// Stores a whole build's image and report under the build key.
    pub fn put_build(
        &mut self,
        key: &str,
        image: &MachineImage,
        report: &CompileReport,
        tel: &Telemetry,
    ) {
        let ib = self.store(format!("img:{key}"), &CacheEntry::Image(image.clone()));
        let rb = self.store(
            format!("rpt:{key}"),
            &CacheEntry::Report(Box::new(report.clone())),
        );
        if let (Some(ib), Some(rb)) = (ib, rb) {
            emit(tel, "store", "build", key, ib + rb);
        }
    }

    /// Commits the current generation: flushes the repository index
    /// segment, fsyncs `repo.naim`, journals the committed length, then
    /// atomically replaces the manifest (write temp → fsync → rename).
    /// A process killed at any point leaves either the previous
    /// generation or this one — never a mix.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the cache directory is no
    /// longer writable.
    pub fn persist(&mut self) -> Result<(), NaimError> {
        self.loader.repository_mut().flush_index()?;
        self.storage.sync(REPO_FILE)?;
        let committed = self.storage.size(REPO_FILE)?;
        write_atomic(
            self.storage.as_ref(),
            JOURNAL_FILE,
            format!("{JOURNAL_SCHEMA}\n{committed}\n").as_bytes(),
        )?;
        write_atomic(
            self.storage.as_ref(),
            MANIFEST_FILE,
            self.render_manifest().as_bytes(),
        )?;
        Ok(())
    }

    fn render_manifest(&self) -> String {
        let mut text = String::with_capacity(64 * (1 + self.manifest.len()));
        text.push_str(MANIFEST_SCHEMA);
        text.push('\n');
        for (key, hash) in &self.manifest {
            text.push_str(key);
            text.push('\t');
            text.push_str(&hash.to_hex());
            text.push('\n');
        }
        text
    }

    /// Bytes a [`BuildCache::gc`] compaction would reclaim right now:
    /// current `repo.naim` size minus the exact size of a generation
    /// holding only the records the manifest still references. Stale
    /// index segments (every [`BuildCache::persist`] appends one),
    /// evicted corrupt records, and rolled-back-then-re-stored copies
    /// all count as dead.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the repository size cannot
    /// be read.
    pub fn dead_bytes(&self) -> Result<u64, NaimError> {
        if !self.storage.exists(REPO_FILE) {
            return Ok(0);
        }
        let size = self.storage.size(REPO_FILE)?;
        let repo = self.loader.repository();
        let live: Vec<_> = self
            .manifest
            .values()
            .filter_map(|&hash| repo.lookup(hash))
            .collect();
        Ok(size.saturating_sub(repo.compacted_size(&live)))
    }

    /// Mark-and-sweep compaction: copies every record the manifest
    /// still references into a fresh repository generation, atomically
    /// swaps it in under the commit-journal protocol, and rewrites the
    /// manifest without its dead lines.
    ///
    /// **Mark.** Walk the in-memory manifest (sorted key order, so the
    /// storage-operation stream is deterministic); a hash that no
    /// longer resolves — rolled back, dropped by an earlier GC, or
    /// evicted as corrupt (eviction removes the hash from the lookup
    /// index, which is exactly what keeps this pass from resurrecting
    /// a corrupt record through the last-record-wins reopen index) —
    /// marks its lines dead.
    ///
    /// **Sweep.** Fetch each live record (CRC-verified) and store it
    /// into a new generation built under a temp name; a record that
    /// fails verification on the way out is demoted to dead rather
    /// than aborting, so GC also heals latent corruption. Content
    /// hashes are unchanged by the copy, so surviving manifest lines
    /// stay valid as-is.
    ///
    /// **Swap.** fsync the temp, raise the journal to cover both
    /// generations, rename the temp onto `repo.naim`, then commit the
    /// exact new length and the pruned manifest. A crash at any point
    /// reopens to either the old or the new generation, never a mix:
    /// before the rename the old file is untouched (the orphan temp is
    /// swept on open), after it the new file is never longer than the
    /// journaled bound so no rollback can bite it. The loader is then
    /// rebuilt so any memory-mapped view of the pre-swap file is
    /// dropped and reopened against the new generation.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the cache directory stops
    /// cooperating; the committed old generation is never damaged.
    pub fn gc(&mut self, tel: &Telemetry) -> Result<GcStats, NaimError> {
        let old_size = if self.storage.exists(REPO_FILE) {
            self.storage.size(REPO_FILE)?
        } else {
            0
        };
        // Mark.
        let mut alive: HashMap<ContentHash, bool> = HashMap::new();
        let mut order = Vec::new();
        for &hash in self.manifest.values() {
            if alive.contains_key(&hash) {
                continue;
            }
            match self.loader.repository().lookup(hash) {
                Some(handle) => {
                    alive.insert(hash, true);
                    order.push((hash, handle));
                }
                None => {
                    alive.insert(hash, false);
                }
            }
        }
        // Sweep: build the new generation under the temp name.
        let mut new_repo =
            Repository::create_backend(StorageFile::new(Arc::clone(&self.storage), GC_TEMP_FILE))?;
        let mut live_records = 0u64;
        for (hash, handle) in order {
            match self.loader.repository_mut().fetch(handle) {
                Ok(bytes) => {
                    new_repo.store(&bytes)?;
                    live_records += 1;
                }
                // Live I/O failure: abort; the old generation and the
                // manifest are untouched, the orphan temp is swept on
                // the next open.
                Err(NaimError::Repository(e)) => return Err(NaimError::Repository(e)),
                // Content damage (CRC, truncation): the record is dead
                // after all; its lines get pruned below.
                Err(_) => {
                    alive.insert(hash, false);
                }
            }
        }
        new_repo.flush_index()?;
        drop(new_repo);
        // Swap.
        self.storage.sync(GC_TEMP_FILE)?;
        let new_size = self.storage.size(GC_TEMP_FILE)?;
        // Raise the journal to cover whichever generation a crash
        // leaves behind. The compacted generation is usually smaller,
        // but an old file that lost its index segment to a torn-tail
        // truncation can be *shorter* than its replacement — journaling
        // the max first means the rollback-on-open (which only fires on
        // a file longer than the journal) can never truncate into
        // either generation.
        write_atomic(
            self.storage.as_ref(),
            JOURNAL_FILE,
            format!("{JOURNAL_SCHEMA}\n{}\n", old_size.max(new_size)).as_bytes(),
        )?;
        self.storage.rename(GC_TEMP_FILE, REPO_FILE)?;
        write_atomic(
            self.storage.as_ref(),
            JOURNAL_FILE,
            format!("{JOURNAL_SCHEMA}\n{new_size}\n").as_bytes(),
        )?;
        // Prune dead manifest lines on the same commit.
        let dead_keys: Vec<String> = self
            .manifest
            .iter()
            .filter(|(_, hash)| !alive.get(hash).copied().unwrap_or(false))
            .map(|(key, _)| key.clone())
            .collect();
        for key in &dead_keys {
            self.manifest.remove(key);
        }
        write_atomic(
            self.storage.as_ref(),
            MANIFEST_FILE,
            self.render_manifest().as_bytes(),
        )?;
        // Reopen against the new generation: the old loader's backend
        // may hold a memory-mapped view of the pre-swap file, which the
        // rename does not invalidate.
        let repo =
            Repository::open_backend(StorageFile::new(Arc::clone(&self.storage), REPO_FILE))?;
        self.loader = Loader::with_repository(NaimConfig::disabled(), repo);
        let stats = GcStats {
            reclaimed_bytes: old_size.saturating_sub(new_size),
            live_records,
            pruned_lines: dead_keys.len() as u64,
        };
        self.stats.gc_runs += 1;
        self.stats.gc_reclaimed_bytes += stats.reclaimed_bytes;
        self.stats.gc_live_records = stats.live_records;
        self.stats.gc_pruned_lines += stats.pruned_lines;
        tel.emit(TraceEvent::CacheGc {
            reclaimed_bytes: stats.reclaimed_bytes,
            live_records: stats.live_records,
            pruned_lines: stats.pruned_lines,
        });
        Ok(stats)
    }

    fn fetch(&mut self, key: &str) -> Fetched {
        let Some(&hash) = self.manifest.get(key) else {
            return Fetched::Missing;
        };
        let Some(handle) = self.loader.repository().lookup(hash) else {
            self.manifest.remove(key);
            return Fetched::Invalid;
        };
        let bytes = handle.len() as u64;
        let pid = self.loader.insert_offloaded(handle, PoolKind::Ir);
        match self.loader.get(pid) {
            Ok(entry) => Fetched::Hit(Box::new(entry.clone()), bytes),
            Err(_) => {
                self.manifest.remove(key);
                // Unindex the corrupt record too, or a re-store of the
                // same payload would dedup right back onto it.
                self.loader.repository_mut().evict(hash);
                Fetched::Invalid
            }
        }
    }

    /// Compacts and stores `entry`, returning the payload size, or
    /// `None` when the repository refused the write.
    fn store(&mut self, key: String, entry: &CacheEntry) -> Option<u64> {
        let mut enc = Encoder::with_capacity(1024);
        entry.compact(&mut enc);
        let image = enc.into_bytes();
        let handle = self.loader.repository_mut().store(&image).ok()?;
        let hash = self.loader.repository().hash_of(handle)?;
        self.manifest.insert(key, hash);
        Some(handle.len() as u64)
    }
}

fn emit(tel: &Telemetry, action: &'static str, scope: &'static str, name: &str, bytes: u64) {
    tel.emit(TraceEvent::Cache {
        action,
        scope,
        name: name.to_owned(),
        bytes,
    });
}

/// Writes `name` via the temp → fsync → rename protocol, so the file
/// flips atomically from its previous content to `data` and the crash
/// model cannot leave a torn or unsynced-rename version behind.
fn write_atomic(storage: &dyn Storage, name: &str, data: &[u8]) -> std::io::Result<()> {
    let tmp = format!("{name}.tmp");
    storage.write(&tmp, data)?;
    storage.sync(&tmp)?;
    storage.rename(&tmp, name)
}

/// Reads the commit journal: the repository length of the last fully
/// committed generation. `None` when the journal is missing or
/// unreadable — recovery then relies on the record-chain scan alone.
fn read_journal(storage: &dyn Storage) -> Option<u64> {
    let bytes = storage.read(JOURNAL_FILE).ok()?;
    let text = std::str::from_utf8(&bytes).ok()?;
    let mut lines = text.lines();
    if lines.next() != Some(JOURNAL_SCHEMA) {
        return None;
    }
    lines.next()?.trim().parse().ok()
}

fn read_manifest(storage: &dyn Storage) -> BTreeMap<String, ContentHash> {
    let mut manifest = BTreeMap::new();
    let Ok(bytes) = storage.read(MANIFEST_FILE) else {
        return manifest;
    };
    let Ok(text) = std::str::from_utf8(&bytes) else {
        return manifest;
    };
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_SCHEMA) {
        return manifest;
    }
    for line in lines {
        let Some((key, hex)) = line.split_once('\t') else {
            continue;
        };
        let Some(hash) = ContentHash::from_hex(hex) else {
            continue;
        };
        manifest.insert(key.to_owned(), hash);
    }
    manifest
}

/// Fingerprint of an MLC source module: covers the module name, the
/// exact source text, and the cache format epoch.
#[must_use]
pub fn module_fingerprint(module: &str, source: &str) -> String {
    let mut enc = Encoder::with_capacity(source.len() + 64);
    enc.write_u32(CACHE_FORMAT);
    enc.write_str("mlc-src");
    enc.write_str(module);
    enc.write_str(source);
    ContentHash::of(&enc.into_bytes()).to_hex()
}

/// Fingerprint of a pre-compiled IL object: covers its serialized
/// bytes, so any front-end change that alters the object re-keys it.
#[must_use]
pub fn object_fingerprint(module: &str, bytes: &[u8]) -> String {
    let mut enc = Encoder::with_capacity(bytes.len() + 64);
    enc.write_u32(CACHE_FORMAT);
    enc.write_str("il-obj");
    enc.write_str(module);
    enc.write_bytes(bytes);
    ContentHash::of(&enc.into_bytes()).to_hex()
}

/// Digest of every build option that can change the produced image or
/// report.
///
/// `jobs` and NAIM `shards` are deliberately *excluded*: the pipeline
/// produces byte-identical output at every worker and shard count, so
/// a cache populated at `-j4` must hit at `-j1`. The profile database
/// participates through its full serialized content (its epoch);
/// [`build_key_sliced`] swaps that monolithic tail for per-module
/// slice fingerprints so retraining only re-keys moved slices.
#[must_use]
pub fn options_signature(options: &BuildOptions) -> String {
    options_signature_impl(options, true)
}

fn options_signature_impl(options: &BuildOptions, include_db: bool) -> String {
    let mut enc = Encoder::with_capacity(256);
    enc.write_u32(CACHE_FORMAT);
    enc.write_str("opts");
    enc.write_u8(match options.level {
        OptLevel::O1 => 1,
        OptLevel::O2 => 2,
        OptLevel::O4 => 4,
    });
    enc.write_bool(options.pbo);
    enc.write_bool(options.instrument);
    match options.selectivity {
        Some(pct) => {
            enc.write_bool(true);
            enc.write_f64(pct);
        }
        None => enc.write_bool(false),
    }
    enc.write_bool(options.layered);
    let i = &options.inline;
    enc.write_u32(i.small_callee_il);
    enc.write_u64(i.hot_site_min_count);
    enc.write_u32(i.hot_callee_il);
    enc.write_f64(i.hot_site_dominance);
    enc.write_u32(i.caller_growth_cap);
    enc.write_u32(i.max_passes);
    match i.op_limit {
        Some(limit) => {
            enc.write_bool(true);
            enc.write_u64(limit);
        }
        None => enc.write_bool(false),
    }
    match &i.targets {
        Some(targets) => {
            enc.write_bool(true);
            enc.write_usize(targets.len());
            for id in targets {
                enc.write_u32(id.0);
            }
        }
        None => enc.write_bool(false),
    }
    let n = &options.naim;
    enc.write_usize(n.budget_bytes);
    match n.hard_limit_bytes {
        Some(limit) => {
            enc.write_bool(true);
            enc.write_usize(limit);
        }
        None => enc.write_bool(false),
    }
    enc.write_u8(n.max_level as u8);
    enc.write_f64(n.thresholds.ir_compaction);
    enc.write_f64(n.thresholds.st_compaction);
    enc.write_f64(n.thresholds.offload);
    enc.write_usize(n.cache_pools);
    enc.write_u64(n.compact_cost_per_byte);
    enc.write_u64(n.disk_cost_per_byte);
    enc.write_u64(n.fetch_cost_per_byte);
    match &options.profile {
        Some(db) => {
            enc.write_bool(true);
            if include_db {
                enc.write_bytes(&db.to_bytes());
            }
        }
        None => enc.write_bool(false),
    }
    ContentHash::of(&enc.into_bytes()).to_hex()
}

/// Key for a whole build: the ordered module fingerprints plus the
/// options signature. Any dirty module, added module, removed module,
/// reordering, option change, or profile change produces a new key.
#[must_use]
pub fn build_key(module_fps: &[String], options: &BuildOptions) -> String {
    let mut enc = Encoder::with_capacity(64 + module_fps.len() * 36);
    enc.write_u32(CACHE_FORMAT);
    enc.write_str("build");
    enc.write_usize(module_fps.len());
    for fp in module_fps {
        enc.write_str(fp);
    }
    enc.write_str(&options_signature(options));
    ContentHash::of(&enc.into_bytes()).to_hex()
}

/// Key for a whole profile-guided build under slice keying: the
/// ordered module fingerprints, the vector of per-module slice
/// fingerprints, the residual slice fingerprint (database routines no
/// module observes — they still steer the global selectivity ranking),
/// and the options signature *without* the monolithic database tail.
///
/// With the whole database replaced by exactly what each module can
/// observe, a retrain that moves one module's counts changes that
/// module's slice — and therefore this key — while every other slice,
/// and every module-tier composed key, stays put.
#[must_use]
pub fn build_key_sliced(module_fps: &[String], plan: &SlicePlan, options: &BuildOptions) -> String {
    debug_assert_eq!(module_fps.len(), plan.slices.len());
    let mut enc = Encoder::with_capacity(64 + module_fps.len() * 72);
    enc.write_u32(CACHE_FORMAT);
    enc.write_str("build-sliced");
    enc.write_usize(module_fps.len());
    for fp in module_fps {
        enc.write_str(fp);
    }
    for slice in &plan.slices {
        enc.write_str(&slice.fp);
    }
    enc.write_str(&plan.residual_fp);
    enc.write_str(&options_signature_impl(options, false));
    ContentHash::of(&enc.into_bytes()).to_hex()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cmo-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_object() -> IlObject {
        cmo_frontend::compile_module("m", "fn main() -> int { return 7; }").expect("compiles")
    }

    #[test]
    fn module_round_trip_survives_reopen() {
        let dir = tmpdir("module-rt");
        let tel = Telemetry::disabled();
        let obj = small_object();
        let fp = module_fingerprint("m", "fn main() -> int { return 7; }");
        {
            let mut cache = BuildCache::open(&dir).expect("open");
            assert!(cache.get_module("m", &fp, &tel).is_none());
            cache.put_module("m", &fp, &obj, &tel);
            cache.persist().expect("persist");
        }
        let mut cache = BuildCache::open(&dir).expect("reopen");
        let back = cache.get_module("m", &fp, &tel).expect("warm hit");
        assert_eq!(back.to_bytes(), obj.to_bytes());
        assert_eq!(cache.stats().module_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprints_separate_source_name_and_options() {
        let a = module_fingerprint("m", "fn f() -> int { return 1; }");
        let b = module_fingerprint("m", "fn f() -> int { return 2; }");
        let c = module_fingerprint("n", "fn f() -> int { return 1; }");
        assert_ne!(a, b);
        assert_ne!(a, c);

        let o1 = BuildOptions::new(OptLevel::O4);
        let mut o2 = BuildOptions::new(OptLevel::O4);
        o2.inline.small_callee_il += 1;
        assert_ne!(options_signature(&o1), options_signature(&o2));
        // jobs must NOT participate: warm hits work across -j.
        let mut o3 = BuildOptions::new(OptLevel::O4);
        o3.jobs = 4;
        assert_eq!(options_signature(&o1), options_signature(&o3));
        // Neither must the GC policy: compaction changes where records
        // sit, never what a build produces.
        let o4 = BuildOptions::new(OptLevel::O4).with_gc_threshold_bytes(0);
        assert_eq!(options_signature(&o1), options_signature(&o4));
    }

    #[test]
    fn corrupt_entry_invalidates_and_misses() {
        let dir = tmpdir("corrupt");
        let tel = Telemetry::disabled();
        let obj = small_object();
        let fp = module_fingerprint("m", "src");
        {
            let mut cache = BuildCache::open(&dir).expect("open");
            cache.put_module("m", &fp, &obj, &tel);
            cache.persist().expect("persist");
        }
        // Flip a byte in the stored payload (past the header region).
        let repo = dir.join("repo.naim");
        let mut bytes = std::fs::read(&repo).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&repo, &bytes).expect("write");

        let mut cache = BuildCache::open(&dir).expect("reopen");
        assert!(cache.get_module("m", &fp, &tel).is_none());
        let stats = cache.stats();
        assert_eq!(stats.invalidations + stats.module_misses, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatched_cache_is_recreated() {
        let dir = tmpdir("version");
        let tel = Telemetry::disabled();
        {
            let mut cache = BuildCache::open(&dir).expect("open");
            cache.put_module("m", "fp", &small_object(), &tel);
            cache.persist().expect("persist");
        }
        let repo = dir.join("repo.naim");
        let mut bytes = std::fs::read(&repo).expect("read");
        bytes[8] = 0xEE; // clobber the format version field
        std::fs::write(&repo, &bytes).expect("write");

        let mut cache = BuildCache::open(&dir).expect("recreate");
        assert_eq!(cache.record_count(), 0);
        assert!(cache.get_module("m", "fp", &tel).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_repository_suffix_rolls_back_on_open() {
        use cmo_naim::MemStorage;
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let tel = Telemetry::disabled();
        let obj = small_object();
        let fp = module_fingerprint("m", "src");
        {
            let mut cache = BuildCache::open_on(Arc::clone(&storage), &tel).unwrap();
            cache.put_module("m", &fp, &obj, &tel);
            cache.persist().unwrap();
        }
        let committed = storage.size(REPO_FILE).unwrap();
        // A successor process appended a new generation but died before
        // committing it to the journal.
        storage.append(REPO_FILE, &[0xAB; 64]).unwrap();
        let traced = Telemetry::enabled();
        let mut cache = BuildCache::open_on(Arc::clone(&storage), &traced).unwrap();
        assert_eq!(cache.recovered(), 1);
        assert_eq!(
            storage.size(REPO_FILE).unwrap(),
            committed,
            "uncommitted suffix must be rolled back"
        );
        assert!(
            cache.get_module("m", &fp, &tel).is_some(),
            "committed generation must survive the rollback"
        );
        let trace = traced.render_trace();
        assert!(
            trace.contains(
                r#""event":"recover","component":"repository","action":"rollback","bytes":64"#
            ),
            "trace: {trace}"
        );
    }

    #[test]
    fn clean_open_reports_no_recovery() {
        use cmo_naim::MemStorage;
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let tel = Telemetry::disabled();
        {
            let mut cache = BuildCache::open_on(Arc::clone(&storage), &tel).unwrap();
            cache.put_module("m", "fp", &small_object(), &tel);
            cache.persist().unwrap();
        }
        let cache = BuildCache::open_on(storage, &tel).unwrap();
        assert_eq!(cache.recovered(), 0);
    }

    #[test]
    fn identical_builds_share_one_record() {
        let dir = tmpdir("dedup");
        let tel = Telemetry::disabled();
        let obj = small_object();
        let mut cache = BuildCache::open(&dir).expect("open");
        cache.put_module("m", "fp1", &obj, &tel);
        cache.put_module("m", "fp2", &obj, &tel);
        assert_eq!(cache.record_count(), 1, "content-addressing dedups");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_reclaims_dead_bytes_and_preserves_warm_hits() {
        use cmo_naim::MemStorage;
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let tel = Telemetry::disabled();
        let obj = small_object();
        let fp = module_fingerprint("m", "src");
        let mut cache = BuildCache::open_on(Arc::clone(&storage), &tel).unwrap();
        cache.put_module("m", &fp, &obj, &tel);
        // Every persist appends a fresh index segment; repeated warm
        // builds are exactly how a real cache accretes dead weight.
        for _ in 0..30 {
            cache.persist().unwrap();
        }
        let size_before = storage.size(REPO_FILE).unwrap();
        let dead = cache.dead_bytes().unwrap();
        assert!(
            dead * 2 >= size_before,
            "setup failed to reach 50% dead bytes: {dead} of {size_before}"
        );

        let stats = cache.gc(&tel).unwrap();
        let size_after = storage.size(REPO_FILE).unwrap();
        assert_eq!(stats.reclaimed_bytes, size_before - size_after);
        assert_eq!(stats.live_records, 1);
        assert_eq!(stats.pruned_lines, 0);
        assert!(size_after < size_before);
        assert_eq!(
            cache.dead_bytes().unwrap(),
            0,
            "a freshly compacted generation has no dead bytes"
        );
        assert_eq!(cache.stats().gc_runs, 1);
        // The swapped-in generation serves the same bytes, both through
        // the rebuilt loader and through a cold reopen.
        let back = cache.get_module("m", &fp, &tel).expect("hit after gc");
        assert_eq!(back.to_bytes(), obj.to_bytes());
        let mut reopened = BuildCache::open_on(storage, &tel).unwrap();
        assert_eq!(reopened.recovered(), 0, "gc must commit cleanly");
        let back = reopened.get_module("m", &fp, &tel).expect("hit on reopen");
        assert_eq!(back.to_bytes(), obj.to_bytes());
    }

    #[test]
    fn gc_prunes_dangling_manifest_lines_and_traces_them() {
        use cmo_naim::MemStorage;
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let tel = Telemetry::disabled();
        let mut cache = BuildCache::open_on(Arc::clone(&storage), &tel).unwrap();
        cache.put_module("m", "livefp", &small_object(), &tel);
        // A line whose record was rolled back by crash recovery: the
        // hash resolves to nothing.
        cache
            .manifest
            .insert("mod:deadfp".to_owned(), ContentHash([0xDEAD, 0xBEEF]));
        cache.persist().unwrap();
        assert!(String::from_utf8(storage.read(MANIFEST_FILE).unwrap())
            .unwrap()
            .contains("mod:deadfp"));

        let traced = Telemetry::enabled();
        let stats = cache.gc(&traced).unwrap();
        assert_eq!(stats.pruned_lines, 1);
        assert_eq!(stats.live_records, 1);
        let manifest = String::from_utf8(storage.read(MANIFEST_FILE).unwrap()).unwrap();
        assert!(
            !manifest.contains("mod:deadfp"),
            "dead line survived the rewrite: {manifest}"
        );
        assert!(manifest.contains("mod:livefp"));
        let trace = traced.render_trace();
        assert!(
            trace.contains(r#""event":"cache","action":"gc""#)
                && trace.contains("\"pruned_lines\":1"),
            "trace: {trace}"
        );
    }

    #[test]
    fn gc_does_not_resurrect_evicted_records() {
        use cmo_naim::MemStorage;
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let tel = Telemetry::disabled();
        let obj = small_object();
        let fp = module_fingerprint("m", "src");
        {
            let mut cache = BuildCache::open_on(Arc::clone(&storage), &tel).unwrap();
            cache.put_module("m", &fp, &obj, &tel);
            cache.persist().unwrap();
        }
        // Corrupt the stored payload on disk.
        let mut bytes = storage.read(REPO_FILE).unwrap();
        bytes[12 + 25 + 3] ^= 0xFF;
        storage.write(REPO_FILE, &bytes).unwrap();

        let mut cache = BuildCache::open_on(Arc::clone(&storage), &tel).unwrap();
        assert!(
            cache.get_module("m", &fp, &tel).is_none(),
            "must invalidate"
        );
        // The probe evicted the corrupt record; without the eviction
        // check, GC's copy pass (or the last-record-wins reopen index)
        // would carry it into the new generation.
        let stats = cache.gc(&tel).unwrap();
        assert_eq!(stats.live_records, 0);
        // The invalidating probe already dropped the manifest line in
        // memory, so GC has nothing left to prune — only to not copy.
        assert_eq!(stats.pruned_lines, 0);
        let reopened = BuildCache::open_on(Arc::clone(&storage), &tel).unwrap();
        assert_eq!(
            reopened.record_count(),
            0,
            "evicted record resurrected by GC"
        );
    }

    #[test]
    fn gc_keeps_the_restored_copy_after_evict_and_restore() {
        use cmo_naim::MemStorage;
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let tel = Telemetry::disabled();
        let obj = small_object();
        let fp = module_fingerprint("m", "src");
        {
            let mut cache = BuildCache::open_on(Arc::clone(&storage), &tel).unwrap();
            cache.put_module("m", &fp, &obj, &tel);
            cache.persist().unwrap();
        }
        let mut bytes = storage.read(REPO_FILE).unwrap();
        bytes[12 + 25 + 3] ^= 0xFF;
        storage.write(REPO_FILE, &bytes).unwrap();

        let mut cache = BuildCache::open_on(Arc::clone(&storage), &tel).unwrap();
        assert!(cache.get_module("m", &fp, &tel).is_none());
        // Recompile path: the same payload is re-stored as a fresh
        // record (eviction keeps dedup from pointing at the corpse).
        cache.put_module("m", &fp, &obj, &tel);
        assert_eq!(cache.record_count(), 2, "corpse + fresh copy");
        cache.gc(&tel).unwrap();
        let mut reopened = BuildCache::open_on(Arc::clone(&storage), &tel).unwrap();
        assert_eq!(reopened.record_count(), 1, "only the good copy survives");
        let back = reopened.get_module("m", &fp, &tel).expect("hit");
        assert_eq!(back.to_bytes(), obj.to_bytes());
    }

    #[test]
    fn scope_sidecar_round_trips_and_stays_silent() {
        let dir = tmpdir("scope-rt");
        let obj = small_object();
        let scope = ModuleScope::of_object(&obj);
        {
            let mut cache = BuildCache::open(&dir).expect("open");
            assert!(cache.get_scope("fp").is_none());
            cache.put_scope("fp", &scope);
            cache.persist().expect("persist");
        }
        let mut cache = BuildCache::open(&dir).expect("reopen");
        assert_eq!(cache.get_scope("fp").expect("sidecar"), scope);
        // Sidecars are planning metadata: no hit/miss accounting.
        let stats = cache.stats();
        assert_eq!(stats.module_hits, 0);
        assert_eq!(stats.module_misses, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sliced_build_key_ignores_out_of_scope_profile_motion() {
        use crate::slices::{SliceGranularity, SlicePlan};
        use cmo_profile::{ProbeKey, ProfileDb, RoutineShape};
        let obj = small_object();
        let scopes = vec![ModuleScope::of_object(&obj)];
        let fps = vec![module_fingerprint("m", "fn main() -> int { return 7; }")];
        let shape = scopes[0].routines[0].shape;
        let mut db = ProfileDb::new();
        db.record(
            &[(ProbeKey::block("main", 0), 1)],
            &[("main".to_owned(), shape)],
        );
        let mut options = BuildOptions::new(OptLevel::O4);
        options.pbo = true;
        options.profile = Some(db.clone());
        let plan = |db: &ProfileDb| {
            SlicePlan::compute(&scopes, db, SliceGranularity::Cluster, &options.inline)
        };
        let base = build_key_sliced(&fps, &plan(&db), &options);
        // The same counts re-derived give the same key (slice bytes
        // exclude the run counter and the database's storage order).
        assert_eq!(base, build_key_sliced(&fps, &plan(&db), &options));
        // A foreign routine (trained on another program version) lands
        // in the residual slice: the key must move.
        let mut foreign = db.clone();
        foreign.record(
            &[(ProbeKey::site("ghost", 0), 50)],
            &[(
                "ghost".to_owned(),
                RoutineShape {
                    n_blocks: 1,
                    n_sites: 1,
                    fingerprint: 9,
                },
            )],
        );
        assert_ne!(base, build_key_sliced(&fps, &plan(&foreign), &options));
        // An in-scope count move re-keys too.
        let mut moved = db.clone();
        moved.record(
            &[(ProbeKey::block("main", 0), 100)],
            &[("main".to_owned(), shape)],
        );
        assert_ne!(base, build_key_sliced(&fps, &plan(&moved), &options));
    }

    use proptest::prelude::*;

    proptest! {
        /// GC never drops a record the manifest still points at: after
        /// a compaction over arbitrary payloads, evictions, and stale
        /// index segments, every key whose hash resolved before the
        /// sweep still resolves to byte-identical content — and the
        /// repository never grows.
        #[test]
        fn gc_never_drops_a_live_record(
            payloads in proptest::collection::vec(
                proptest::collection::vec(proptest::prelude::any::<u8>(), 0..200),
                1..10,
            ),
            evict_mask in proptest::prelude::any::<u32>(),
            extra_flushes in 1usize..4,
        ) {
            use cmo_naim::MemStorage;
            let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
            let tel = Telemetry::disabled();
            let mut cache = BuildCache::open_on(Arc::clone(&storage), &tel).unwrap();
            // Raw records straight into the repository: GC copies bytes
            // without decoding them, so arbitrary payloads are fair.
            for (i, payload) in payloads.iter().enumerate() {
                let handle = cache.loader.repository_mut().store(payload).unwrap();
                let hash = cache.loader.repository().hash_of(handle).unwrap();
                cache.manifest.insert(format!("mod:{i}"), hash);
            }
            for (i, payload) in payloads.iter().enumerate() {
                if evict_mask & (1 << (i % 32)) != 0 {
                    cache.loader.repository_mut().evict(ContentHash::of(payload));
                }
            }
            for _ in 0..extra_flushes {
                cache.persist().unwrap();
            }
            // Expectations, computed exactly as the mark phase sees them.
            let pre: Vec<(String, Option<Vec<u8>>)> = cache
                .manifest
                .iter()
                .map(|(key, &hash)| {
                    let body = cache
                        .loader
                        .repository()
                        .lookup(hash)
                        .map(|_| payloads.iter().find(|p| ContentHash::of(p) == hash).unwrap().clone());
                    (key.clone(), body)
                })
                .collect();
            let size_before = storage.size(REPO_FILE).unwrap();

            cache.gc(&tel).unwrap();

            let size_after = storage.size(REPO_FILE).unwrap();
            prop_assert!(size_after <= size_before);
            prop_assert_eq!(cache.dead_bytes().unwrap(), 0);
            for (key, body) in pre {
                match body {
                    Some(expected) => {
                        let &hash = cache.manifest.get(&key).expect("live key pruned");
                        let handle = cache
                            .loader
                            .repository()
                            .lookup(hash)
                            .expect("live record dropped");
                        let back = cache.loader.repository_mut().fetch(handle).unwrap();
                        prop_assert_eq!(&back, &expected);
                    }
                    None => prop_assert!(
                        !cache.manifest.contains_key(&key),
                        "dead key survived: {}", key
                    ),
                }
            }
        }
    }
}
