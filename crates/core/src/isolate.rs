//! Automatic isolation of optimizer-induced failures (§6.3).
//!
//! "We have implemented controllable operation limits on
//! transformations such as inlining so we can employ binary search to
//! identify the inline that makes the difference between a failing and
//! a working program." The inliner numbers its operations; this driver
//! binary-searches the operation limit against a caller-supplied
//! oracle and reports the first faulty operation.

use crate::driver::{BuildError, BuildOptions, Compiler};
use cmo_hlo::InlineOptions;
use cmo_telemetry::Telemetry;

/// The outcome of an isolation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsolationReport {
    /// The 1-based index of the first operation whose inclusion makes
    /// the program fail. `None` if the program never fails up to
    /// `max_ops`.
    pub first_faulty_op: Option<u64>,
    /// Builds performed during the search.
    pub builds: u64,
}

/// Binary-searches the operation limit in `[0, max_ops]`.
///
/// `is_good(limit)` must build the program with at most `limit`
/// operations and report whether it behaves correctly; it must be
/// monotone in the sense the paper relies on (once the faulty
/// operation is included, the program stays broken). The return value
/// names the first operation count at which the program breaks.
pub fn isolate_faulty_op(max_ops: u64, mut is_good: impl FnMut(u64) -> bool) -> IsolationReport {
    let mut builds = 0u64;
    let mut check = |limit: u64, builds: &mut u64| {
        *builds += 1;
        is_good(limit)
    };
    if check(max_ops, &mut builds) {
        return IsolationReport {
            first_faulty_op: None,
            builds,
        };
    }
    // Invariant: good at `lo`, bad at `hi`.
    let (mut lo, mut hi) = (0u64, max_ops);
    if !check(0, &mut builds) {
        return IsolationReport {
            first_faulty_op: Some(0),
            builds,
        };
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if check(mid, &mut builds) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    IsolationReport {
        first_faulty_op: Some(hi),
        builds,
    }
}

/// [`isolate_faulty_op`] instantiated for the inliner against real
/// builds: the end-to-end flow behind `cmocc --isolate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InlineIsolation {
    /// Binary-search outcome over the inline operation limit.
    pub report: IsolationReport,
    /// Inline operations the unrestricted build performs.
    pub total_ops: u64,
    /// Output checksum of the zero-inline reference build on the
    /// isolation input.
    pub reference_checksum: u64,
}

/// Binary-searches for the first inline operation that changes the
/// program's observable behaviour on `input`.
///
/// The reference is the same build with the inliner's operation limit
/// pinned to zero, so any divergence is attributable to an inline
/// operation. A search build whose run faults (fuel, stack) counts as
/// misbehaving — a miscompile that diverges is exactly what the limit
/// exists to catch. Search builds run with telemetry disabled so the
/// caller's trace only records its own builds.
///
/// # Errors
///
/// Propagates build failures and a reference run that faults; the
/// reference must work for the oracle to mean anything.
pub fn isolate_inline_ops(
    cc: &Compiler,
    options: &BuildOptions,
    input: &[i64],
) -> Result<InlineIsolation, BuildError> {
    let mut search = options.clone();
    search.telemetry = Telemetry::disabled();
    // Pin the search to one worker. An operation limit forces the
    // cluster fan-out sequential anyway, but the *unlimited* build that
    // counts `total_ops` has no limit — pinning keeps every build in
    // the search on the same sequential operation numbering the limit
    // binary-searches over, whatever `-j` the caller compiled with.
    search.jobs = 1;
    let limited = |limit: u64| {
        search.clone().with_inline(InlineOptions {
            op_limit: Some(limit),
            ..options.inline.clone()
        })
    };
    let reference_checksum = cc.build(&limited(0))?.run(input)?.checksum;
    let total_ops = cc.build(&search)?.report.hlo.inlines;
    let mut build_error = None;
    let report = isolate_faulty_op(total_ops, |limit| {
        if build_error.is_some() {
            return true; // short-circuit; the report is discarded below
        }
        match cc.build(&limited(limit)) {
            Ok(out) => match out.run(input) {
                Ok(r) => r.checksum == reference_checksum,
                Err(_) => false,
            },
            Err(e) => {
                build_error = Some(e);
                true
            }
        }
    });
    match build_error {
        Some(e) => Err(e),
        None => Ok(InlineIsolation {
            report,
            total_ops,
            reference_checksum,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::OptLevel;

    #[test]
    fn finds_planted_bad_operation() {
        // Oracle: anything including operation 23 or beyond "fails".
        let report = isolate_faulty_op(100, |limit| limit < 23);
        assert_eq!(report.first_faulty_op, Some(23));
        // Binary search, not linear: ~log2(100) + 2 builds.
        assert!(report.builds <= 10, "took {} builds", report.builds);
    }

    #[test]
    fn healthy_program_reports_none() {
        let report = isolate_faulty_op(64, |_| true);
        assert_eq!(report.first_faulty_op, None);
        assert_eq!(report.builds, 1);
    }

    #[test]
    fn broken_from_the_start_reports_zero() {
        let report = isolate_faulty_op(64, |limit| limit > 1_000);
        assert_eq!(report.first_faulty_op, Some(0));
    }

    /// End-to-end: drive real builds with an inline op limit, with a
    /// "miscompilation" simulated by an oracle that dislikes one
    /// specific inline operation's effect on the image.
    #[test]
    fn isolates_against_real_builds() {
        let mut cc = Compiler::new();
        cc.add_source(
            "m",
            r#"
            static fn a() -> int { return 1; }
            static fn b() -> int { return 2; }
            static fn c() -> int { return 3; }
            fn main() -> int { return a() + b() + c(); }
            "#,
        )
        .unwrap();
        // Count total inline ops first.
        let full = cc.build(&BuildOptions::new(OptLevel::O4)).unwrap();
        let total = full.report.hlo.inlines;
        assert_eq!(total, 3);
        // Pretend the program "fails" whenever 2 or more inlines are
        // applied (a stand-in for a real miscompile at op 2).
        let report = isolate_faulty_op(total, |limit| {
            let opts = BuildOptions::new(OptLevel::O4).with_inline(InlineOptions {
                op_limit: Some(limit),
                ..InlineOptions::default()
            });
            let out = cc.build(&opts).unwrap();
            out.report.hlo.inlines < 2
        });
        assert_eq!(report.first_faulty_op, Some(2));
    }

    /// The inliner is semantics-preserving here, so end-to-end
    /// isolation on a correct program finds nothing — and counts the
    /// ops it cleared.
    #[test]
    fn correct_program_isolates_nothing() {
        let mut cc = Compiler::new();
        cc.add_source(
            "m",
            r#"
            static fn a(x: int) -> int { return x + 1; }
            static fn b(x: int) -> int { return a(x) * 2; }
            fn main() -> int { return a(3) + b(4); }
            "#,
        )
        .unwrap();
        let isolation = isolate_inline_ops(&cc, &BuildOptions::new(OptLevel::O4), &[]).unwrap();
        assert_eq!(isolation.report.first_faulty_op, None);
        assert!(isolation.total_ops > 0, "expected some inline ops");
    }

    /// Isolation pins its search builds to one worker, so the caller's
    /// `-j` must not change the outcome: same op count, same verdict,
    /// same checksum at `-j4` as at `-j1`.
    #[test]
    fn isolation_is_identical_at_any_worker_count() {
        let mut cc = Compiler::new();
        cc.add_source(
            "m",
            r#"
            static fn a(x: int) -> int { return x + 1; }
            static fn b(x: int) -> int { return a(x) * 2; }
            fn main() -> int { return a(3) + b(4); }
            "#,
        )
        .unwrap();
        let j1 =
            isolate_inline_ops(&cc, &BuildOptions::new(OptLevel::O4).with_jobs(1), &[]).unwrap();
        let j4 =
            isolate_inline_ops(&cc, &BuildOptions::new(OptLevel::O4).with_jobs(4), &[]).unwrap();
        assert_eq!(j1, j4);
    }
}
