//! `cmocc` — the command-line face of the framework, styled after the
//! HP-UX compiler driver the paper describes (§3, §6.1).
//!
//! ```text
//! usage: cmocc [options] <file.mlc | file.cmo>...
//!
//!   -c                 compile sources to IL objects (.cmo) and stop
//!   +O1 | +O2 | +O4    optimization level           (default +O2)
//!   +P <profile.db>    use profile data (PBO)
//!   +I                 instrument for profiling
//!   --sel <percent>    call-site selectivity at +O4
//!   --budget <MiB>     NAIM optimizer memory budget
//!   --run <v1,v2,...>  execute main with the given input stream
//!   --profile-out <f>  after --run of an instrumented build, write
//!                      the profile database to <f>
//!   --emit-asm         print a disassembly of the linked image
//!   --report           print the build report
//!   --report-json <f>  write the unified cmo.report.v1 JSON report
//!   --trace <f>        write the cmo.trace.v1 event trace (JSONL)
//! ```
//!
//! Sources compile to IL objects; objects feed the optimizing link.
//! Mixing `.mlc` and pre-compiled `.cmo` files on one command line is
//! the `make` flow of §6.1.

use cmo::{build_objects, BuildError, BuildOptions, NaimConfig, OptLevel, ProfileDb, Telemetry};
use cmo_ir::IlObject;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Cli {
    inputs: Vec<PathBuf>,
    compile_only: bool,
    level: OptLevel,
    profile: Option<PathBuf>,
    instrument: bool,
    selectivity: Option<f64>,
    budget_mib: Option<usize>,
    run: Option<Vec<i64>>,
    profile_out: Option<PathBuf>,
    emit_asm: bool,
    report: bool,
    report_json: Option<PathBuf>,
    trace: Option<PathBuf>,
}

fn usage() -> String {
    "usage: cmocc [-c] [+O1|+O2|+O4] [+P <db>] [+I] [--sel <pct>] [--budget <MiB>] \
     [--run <v1,v2,..>] [--profile-out <f>] [--emit-asm] [--report] \
     [--report-json <f>] [--trace <f>] <files...>"
        .to_owned()
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        inputs: Vec::new(),
        compile_only: false,
        level: OptLevel::O2,
        profile: None,
        instrument: false,
        selectivity: None,
        budget_mib: None,
        run: None,
        profile_out: None,
        emit_asm: false,
        report: false,
        report_json: None,
        trace: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{a} expects {what}"))
        };
        match a.as_str() {
            "-c" => cli.compile_only = true,
            "+O1" => cli.level = OptLevel::O1,
            "+O2" => cli.level = OptLevel::O2,
            "+O4" => cli.level = OptLevel::O4,
            "+P" => cli.profile = Some(PathBuf::from(next("a profile database path")?)),
            "+I" => cli.instrument = true,
            "--sel" => {
                cli.selectivity = Some(
                    next("a percentage")?
                        .parse()
                        .map_err(|e| format!("bad --sel value: {e}"))?,
                );
            }
            "--budget" => {
                cli.budget_mib = Some(
                    next("a size in MiB")?
                        .parse()
                        .map_err(|e| format!("bad --budget value: {e}"))?,
                );
            }
            "--run" => {
                let spec = next("a comma-separated input list (or '-' for empty)")?;
                let vals = if spec == "-" {
                    Vec::new()
                } else {
                    spec.split(',')
                        .map(|v| v.trim().parse::<i64>())
                        .collect::<Result<_, _>>()
                        .map_err(|e| format!("bad --run value: {e}"))?
                };
                cli.run = Some(vals);
            }
            "--profile-out" => cli.profile_out = Some(PathBuf::from(next("a path")?)),
            "--emit-asm" => cli.emit_asm = true,
            "--report" => cli.report = true,
            "--report-json" => cli.report_json = Some(PathBuf::from(next("a path")?)),
            "--trace" => cli.trace = Some(PathBuf::from(next("a path")?)),
            "-h" | "--help" => return Err(usage()),
            other if other.starts_with('-') || other.starts_with('+') => {
                return Err(format!("unknown option `{other}`\n{}", usage()));
            }
            file => cli.inputs.push(PathBuf::from(file)),
        }
    }
    if cli.inputs.is_empty() {
        return Err(format!("no input files\n{}", usage()));
    }
    Ok(cli)
}

fn module_name(path: &Path) -> String {
    path.file_stem()
        .map_or_else(|| "module".to_owned(), |s| s.to_string_lossy().into_owned())
}

fn load_objects(cli: &Cli) -> Result<Vec<IlObject>, String> {
    let mut objects = Vec::new();
    for path in &cli.inputs {
        let bytes =
            std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        if IlObject::is_il_object(&bytes) {
            objects.push(
                IlObject::from_bytes(&bytes).map_err(|e| format!("{}: {e}", path.display()))?,
            );
            continue;
        }
        let source = String::from_utf8(bytes).map_err(|_| {
            format!(
                "{} is neither an IL object nor UTF-8 source",
                path.display()
            )
        })?;
        let obj = cmo::compile_module(&module_name(path), &source)
            .map_err(|e| format!("{}:{e}", path.display()))?;
        if cli.compile_only {
            let out = path.with_extension("cmo");
            std::fs::write(&out, obj.to_bytes())
                .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
            println!("wrote {}", out.display());
        }
        objects.push(obj);
    }
    Ok(objects)
}

fn run_cli(cli: &Cli) -> Result<(), String> {
    let tel = if cli.report_json.is_some() || cli.trace.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let objects = {
        let _parse = tel.phase("parse");
        load_objects(cli)?
    };
    if cli.compile_only {
        return Ok(());
    }
    let mut options = BuildOptions::new(cli.level);
    options.telemetry = tel.clone();
    options.instrument = cli.instrument;
    if let Some(path) = &cli.profile {
        let bytes =
            std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let db = ProfileDb::from_bytes(&bytes)
            .map_err(|e| format!("{}: corrupt profile database: {e}", path.display()))?;
        options = options.with_profile_db(db);
    }
    if let Some(sel) = cli.selectivity {
        options = options.with_selectivity(sel);
    }
    if let Some(mib) = cli.budget_mib {
        options = options.with_naim(NaimConfig::with_budget(mib << 20));
    }

    let out = build_objects(objects, &options).map_err(|e| match e {
        BuildError::Naim(inner) => {
            format!("optimizer out of memory: {inner}\n(hint: raise --budget or lower --sel, §5)")
        }
        other => other.to_string(),
    })?;
    println!(
        "linked {} instructions across {} routines",
        out.image.code_size(),
        out.image.routines.len()
    );
    if cli.report {
        let r = &out.report;
        println!("report:");
        println!(
            "  modules: {}/{} compiled with CMO",
            r.cmo_modules, r.total_modules
        );
        println!("  source lines: {}/{} under CMO", r.cmo_loc, r.total_loc);
        println!(
            "  HLO: {} inlines, {} clones, {} globals folded, {} dead stores, {} dead routines",
            r.hlo.inlines,
            r.hlo.clones,
            r.hlo.globals_folded,
            r.hlo.dead_stores_removed,
            r.hlo.dead_routines
        );
        println!(
            "  memory: peak {} bytes ({} compactions, {} offloads)",
            r.peak_memory.peak_total, r.loader.compactions, r.loader.offload_writes
        );
        println!("  compile work: {} units", r.compile_work);
        for phase in &r.phases {
            println!(
                "  phase {:indent$}{}: {} work units",
                "",
                phase.name,
                phase.work(),
                indent = 2 * phase.depth as usize
            );
        }
    }
    if let Some(path) = &cli.report_json {
        std::fs::write(path, out.compile_report().to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote report to {}", path.display());
    }
    if let Some(path) = &cli.trace {
        std::fs::write(path, tel.render_trace())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote trace to {}", path.display());
    }
    if cli.emit_asm {
        print!("{}", cmo_vm::disassemble(&out.image));
    }
    if let Some(input) = &cli.run {
        let result = out.run(input).map_err(|e| e.to_string())?;
        println!(
            "ran main: returned {}, {} cycles, {} instructions, checksum {:#018x}",
            result.returned, result.cycles, result.instrs, result.checksum
        );
        if let Some(path) = &cli.profile_out {
            if !out.image.is_instrumented() {
                return Err("--profile-out needs an instrumented (+I) build".to_owned());
            }
            let db = cmo_vm::profile_from_run(&out.image, &result.probe_counts);
            std::fs::write(path, db.to_bytes())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!("wrote profile database to {}", path.display());
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run_cli(&cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("cmocc: {msg}");
            ExitCode::FAILURE
        }
    }
}
